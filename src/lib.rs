//! # bandana — NVM storage for deep-learning embedding tables
//!
//! A from-scratch Rust reproduction of **"Bandana: Using Non-volatile
//! Memory for Storing Deep Learning Models"** (Eisenman et al., MLSys
//! 2019), grown into a full serving system: store, engine, control
//! plane, observability, and a wire protocol.
//!
//! ## Architecture
//!
//! The workspace is seven crates, re-exported here as modules:
//!
//! | module | crate | what lives there |
//! |--------|-------|------------------|
//! | [`core`] | `bandana-core` | the [`BandanaStore`](bandana_core::BandanaStore): embedding tables on simulated block NVM, DRAM-cached, locality-aware placement, miniature-cache-tuned prefetch admission |
//! | [`nvm`](nvm_sim) | `nvm-sim` | the calibrated NVM device simulator: block reads, queue-depth model, buffer pools, fault injection |
//! | [`trace`] | `bandana-trace` | synthetic Facebook-like lookup workloads, arrival processes, hot-set drift |
//! | [`partition`] | `bandana-partition` | SHP hypergraph partitioning and K-means placement |
//! | [`cache`] | `bandana-cache` | segmented LRU, shadow cache, admission policies, miniature caches, DRAM division |
//! | [`serve`] | `bandana-serve` | the sharded serving engine: tickets, tenants, QoS queues, control plane, observability, and the TCP front-end ([`serve::net`]) |
//! | — | `bandana-bench` | the `repro` harness regenerating every paper table/figure, plus the CI bench gate (`repro check-bench`) |
//!
//! A request's life, from socket to device and back:
//!
//! ```text
//!       remote process                         in-process caller
//!   NetClient ── frames ──▶ NetServer              Client
//!  (docs/PROTOCOL.md)      reader thread             │
//!                               │  submit            │ submit
//!                               ▼                    ▼
//!                      admission: tenant quota / SLO breaker / lane caps
//!                               │ admitted              │ shed ──▶ error terminal
//!                               ▼                       ▼   (ERROR frame / typed status)
//!              weighted per-tenant shard queues (priority + DRR)
//!                               │ popped by the owning shard worker
//!                               ▼
//!         micro-batch merge ─▶ DRAM cache ─▶ NVM reads (queue-depth model)
//!                               │
//!                               ▼
//!               ResponseTicket completes — out of order, as finished
//!                               │
//!            NetServer writer ── RESPONSE/ERROR frame ──▶ NetClient
//! ```
//!
//! Around that path sit the **control plane** (a windowed metrics bus
//! feeding pluggable controllers: the paper's online tuner, per-tenant
//! SLO shedding), the **observability surface** (Prometheus text
//! exposition, a sampled flight recorder exporting Chrome trace JSON,
//! a controller audit log), and the **admin plane** (an HTTP listener
//! serving all three plus live tenant registration). The wire format is
//! specified in `docs/PROTOCOL.md` and the operator runbook —
//! starting servers, scraping metrics, reading audit logs, dumping
//! traces, re-baselining the bench gate — is `docs/OPERATIONS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use bandana::prelude::*;
//!
//! # fn main() -> Result<(), BandanaError> {
//! // A scaled-down 8-table model shaped like the paper's Table 1.
//! let spec = ModelSpec::paper_scaled(10_000);
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let training = generator.generate_requests(500);
//!
//! // Synthesize embeddings and build the store: SHP placement, tuned
//! // admission thresholds, hit-rate-curve DRAM division.
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let config = BandanaConfig::default().with_cache_vectors(1_000);
//! let mut store = BandanaStore::build(&spec, &embeddings, &training, config)?;
//!
//! // Serve traffic.
//! let eval = generator.generate_requests(100);
//! store.serve_trace(&eval)?;
//! let m = store.total_metrics();
//! assert!(m.hit_rate() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving at scale: tenants and tickets
//!
//! A built store becomes a production-style serving engine with one call:
//! tables spread across shard-owned worker threads, requests dispatched,
//! batched, and merged, latency recorded in mergeable log-bucketed
//! histograms, and overload handled by per-tenant weighted queues with
//! explicit shedding. Each tenant opens a
//! [`Client`](bandana_serve::Client) session; submissions return
//! [`ResponseTicket`](bandana_serve::ResponseTicket) futures, so one
//! thread keeps many requests in flight and collects typed
//! [`Response`](bandana_serve::Response)s out of order.
//!
//! ```
//! use bandana::prelude::*;
//! use bandana::serve::{ServeConfig, ShardedEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ModelSpec::test_small();
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let training = generator.generate_requests(300);
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let store = BandanaStore::build(
//!     &spec, &embeddings, &training,
//!     BandanaConfig::default().with_cache_vectors(512))?;
//!
//! // Two tenants sharing the shards: under overload the ranking tenant
//! // gets 9× the backfill's completions (deficit round-robin on the
//! // weights), and the backfill is capped at 32 in-flight requests.
//! let engine = ShardedEngine::new(
//!     store,
//!     ServeConfig::default()
//!         .with_shards(2)
//!         .with_tenant(TenantId(1), TenantSpec::new(9))
//!         .with_tenant(TenantId(2), TenantSpec::new(1).with_quota(32)),
//! )?;
//!
//! // One thread, out-of-order collection: submit everything, then take
//! // responses as they finish.
//! let ranking = engine.client(TenantId(1))?;
//! let serving = generator.generate_requests(100);
//! let mut tickets = Vec::new();
//! for request in &serving.requests {
//!     tickets.push(ranking.submit(request)?);
//! }
//! for ticket in tickets.iter_mut().rev() {
//!     assert!(ticket.wait()?.status.is_ok());
//! }
//!
//! // Typed request building with a per-request deadline.
//! let backfill = engine.client(TenantId(2))?;
//! let response = backfill
//!     .request()
//!     .keys(0, &[1, 2, 3])
//!     .deadline(std::time::Duration::from_millis(50))
//!     .call()?;
//! assert_eq!(response.parts[0].len(), 3);
//!
//! // Per-tenant QoS accounting: sheds, quotas, latency histograms.
//! let m = engine.metrics();
//! assert_eq!(m.completed, 101);
//! assert!(m.per_tenant.iter().any(|t| t.id == TenantId(1) && t.completed == 100));
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving over the wire
//!
//! The same engine fronts TCP clients through
//! [`serve::net`]: a pipelined, length-prefixed
//! binary protocol (`docs/PROTOCOL.md`) whose connection handler maps
//! straight onto the `Client`/`ResponseTicket` machinery — correlation
//! ids carry out-of-order completion onto the wire, and per-connection
//! in-flight caps backpressure into admission via TCP flow control
//! instead of buffering. Next to it, an
//! [`AdminServer`](bandana_serve::AdminServer) speaks plain HTTP:
//! `GET /metrics` (the Prometheus text, byte-identical to
//! [`render_prometheus`](bandana_serve::render_prometheus)),
//! `GET /audit`, `GET /trace` (Chrome trace JSON), and `POST /tenants`
//! for live tenant registration.
//!
//! ```no_run
//! use bandana::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let spec = ModelSpec::test_small();
//! # let mut generator = TraceGenerator::new(&spec, 42);
//! # let training = generator.generate_requests(300);
//! # let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//! #     .map(|t| EmbeddingTable::synthesize(
//! #         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//! #     .collect();
//! # let store = BandanaStore::build(
//! #     &spec, &embeddings, &training,
//! #     BandanaConfig::default().with_cache_vectors(512))?;
//! // Put the engine on the wire: lookups on one port, operators on another.
//! let engine = Arc::new(ShardedEngine::new(store, ServeConfig::default())?);
//! let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default())?;
//! let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0")?;
//!
//! // Connect as the default tenant with a 64-deep pipeline, submit a
//! // burst without waiting, then reap completions in reverse — the
//! // correlation id, not arrival order, matches replies to requests.
//! let client = NetClient::connect(server.local_addr(), TenantId::DEFAULT, 64)?;
//! let burst = generator.generate_requests(16);
//! let mut tickets: Vec<NetTicket> = burst
//!     .requests
//!     .iter()
//!     .map(|request| client.submit(request))
//!     .collect::<std::io::Result<_>>()?;
//! for ticket in tickets.iter_mut().rev() {
//!     assert!(ticket.wait()?.is_ok());
//! }
//! client.close()?;
//! admin.shutdown();
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Legacy callers keep working — `ShardedEngine::serve`/`submit` delegate
//! to the default tenant ([`TenantId::DEFAULT`](bandana_serve::TenantId))
//! — and closed-loop capacity replay
//! ([`serve::run_closed_loop`]) drives
//! `Client::call`. Open-loop mode offers load on an arrival-process clock
//! ([`ArrivalProcess`](bandana_trace::ArrivalProcess), Poisson or bursty)
//! regardless of engine progress, driving the ticket API from a small
//! reactor pool ([`LoadGenConfig`](bandana_serve::LoadGenConfig) sizes
//! it) — see [`serve::run_open_loop`] and
//! [`serve::run_open_loop_with`],
//! `examples/latency_bench.rs`, `examples/multi_tenant.rs`, and the
//! `repro serve` experiment which writes `BENCH_serve.json` (including a
//! two-tenant overload scenario with per-tenant p99 and shed columns).
//!
//! Feedback lives in one place: the
//! [`serve::control`] plane. Every engine runs a
//! metrics bus that rotates per-tenant *recent-window* latency
//! histograms and snapshots queue depths, batching, and shed-reason
//! breakdowns each tick; registered
//! [`Controller`](bandana_serve::Controller)s turn those
//! [`EngineSnapshot`](bandana_serve::EngineSnapshot)s into actions —
//! the paper's online tuner hot-swapping admission thresholds, and the
//! [`SloController`](bandana_serve::SloController) shedding a tenant at
//! admission while its windowed p99 blows its
//! [`TenantSpec::slo_p99`](bandana_serve::TenantSpec::slo_p99) budget.
//! `examples/online_tuning.rs` shows the loop end to end under drifting
//! overload, and `repro serve-drift` gates it (controller-on vs
//! controller-off) in CI.
//!
//! Everything above is observable from the outside via
//! [`serve::obs`]: a sampled **flight recorder**
//! ([`TraceConfig`](bandana_serve::TraceConfig), off by default) records
//! per-request lifecycle events in preallocated per-shard rings —
//! allocation-free on the hot path — and
//! [`ShardedEngine::dump_trace`](bandana_serve::ShardedEngine::dump_trace)
//! exports them as a Perfetto-loadable Chrome trace;
//! [`render_prometheus`](bandana_serve::render_prometheus) renders the
//! full metrics surface as Prometheus text exposition; and every action
//! a controller applies lands in a bounded **audit log**
//! ([`AuditEvent`](bandana_serve::AuditEvent), surfaced through
//! `EngineMetrics::audit` and rendered by
//! [`render_audit_log`](bandana_serve::render_audit_log)). The serve
//! crate's rustdoc has a runnable observability quickstart, and the
//! `repro serve` sweep carries a trace-overhead arm gated in CI.
//!
//! Restarts are crash-safe via [`persist`]: a CRC-framed write-ahead
//! log journals the table catalog and every tenant registration
//! (including live `POST /tenants` ones), periodic versioned snapshots
//! capture each shard's warm cache keys, tuned admission policies, and
//! endurance counters, and
//! [`ShardedEngine::recover`](bandana_serve::ShardedEngine::recover)
//! replays the WAL over the latest valid snapshot and rehydrates every
//! shard *before* admission opens — so a restarted server comes back
//! warm instead of eating a cold-cache latency cliff. The whole path is
//! proven under crash-point fault injection
//! ([`persist::FaultPlan`]), and the
//! `repro serve-restart` bench arm gates warm-vs-cold first-window p99
//! in CI.
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bandana_cache as cache;
pub use bandana_core as core;
pub use bandana_partition as partition;
pub use bandana_persist as persist;
pub use bandana_serve as serve;
pub use bandana_trace as trace;
pub use nvm_sim as nvm;

/// The common imports for working with Bandana.
pub mod prelude {
    pub use bandana_cache::{AdmissionPolicy, AllocationPolicy, CacheMetrics, PolicyKind};
    pub use bandana_core::{
        BandanaConfig, BandanaError, BandanaStore, BatchScratch, ConcurrentStore, PartitionerKind,
        TableStore, ThroughputReport,
    };
    pub use bandana_partition::{AccessFrequency, BlockLayout};
    pub use bandana_persist::{PersistConfig, Persistence};
    pub use bandana_serve::{
        AdminServer, Client, LatencyHistogram, LatencySummary, NetClient, NetResponse, NetServer,
        NetServerConfig, NetTicket, PriorityClass, RequestBuilder, Response, ResponseStatus,
        ResponseTicket, ServeConfig, ShardedEngine, ShedPolicy, TenantId, TenantSpec, TraceConfig,
        WindowedHistogram,
    };
    pub use bandana_trace::{
        AetModel, ArrivalProcess, CounterStacks, DriftConfig, DriftingTraceGenerator,
        EmbeddingTable, ModelSpec, Request, Shards, TableQuery, Trace, TraceGenerator,
    };
    pub use nvm_sim::{
        BlockBufPool, BlockDevice, FaultInjector, FaultPlan, FileNvmDevice, NvmConfig, NvmDevice,
        PoolStats, RebasedDevice, SparseDevice,
    };
}
