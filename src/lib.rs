//! # bandana — NVM storage for deep-learning embedding tables
//!
//! A from-scratch Rust reproduction of **"Bandana: Using Non-volatile
//! Memory for Storing Deep Learning Models"** (Eisenman et al., MLSys
//! 2019). This facade crate re-exports the whole workspace:
//!
//! * [`core`](bandana_core) — the [`BandanaStore`]: embedding tables on
//!   simulated block NVM, DRAM-cached, with locality-aware placement and
//!   miniature-cache-tuned prefetch admission;
//! * [`nvm`](nvm_sim) — the calibrated NVM device simulator;
//! * [`trace`](bandana_trace) — synthetic Facebook-like lookup workloads;
//! * [`partition`](bandana_partition) — SHP hypergraph partitioning and
//!   K-means placement;
//! * [`cache`](bandana_cache) — segmented LRU, shadow cache, admission
//!   policies, miniature caches, DRAM allocation;
//! * [`serve`](bandana_serve) — the sharded, batching serving engine:
//!   latency percentiles, bounded queues with load shedding, open-loop
//!   load generation, and online threshold re-tuning.
//!
//! ## Quickstart
//!
//! ```
//! use bandana::prelude::*;
//!
//! # fn main() -> Result<(), BandanaError> {
//! // A scaled-down 8-table model shaped like the paper's Table 1.
//! let spec = ModelSpec::paper_scaled(10_000);
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let training = generator.generate_requests(500);
//!
//! // Synthesize embeddings and build the store: SHP placement, tuned
//! // admission thresholds, hit-rate-curve DRAM division.
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let config = BandanaConfig::default().with_cache_vectors(1_000);
//! let mut store = BandanaStore::build(&spec, &embeddings, &training, config)?;
//!
//! // Serve traffic.
//! let eval = generator.generate_requests(100);
//! store.serve_trace(&eval)?;
//! let m = store.total_metrics();
//! assert!(m.hit_rate() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving at scale
//!
//! A built store becomes a production-style serving engine with one call:
//! tables spread across shard-owned worker threads, requests dispatched,
//! batched, and merged, latency recorded in mergeable log-bucketed
//! histograms, and overload handled by bounded queues with explicit
//! shedding.
//!
//! ```
//! use bandana::prelude::*;
//! use bandana::serve::{run_closed_loop, ServeConfig, ShardedEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ModelSpec::test_small();
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let training = generator.generate_requests(300);
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let store = BandanaStore::build(
//!     &spec, &embeddings, &training,
//!     BandanaConfig::default().with_cache_vectors(512))?;
//!
//! // Shard-per-worker engine; each shard owns a disjoint set of tables.
//! let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2))?;
//! let serving = generator.generate_requests(100);
//! let report = run_closed_loop(&engine, &serving, 4)?;
//! assert_eq!(report.completed, 100);
//! // Tail latency, not just averages: p50/p95/p99/p999 from mergeable
//! // per-shard histograms.
//! assert!(report.latency.p999_s >= report.latency.p50_s);
//! # Ok(())
//! # }
//! ```
//!
//! Open-loop mode offers load on an arrival-process clock
//! ([`ArrivalProcess`](bandana_trace::ArrivalProcess), Poisson or bursty)
//! regardless of engine progress — see
//! [`serve::run_open_loop`](bandana_serve::run_open_loop),
//! `examples/latency_bench.rs`, and the `repro serve` experiment which
//! writes `BENCH_serve.json`.
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bandana_cache as cache;
pub use bandana_core as core;
pub use bandana_partition as partition;
pub use bandana_serve as serve;
pub use bandana_trace as trace;
pub use nvm_sim as nvm;

/// The common imports for working with Bandana.
pub mod prelude {
    pub use bandana_cache::{AdmissionPolicy, AllocationPolicy, CacheMetrics, PolicyKind};
    pub use bandana_core::{
        BandanaConfig, BandanaError, BandanaStore, BatchScratch, ConcurrentStore, PartitionerKind,
        TableStore, ThroughputReport,
    };
    pub use bandana_partition::{AccessFrequency, BlockLayout};
    pub use bandana_serve::{
        LatencyHistogram, LatencySummary, ServeConfig, ShardedEngine, ShedPolicy,
    };
    pub use bandana_trace::{
        AetModel, ArrivalProcess, CounterStacks, DriftConfig, DriftingTraceGenerator,
        EmbeddingTable, ModelSpec, Request, Shards, TableQuery, Trace, TraceGenerator,
    };
    pub use nvm_sim::{
        BlockBufPool, BlockDevice, FaultInjector, FaultPlan, FileNvmDevice, NvmConfig, NvmDevice,
        PoolStats, RebasedDevice, SparseDevice,
    };
}
