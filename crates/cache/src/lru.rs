//! A segmented LRU queue with O(1) fractional-position insertion.
//!
//! Paper §4.3.1 inserts prefetched vectors at configurable positions in the
//! eviction queue (0 = top/MRU, 0.5 = middle, 0.9 = near the tail). A naive
//! linked list would need an O(n) walk to find "position 0.7·len", so the
//! queue is built from `S` fixed-ratio segments, each an intrusive doubly
//! linked list over one slab: inserting at fraction `p` pushes onto the head
//! of segment `⌊p·S⌋`, overflow cascades tail→head down the segments, and
//! eviction pops the last segment's tail. With one segment this is an exact
//! LRU, which the property tests verify against a reference model.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: u32,
    next: u32,
    segment: u8,
}

#[derive(Debug, Clone, Copy)]
struct SegmentList {
    head: u32,
    tail: u32,
    len: usize,
}

impl SegmentList {
    fn new() -> Self {
        SegmentList { head: NIL, tail: NIL, len: 0 }
    }
}

/// A bounded LRU-like queue over `u64` keys with values, supporting
/// insertion at a fractional queue position.
///
/// # Example
///
/// ```
/// use bandana_cache::SegmentedLru;
///
/// let mut lru = SegmentedLru::new(2, 1); // capacity 2, exact LRU
/// lru.insert(1, "a", 0.0);
/// lru.insert(2, "b", 0.0);
/// lru.insert(3, "c", 0.0); // evicts key 1
/// assert!(!lru.contains(1));
/// assert_eq!(lru.get(2), Some(&"b"));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedLru<V> {
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    index: HashMap<u64, u32>,
    segments: Vec<SegmentList>,
    /// Per-segment capacity targets; sum equals total capacity.
    targets: Vec<usize>,
    capacity: usize,
    evictions: u64,
}

impl<V> SegmentedLru<V> {
    /// Creates a queue with `capacity` entries split across `segments`
    /// equal-ratio segments.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `segments` is zero, `segments > 255`, or
    /// `segments > capacity`.
    pub fn new(capacity: usize, segments: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        assert!(segments > 0, "need at least one segment");
        assert!(segments <= 255, "at most 255 segments");
        assert!(segments <= capacity, "more segments than capacity");
        let base = capacity / segments;
        let mut targets = vec![base; segments];
        // Distribute the remainder to the front segments.
        for target in targets.iter_mut().take(capacity % segments) {
            *target += 1;
        }
        SegmentedLru {
            nodes: Vec::new(),
            free: Vec::new(),
            // 2× headroom keeps the live count at or below half the bucket
            // array. Delete-heavy workloads leave tombstones behind, and the
            // std hash table only *allocates* on the resulting rebuild when
            // occupancy exceeds half the buckets — below that it rehashes in
            // place. The steady-state zero-allocation guarantee on the read
            // path depends on staying on that in-place branch.
            index: HashMap::with_capacity(capacity.saturating_mul(2)),
            segments: vec![SegmentList::new(); segments],
            targets,
            capacity,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Per-segment capacity targets; they always sum to
    /// [`SegmentedLru::capacity`].
    pub fn segment_targets(&self) -> &[usize] {
        &self.targets
    }

    /// Whether `key` is cached, *without* touching recency.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Looks up `key`, promoting it to the queue top (MRU) on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let &id = self.index.get(&key)?;
        self.unlink(id);
        self.link_head(id, 0);
        self.rebalance(0);
        self.nodes[id as usize].value.as_ref()
    }

    /// Looks up `key` mutably, promoting it to the queue top (MRU) on a
    /// hit — [`SegmentedLru::get`] for callers that update the value in
    /// place (e.g. flipping a prefetched entry to demand-fetched) without
    /// a remove/re-insert round trip.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let &id = self.index.get(&key)?;
        self.unlink(id);
        self.link_head(id, 0);
        self.rebalance(0);
        self.nodes[id as usize].value.as_mut()
    }

    /// Reads `key` without touching recency.
    pub fn peek(&self, key: u64) -> Option<&V> {
        let &id = self.index.get(&key)?;
        self.nodes[id as usize].value.as_ref()
    }

    /// Inserts `key` at queue fraction `position` (0.0 = top/MRU, values
    /// close to 1.0 = near the eviction end). If the key is present it is
    /// *moved* to that position and its value replaced.
    ///
    /// Returns the evicted `(key, value)` pair if the insertion displaced
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not in `[0.0, 1.0]`.
    pub fn insert(&mut self, key: u64, value: V, position: f64) -> Option<(u64, V)> {
        assert!((0.0..=1.0).contains(&position), "position must be in [0,1], got {position}");
        let seg = ((position * self.segments.len() as f64) as usize).min(self.segments.len() - 1);
        if let Some(&id) = self.index.get(&key) {
            self.nodes[id as usize].value = Some(value);
            self.unlink(id);
            self.link_head(id, seg);
            return self.rebalance(seg);
        }
        let id = self.alloc(key, value);
        self.index.insert(key, id);
        self.link_head(id, seg);
        self.rebalance(seg)
    }

    /// Changes the capacity online, returning the entries evicted by a
    /// shrink (coldest first; empty on grow).
    ///
    /// Growing takes effect immediately: the raised per-segment targets
    /// admit new inserts without evicting anything. Shrinking evicts in
    /// exactly the order [`SegmentedLru::pop_lru`] would — coldest first —
    /// until the occupancy fits, and never touches the survivors, so their
    /// relative recency order is preserved. Segments whose occupancy now
    /// exceeds the smaller targets shed lazily through the usual rebalance
    /// cascade on subsequent inserts.
    ///
    /// The segment count is fixed at construction, so `capacity` is clamped
    /// to at least the segment count (every segment keeps a non-zero
    /// target).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<(u64, V)> {
        let capacity = capacity.max(self.segments.len());
        let segments = self.segments.len();
        let base = capacity / segments;
        let remainder = capacity % segments;
        for (i, target) in self.targets.iter_mut().enumerate() {
            *target = base + usize::from(i < remainder);
        }
        self.capacity = capacity;
        // Keep the constructor's 2× index headroom through grows so
        // tombstone-driven rebuilds stay on the alloc-free in-place path
        // (see `new`). `reserve` takes *additional* slots beyond `len`.
        self.index.reserve(capacity.saturating_mul(2).saturating_sub(self.index.len()));
        let mut shed = Vec::new();
        while self.len() > capacity {
            let entry = self.pop_lru().expect("occupancy above capacity implies a tail");
            self.evictions += 1;
            shed.push(entry);
        }
        shed
    }

    /// Pops the least-recently-used entry (the tail of the last non-empty
    /// segment), returning it. O(segments).
    pub fn pop_lru(&mut self) -> Option<(u64, V)> {
        let id = self.segments.iter().rev().find(|seg| seg.tail != NIL).map(|seg| seg.tail)?;
        let key = self.nodes[id as usize].key;
        self.index.remove(&key);
        self.unlink(id);
        self.free.push(id);
        let value = self.nodes[id as usize].value.take().expect("live node has a value");
        Some((key, value))
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let id = self.index.remove(&key)?;
        self.unlink(id);
        self.free.push(id);
        self.nodes[id as usize].value.take()
    }

    /// The keys from MRU to LRU across all segments (O(n); for tests and
    /// debugging).
    pub fn keys_in_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            let mut cur = seg.head;
            while cur != NIL {
                out.push(self.nodes[cur as usize].key);
                cur = self.nodes[cur as usize].next;
            }
        }
        out
    }

    /// The entries from MRU to LRU across all segments, without touching
    /// recency (O(n); the persistence snapshot path walks this to capture
    /// cache contents in eviction order).
    pub fn entries_in_order(&self) -> Vec<(u64, &V)> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            let mut cur = seg.head;
            while cur != NIL {
                let node = &self.nodes[cur as usize];
                out.push((node.key, node.value.as_ref().expect("live node has a value")));
                cur = node.next;
            }
        }
        out
    }

    fn alloc(&mut self, key: u64, value: V) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] =
                Node { key, value: Some(value), prev: NIL, next: NIL, segment: 0 };
            id
        } else {
            self.nodes.push(Node { key, value: Some(value), prev: NIL, next: NIL, segment: 0 });
            (self.nodes.len() - 1) as u32
        }
    }

    fn unlink(&mut self, id: u32) {
        let (prev, next, seg) = {
            let n = &self.nodes[id as usize];
            (n.prev, n.next, n.segment as usize)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.segments[seg].head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.segments[seg].tail = prev;
        }
        self.segments[seg].len -= 1;
        self.nodes[id as usize].prev = NIL;
        self.nodes[id as usize].next = NIL;
    }

    fn link_head(&mut self, id: u32, seg: usize) {
        let head = self.segments[seg].head;
        self.nodes[id as usize].next = head;
        self.nodes[id as usize].prev = NIL;
        self.nodes[id as usize].segment = seg as u8;
        if head != NIL {
            self.nodes[head as usize].prev = id;
        } else {
            self.segments[seg].tail = id;
        }
        self.segments[seg].head = id;
        self.segments[seg].len += 1;
    }

    /// Cascades overflow from segment `from` downward; evicts from the last
    /// segment's tail. Returns the evicted entry, if any (at most one per
    /// unit insertion).
    fn rebalance(&mut self, from: usize) -> Option<(u64, V)> {
        let last = self.segments.len() - 1;
        for seg in from..last {
            // A demoted entry becomes the *most* recent of the next, colder
            // segment.
            while self.segments[seg].len > self.targets[seg] {
                let tail = self.segments[seg].tail;
                debug_assert_ne!(tail, NIL);
                self.unlink(tail);
                self.link_head(tail, seg + 1);
            }
        }
        let mut evicted = None;
        while self.segments[last].len > self.targets[last] {
            let tail = self.segments[last].tail;
            debug_assert_ne!(tail, NIL);
            self.unlink(tail);
            let key = self.nodes[tail as usize].key;
            self.index.remove(&key);
            self.free.push(tail);
            self.evictions += 1;
            evicted = self.nodes[tail as usize].value.take().map(|v| (key, v));
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LRU model: Vec ordered MRU-first.
    struct RefLru {
        order: Vec<u64>,
        capacity: usize,
    }

    impl RefLru {
        fn new(capacity: usize) -> Self {
            RefLru { order: Vec::new(), capacity }
        }
        fn get(&mut self, key: u64) -> bool {
            if let Some(i) = self.order.iter().position(|&k| k == key) {
                self.order.remove(i);
                self.order.insert(0, key);
                true
            } else {
                false
            }
        }
        fn insert(&mut self, key: u64) -> Option<u64> {
            if let Some(i) = self.order.iter().position(|&k| k == key) {
                self.order.remove(i);
            }
            self.order.insert(0, key);
            if self.order.len() > self.capacity {
                self.order.pop()
            } else {
                None
            }
        }
    }

    #[test]
    fn exact_lru_matches_reference_model() {
        let mut lru = SegmentedLru::new(5, 1);
        let mut reference = RefLru::new(5);
        // Deterministic pseudo-random key stream.
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 12;
            if (x >> 10) & 1 == 0 {
                let hit = lru.get(key).is_some();
                assert_eq!(hit, reference.get(key), "get({key}) diverged");
            } else {
                let ev = lru.insert(key, key, 0.0).map(|(k, _)| k);
                assert_eq!(ev, reference.insert(key), "insert({key}) diverged");
            }
            assert_eq!(lru.keys_in_order(), reference.order, "order diverged");
        }
    }

    #[test]
    fn basic_insert_get_evict() {
        let mut lru = SegmentedLru::new(2, 1);
        assert!(lru.insert(1, 10, 0.0).is_none());
        assert!(lru.insert(2, 20, 0.0).is_none());
        let evicted = lru.insert(3, 30, 0.0);
        assert_eq!(evicted, Some((1, 10)));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(2), Some(&20));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn get_promotes_to_mru() {
        let mut lru = SegmentedLru::new(3, 1);
        lru.insert(1, (), 0.0);
        lru.insert(2, (), 0.0);
        lru.insert(3, (), 0.0);
        assert_eq!(lru.keys_in_order(), vec![3, 2, 1]);
        lru.get(1);
        assert_eq!(lru.keys_in_order(), vec![1, 3, 2]);
        // Inserting now evicts 2 (the LRU), not 1.
        let ev = lru.insert(4, (), 0.0);
        assert_eq!(ev, Some((2, ())));
    }

    #[test]
    fn get_mut_promotes_and_updates_in_place() {
        let mut lru = SegmentedLru::new(3, 1);
        lru.insert(1, 10, 0.0);
        lru.insert(2, 20, 0.0);
        lru.insert(3, 30, 0.0);
        let evictions_before = lru.evictions();
        *lru.get_mut(1).unwrap() = 11;
        assert_eq!(lru.keys_in_order(), vec![1, 3, 2], "get_mut must promote to MRU");
        assert_eq!(lru.peek(1), Some(&11));
        assert_eq!(lru.evictions(), evictions_before, "in-place update must not evict");
        assert!(lru.get_mut(99).is_none());
    }

    #[test]
    fn peek_and_contains_do_not_promote() {
        let mut lru = SegmentedLru::new(2, 1);
        lru.insert(1, (), 0.0);
        lru.insert(2, (), 0.0);
        assert!(lru.contains(1));
        assert_eq!(lru.peek(1), Some(&()));
        assert_eq!(lru.keys_in_order(), vec![2, 1]);
    }

    #[test]
    fn tail_insertion_is_evicted_first() {
        let mut lru = SegmentedLru::new(10, 10);
        // Five MRU inserts then one near-tail insert.
        for k in 0..5 {
            lru.insert(k, (), 0.0);
        }
        lru.insert(99, (), 0.9);
        // Fill the cache; the tail insert should go before the head ones.
        let mut evicted = Vec::new();
        for k in 10..16 {
            if let Some((e, ())) = lru.insert(k, (), 0.0) {
                evicted.push(e);
            }
        }
        assert!(
            evicted.first() == Some(&99),
            "tail-inserted key should evict first, evicted order {evicted:?}"
        );
    }

    #[test]
    fn mid_insertion_outlives_tail_but_not_head() {
        let mut lru = SegmentedLru::new(12, 4);
        lru.insert(100, (), 0.99); // near tail
        lru.insert(200, (), 0.5); // middle
        lru.insert(300, (), 0.0); // head
        let mut evict_order = Vec::new();
        for k in 0..12u64 {
            if let Some((e, ())) = lru.insert(k, (), 0.0) {
                if e >= 100 {
                    evict_order.push(e);
                }
            }
        }
        // Ensure the relative eviction order is tail < middle.
        let p100 = evict_order.iter().position(|&k| k == 100);
        let p200 = evict_order.iter().position(|&k| k == 200);
        assert!(p100.is_some(), "tail insert never evicted: {evict_order:?}");
        if let (Some(a), Some(b)) = (p100, p200) {
            assert!(a < b, "tail should evict before middle: {evict_order:?}");
        }
    }

    #[test]
    fn reinsert_moves_and_replaces_value() {
        let mut lru = SegmentedLru::new(3, 1);
        lru.insert(1, 10, 0.0);
        lru.insert(2, 20, 0.0);
        lru.insert(1, 11, 0.0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.peek(1), Some(&11));
        assert_eq!(lru.keys_in_order(), vec![1, 2]);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut lru = SegmentedLru::new(2, 1);
        lru.insert(1, 10, 0.0);
        lru.insert(2, 20, 0.0);
        assert_eq!(lru.remove(1), Some(10));
        assert_eq!(lru.len(), 1);
        assert!(lru.insert(3, 30, 0.0).is_none(), "freed slot should absorb the insert");
        assert_eq!(lru.remove(99), None);
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let mut lru = SegmentedLru::new(4, 2);
        for k in 0..1000u64 {
            lru.insert(k, k, (k % 2) as f64 * 0.6);
        }
        assert_eq!(lru.len(), 4);
        // The slab should not have grown past capacity + O(1).
        assert!(lru.nodes.len() <= 8, "slab grew to {}", lru.nodes.len());
    }

    #[test]
    fn shrink_evicts_coldest_first_and_preserves_survivor_order() {
        let mut lru = SegmentedLru::new(6, 1);
        for k in 0..6u64 {
            lru.insert(k, k, 0.0);
        }
        // Order is MRU-first: [5, 4, 3, 2, 1, 0].
        let shed = lru.set_capacity(3);
        assert_eq!(shed.iter().map(|&(k, _)| k).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(lru.keys_in_order(), vec![5, 4, 3], "survivors keep recency order");
        assert_eq!(lru.capacity(), 3);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions(), 3);
    }

    #[test]
    fn grow_admits_immediately_without_evicting() {
        let mut lru = SegmentedLru::new(2, 1);
        lru.insert(1, (), 0.0);
        lru.insert(2, (), 0.0);
        assert!(lru.set_capacity(4).is_empty(), "grow must not evict");
        assert!(lru.insert(3, (), 0.0).is_none());
        assert!(lru.insert(4, (), 0.0).is_none());
        assert_eq!(lru.evictions(), 0);
        assert_eq!(lru.len(), 4);
        // The fifth insert evicts again at the new capacity.
        assert_eq!(lru.insert(5, (), 0.0), Some((1, ())));
    }

    #[test]
    fn set_capacity_targets_sum_to_capacity_multi_segment() {
        let mut lru = SegmentedLru::<u64>::new(16, 4);
        for capacity in [7usize, 16, 5, 33, 4] {
            lru.set_capacity(capacity);
            assert_eq!(lru.targets.iter().sum::<usize>(), lru.capacity());
            assert!(lru.targets.iter().all(|&t| t > 0), "every segment keeps a share");
        }
    }

    #[test]
    fn set_capacity_clamps_to_segment_count() {
        let mut lru = SegmentedLru::<()>::new(8, 4);
        lru.set_capacity(1);
        assert_eq!(lru.capacity(), 4, "capacity clamps to the segment count");
    }

    #[test]
    fn shrink_grow_round_trip_keeps_survivors() {
        let mut lru = SegmentedLru::new(8, 4);
        for k in 0..8u64 {
            lru.insert(k, k, (k % 4) as f64 / 4.0);
        }
        let before = lru.keys_in_order();
        let shed: Vec<u64> = lru.set_capacity(5).into_iter().map(|(k, _)| k).collect();
        assert_eq!(shed.len(), 3);
        lru.set_capacity(8);
        let after = lru.keys_in_order();
        let expected: Vec<u64> = before.into_iter().filter(|k| !shed.contains(k)).collect();
        assert_eq!(after, expected, "round trip must keep survivors in order");
        for k in &after {
            assert!(lru.contains(*k));
        }
    }

    #[test]
    #[should_panic(expected = "position must be in [0,1]")]
    fn bad_position_rejected() {
        let mut lru = SegmentedLru::new(2, 1);
        lru.insert(1, (), 1.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = SegmentedLru::<()>::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "more segments than capacity")]
    fn too_many_segments_rejected() {
        let _ = SegmentedLru::<()>::new(2, 4);
    }
}
