//! Prefetch admission policies (paper §4.3.1–§4.3.2).
//!
//! When a 4 KB block is read from NVM to serve one vector, the other vectors
//! in the block are prefetch *candidates*. The policy decides whether each
//! candidate enters the DRAM cache and at which queue position. The paper
//! evaluates, in order: admit-all at the queue top (Figure 10), admit-all at
//! a lower position (Figure 11a), shadow-cache filtering (Figure 11b), the
//! combination (Figure 11c), and frequency-threshold filtering (Figure 12),
//! which wins and is what Bandana ships with.

use serde::{Deserialize, Serialize};

/// Decides whether a prefetched vector is admitted and where it is inserted.
///
/// The *requested* vector is always cached at the queue top; these policies
/// only govern the other vectors of a fetched block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AdmissionPolicy {
    /// Never admit prefetched vectors (the single-vector baseline policy).
    None,
    /// Admit every prefetched vector at queue fraction `position`
    /// (0.0 = top). `position: 0.0` reproduces Figure 10; other values,
    /// Figure 11a.
    All {
        /// Queue insertion fraction (0.0 = MRU, towards 1.0 = LRU end).
        position: f64,
    },
    /// Admit only vectors present in the shadow cache, at the queue top
    /// (Figure 11b).
    Shadow,
    /// Shadow hits go to the queue top; shadow misses are still admitted,
    /// but at `position` (Figure 11c).
    ShadowPosition {
        /// Queue insertion fraction for shadow misses.
        position: f64,
    },
    /// Admit only vectors whose SHP-training access count is strictly
    /// greater than `t`, at the queue top (Figure 12, the shipping policy).
    Threshold {
        /// Minimum training-time access count (exclusive).
        t: u32,
    },
}

impl AdmissionPolicy {
    /// Decides admission for one prefetch candidate.
    ///
    /// * `freq` — the candidate's access count during the SHP training run;
    /// * `shadow_hit` — whether the candidate is in the shadow cache.
    ///
    /// Returns the queue insertion fraction, or `None` to drop the
    /// candidate.
    pub fn admit(&self, freq: u32, shadow_hit: bool) -> Option<f64> {
        match *self {
            AdmissionPolicy::None => None,
            AdmissionPolicy::All { position } => Some(position),
            AdmissionPolicy::Shadow => shadow_hit.then_some(0.0),
            AdmissionPolicy::ShadowPosition { position } => {
                Some(if shadow_hit { 0.0 } else { position })
            }
            AdmissionPolicy::Threshold { t } => (freq > t).then_some(0.0),
        }
    }

    /// Whether this policy consults the shadow cache (so the simulator knows
    /// to maintain one).
    pub fn needs_shadow(&self) -> bool {
        matches!(self, AdmissionPolicy::Shadow | AdmissionPolicy::ShadowPosition { .. })
    }

    /// Whether this policy prefetches at all.
    pub fn prefetches(&self) -> bool {
        !matches!(self, AdmissionPolicy::None)
    }
}

impl Default for AdmissionPolicy {
    /// The paper's shipping default: threshold admission with `t = 10`
    /// (mid-range of the Figure 12 sweep).
    fn default() -> Self {
        AdmissionPolicy::Threshold { t: 10 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_admits() {
        let p = AdmissionPolicy::None;
        assert_eq!(p.admit(1000, true), None);
        assert!(!p.prefetches());
        assert!(!p.needs_shadow());
    }

    #[test]
    fn all_admits_at_position() {
        let p = AdmissionPolicy::All { position: 0.7 };
        assert_eq!(p.admit(0, false), Some(0.7));
        assert!(p.prefetches());
    }

    #[test]
    fn shadow_requires_hit() {
        let p = AdmissionPolicy::Shadow;
        assert_eq!(p.admit(0, true), Some(0.0));
        assert_eq!(p.admit(1000, false), None);
        assert!(p.needs_shadow());
    }

    #[test]
    fn shadow_position_splits_by_hit() {
        let p = AdmissionPolicy::ShadowPosition { position: 0.5 };
        assert_eq!(p.admit(0, true), Some(0.0));
        assert_eq!(p.admit(0, false), Some(0.5));
        assert!(p.needs_shadow());
    }

    #[test]
    fn threshold_is_strict() {
        let p = AdmissionPolicy::Threshold { t: 10 };
        assert_eq!(p.admit(10, false), None);
        assert_eq!(p.admit(11, false), Some(0.0));
        assert!(!p.needs_shadow());
    }

    #[test]
    fn default_is_threshold() {
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Threshold { t: 10 });
    }
}
