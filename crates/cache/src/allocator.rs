//! Alternative DRAM-division policies — an ablation of §4.3.3's choice.
//!
//! The paper divides the total DRAM budget across embedding tables with
//! greedy marginal-gain allocation over hit-rate curves (Dynacache), and
//! notes this is optimal because production curves are convex. This module
//! makes that design decision measurable by providing the alternatives a
//! deployment might reach for instead:
//!
//! * [`AllocationPolicy::Uniform`] — every table gets `total / n`;
//! * [`AllocationPolicy::ProportionalToLookups`] — budget follows each
//!   table's share of lookups (Table 1's "% of total" column), the
//!   heuristic most multi-tenant caches default to;
//! * [`AllocationPolicy::GreedyMarginal`] — the paper's choice
//!   ([`crate::allocate_dram`]);
//! * [`AllocationPolicy::HillClimb`] — Cliffhanger-style local search:
//!   start uniform, repeatedly move one granule from the table that loses
//!   least to the table that gains most. Unlike greedy-from-zero, it
//!   converges to a local optimum even on *non-convex* curves (performance
//!   cliffs), which is exactly the case Cliffhanger was built for.
//!
//! # Example
//!
//! ```
//! use bandana_cache::allocator::{allocate_with, AllocationPolicy};
//! use bandana_cache::HitRateCurve;
//!
//! let hot = HitRateCurve::new(vec![(0, 0.0), (100, 0.9)]);
//! let cold = HitRateCurve::new(vec![(0, 0.0), (100, 0.2)]);
//! let alloc = allocate_with(
//!     AllocationPolicy::HillClimb,
//!     100,
//!     &[hot, cold],
//!     &[0.7, 0.3],
//!     10,
//! );
//! assert!(alloc[0] > alloc[1]);
//! ```

use crate::alloc::{allocate_dram, allocation_hit_rate};
use crate::hrc::HitRateCurve;

/// How the total DRAM budget is divided across tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// Equal budget per table, ignoring workloads.
    Uniform,
    /// Budget proportional to each table's lookup share.
    ProportionalToLookups,
    /// Greedy marginal-gain over hit-rate curves (the paper's policy).
    GreedyMarginal,
    /// Cliffhanger-style hill climbing from a uniform start.
    HillClimb,
}

impl AllocationPolicy {
    /// Every policy, in the order ablation tables report them.
    pub const ALL: [AllocationPolicy; 4] = [
        AllocationPolicy::Uniform,
        AllocationPolicy::ProportionalToLookups,
        AllocationPolicy::GreedyMarginal,
        AllocationPolicy::HillClimb,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AllocationPolicy::Uniform => "uniform",
            AllocationPolicy::ProportionalToLookups => "proportional",
            AllocationPolicy::GreedyMarginal => "greedy-marginal",
            AllocationPolicy::HillClimb => "hill-climb",
        }
    }
}

impl std::fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Divides `total` cache entries across tables under `policy`.
///
/// Arguments mirror [`crate::allocate_dram`]; `curves` are ignored by the
/// curve-free policies but must still be of matching length.
///
/// # Panics
///
/// Panics if the slices disagree in length, are empty, or `granularity` is
/// zero.
pub fn allocate_with(
    policy: AllocationPolicy,
    total: usize,
    curves: &[HitRateCurve],
    weights: &[f64],
    granularity: usize,
) -> Vec<usize> {
    assert!(!curves.is_empty(), "need at least one table");
    assert_eq!(curves.len(), weights.len(), "curves/weights length mismatch");
    assert!(granularity > 0, "granularity must be non-zero");
    match policy {
        AllocationPolicy::Uniform => uniform(total, curves.len()),
        AllocationPolicy::ProportionalToLookups => proportional(total, weights),
        AllocationPolicy::GreedyMarginal => allocate_dram(total, curves, weights, granularity),
        AllocationPolicy::HillClimb => hill_climb(total, curves, weights, granularity),
    }
}

fn uniform(total: usize, tables: usize) -> Vec<usize> {
    let base = total / tables;
    let mut alloc = vec![base; tables];
    // Leftover goes to the front tables so the budget is fully used.
    for a in alloc.iter_mut().take(total % tables) {
        *a += 1;
    }
    alloc
}

fn proportional(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return uniform(total, weights.len());
    }
    let mut alloc: Vec<usize> =
        weights.iter().map(|w| (total as f64 * w / sum).floor() as usize).collect();
    // Hand the rounding remainder to the largest weights, deterministically.
    let mut leftover = total - alloc.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite weights"));
    let mut cursor = 0usize;
    while leftover > 0 {
        alloc[order[cursor % order.len()]] += 1;
        cursor += 1;
        leftover -= 1;
    }
    alloc
}

/// Cliffhanger-style local search: from a uniform start, repeatedly move a
/// granule from the table whose last granule contributes least to the table
/// whose next granule would contribute most, until no move improves the
/// weighted hit rate.
fn hill_climb(
    total: usize,
    curves: &[HitRateCurve],
    weights: &[f64],
    granularity: usize,
) -> Vec<usize> {
    let tables = curves.len();
    let mut alloc = uniform(total, tables);
    // Bound iterations: each granule can move at most once per sweep and
    // the objective strictly improves, but guard against float plateaus.
    let max_moves = 4 * (total / granularity + tables) + 64;
    for _ in 0..max_moves {
        // Best gainer: largest weighted gain from +granularity.
        let (gainer, gain) = (0..tables)
            .map(|i| (i, weights[i] * curves[i].marginal_gain(alloc[i], granularity)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gains"))
            .expect("non-empty tables");
        // Best donor: smallest weighted loss from -granularity, excluding
        // the gainer and tables too small to give.
        let donor = (0..tables)
            .filter(|&i| i != gainer && alloc[i] >= granularity)
            .map(|i| {
                let loss =
                    weights[i] * curves[i].marginal_gain(alloc[i] - granularity, granularity);
                (i, loss)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite losses"));
        let Some((donor, loss)) = donor else { break };
        if gain <= loss + 1e-12 {
            break; // local optimum
        }
        alloc[donor] -= granularity;
        alloc[gainer] += granularity;
    }
    alloc
}

/// Convenience: the weighted hit rate each policy achieves on the same
/// curves — one row per policy, for ablation tables.
pub fn compare_policies(
    total: usize,
    curves: &[HitRateCurve],
    weights: &[f64],
    granularity: usize,
) -> Vec<(AllocationPolicy, f64)> {
    AllocationPolicy::ALL
        .iter()
        .map(|&p| {
            let alloc = allocate_with(p, total, curves, weights, granularity);
            (p, allocation_hit_rate(&alloc, curves, weights))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(max: usize, top: f64) -> HitRateCurve {
        HitRateCurve::new(vec![(0, 0.0), (max, top)])
    }

    #[test]
    fn uniform_splits_evenly_with_remainder() {
        let curves = vec![linear(10, 0.5), linear(10, 0.5), linear(10, 0.5)];
        let alloc = allocate_with(AllocationPolicy::Uniform, 10, &curves, &[0.3, 0.3, 0.4], 1);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert_eq!(alloc, vec![4, 3, 3]);
    }

    #[test]
    fn proportional_follows_weights() {
        let curves = vec![linear(100, 0.9), linear(100, 0.9)];
        let alloc =
            allocate_with(AllocationPolicy::ProportionalToLookups, 100, &curves, &[0.8, 0.2], 1);
        assert_eq!(alloc.iter().sum::<usize>(), 100);
        assert_eq!(alloc, vec![80, 20]);
    }

    #[test]
    fn proportional_degenerate_weights_fall_back_to_uniform() {
        let curves = vec![linear(10, 0.5), linear(10, 0.5)];
        let alloc =
            allocate_with(AllocationPolicy::ProportionalToLookups, 10, &curves, &[0.0, 0.0], 1);
        assert_eq!(alloc, vec![5, 5]);
    }

    #[test]
    fn hill_climb_matches_greedy_on_convex_curves() {
        let curves = vec![
            HitRateCurve::new(vec![(0, 0.0), (10, 0.5), (20, 0.7), (40, 0.8)]),
            HitRateCurve::new(vec![(0, 0.0), (10, 0.3), (20, 0.55), (40, 0.75)]),
        ];
        let weights = [0.6, 0.4];
        let greedy = allocate_with(AllocationPolicy::GreedyMarginal, 40, &curves, &weights, 5);
        let climbed = allocate_with(AllocationPolicy::HillClimb, 40, &curves, &weights, 5);
        let hr_greedy = allocation_hit_rate(&greedy, &curves, &weights);
        let hr_climbed = allocation_hit_rate(&climbed, &curves, &weights);
        assert!(
            (hr_greedy - hr_climbed).abs() < 1e-9,
            "on convex curves both reach the optimum: greedy={hr_greedy} climb={hr_climbed}"
        );
    }

    #[test]
    fn hill_climb_escapes_a_cliff() {
        // Table 0 has a performance cliff: nothing until 30 entries, then a
        // jump to 0.9 (think: a tight loop slightly larger than the cache).
        // Greedy-from-zero sees zero marginal gain in its first steps and
        // may starve it; hill climbing from uniform holds enough budget to
        // see across the cliff when moves are coarse.
        let cliff = HitRateCurve::new(vec![(0, 0.0), (29, 0.0), (30, 0.9), (40, 0.92)]);
        let gentle = HitRateCurve::new(vec![(0, 0.0), (10, 0.2), (40, 0.3)]);
        let curves = vec![cliff, gentle];
        let weights = [0.7, 0.3];
        let climbed = allocate_with(AllocationPolicy::HillClimb, 60, &curves, &weights, 30);
        let hr = allocation_hit_rate(&climbed, &curves, &weights);
        // Uniform start is [30, 30] which already crosses the cliff; the
        // climb must not move *off* it.
        assert!(hr >= 0.7 * 0.9, "hill climb abandoned the cliff: {climbed:?} hr={hr}");
    }

    #[test]
    fn all_policies_respect_budget() {
        let curves = vec![linear(50, 0.8), linear(50, 0.4), linear(50, 0.2)];
        let weights = [0.5, 0.3, 0.2];
        for p in AllocationPolicy::ALL {
            let alloc = allocate_with(p, 90, &curves, &weights, 10);
            assert!(alloc.iter().sum::<usize>() <= 90, "{p} overspent: {alloc:?}");
        }
    }

    #[test]
    fn greedy_not_worse_than_naive_policies_on_convex() {
        let curves = vec![
            HitRateCurve::new(vec![(0, 0.0), (20, 0.6), (40, 0.8), (80, 0.9)]),
            HitRateCurve::new(vec![(0, 0.0), (20, 0.2), (40, 0.35), (80, 0.5)]),
            HitRateCurve::new(vec![(0, 0.0), (20, 0.05), (40, 0.1), (80, 0.15)]),
        ];
        let weights = [0.5, 0.35, 0.15];
        let rows = compare_policies(120, &curves, &weights, 10);
        let score = |p: AllocationPolicy| rows.iter().find(|(q, _)| *q == p).expect("present").1;
        assert!(score(AllocationPolicy::GreedyMarginal) + 1e-9 >= score(AllocationPolicy::Uniform));
        assert!(
            score(AllocationPolicy::GreedyMarginal) + 1e-9
                >= score(AllocationPolicy::ProportionalToLookups)
        );
    }

    #[test]
    fn compare_policies_reports_all() {
        let curves = vec![linear(10, 0.5)];
        let rows = compare_policies(10, &curves, &[1.0], 2);
        assert_eq!(rows.len(), AllocationPolicy::ALL.len());
    }

    #[test]
    fn display_names_stable() {
        let names: Vec<&str> = AllocationPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["uniform", "proportional", "greedy-marginal", "hill-climb"]);
    }
}
