//! Online hit-rate-curve estimation from a sampled key stream.
//!
//! The offline pipeline builds [`HitRateCurve`]s from training traces and
//! solves the DRAM split once, at build time. To close the paper's loop
//! online (§4.3.3), each table needs a *fresh* curve that tracks the live
//! access mix. [`CurveSampler`] applies the miniature-cache technique of
//! [`crate::mini::MiniatureCacheSet`] across cache *sizes* instead of
//! admission thresholds: a spatially-sampled slice of the key stream (rate
//! `R`, SHARDS-style) is fed through a ladder of miniature LRU caches, one
//! per candidate size, each scaled to `max(1, size × R)` entries. The LRU
//! stack property guarantees a larger rung never has fewer hits on the same
//! stream, so the measured points are always monotone and
//! [`HitRateCurve::new`] accepts them.

use crate::hrc::HitRateCurve;
use crate::lru::SegmentedLru;
use crate::mini::SampledStream;

/// One miniature cache in the size ladder.
#[derive(Debug, Clone)]
struct Rung {
    /// Real (unsampled) cache size this rung models, in entries.
    entries: usize,
    cache: SegmentedLru<()>,
    hits: u64,
    lookups: u64,
}

/// Maintains an online per-table [`HitRateCurve`] by simulating a ladder of
/// miniature LRU caches over a sampled key stream.
///
/// Counters are windowed: [`CurveSampler::reset_window`] zeroes the hit/
/// lookup counters while keeping the miniature caches warm, so each window
/// measures the steady-state hit rate of the *current* access mix — exactly
/// what a drift-chasing budget controller needs.
///
/// # Example
///
/// ```
/// use bandana_cache::CurveSampler;
///
/// let mut sampler = CurveSampler::new(1024, 4, 1.0, 7);
/// for round in 0..32u32 {
///     for v in 0..128u32 {
///         sampler.observe(v + (round % 2));
///     }
/// }
/// let curve = sampler.curve().expect("observed a full window");
/// // 256 entries already hold the ~129-key working set.
/// assert!(curve.hit_rate_at(256) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct CurveSampler {
    sampler: SampledStream,
    rungs: Vec<Rung>,
    observed: u64,
    sampled: u64,
}

impl CurveSampler {
    /// Creates a sampler whose curve spans `(0, max_entries]` with `rungs`
    /// evenly spaced sizes, simulating at sampling rate `rate`.
    ///
    /// `max_entries` should be the *total* budget a table could conceivably
    /// receive (not its current share), so the solver can see the gain of
    /// growing a table past its current allocation.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` or `rungs` is zero, or `rate` is outside
    /// `(0, 1]`.
    pub fn new(max_entries: usize, rungs: usize, rate: f64, salt: u64) -> Self {
        assert!(max_entries > 0, "curve needs a non-zero size range");
        assert!(rungs > 0, "need at least one rung");
        let sampler = SampledStream::new(rate, salt);
        let mut ladder: Vec<Rung> = Vec::with_capacity(rungs);
        for i in 1..=rungs {
            let entries = (max_entries * i / rungs).max(1);
            if ladder.last().is_some_and(|r| r.entries == entries) {
                continue;
            }
            let mini = ((entries as f64 * rate).round() as usize).max(1);
            ladder.push(Rung { entries, cache: SegmentedLru::new(mini, 1), hits: 0, lookups: 0 });
        }
        CurveSampler { sampler, rungs: ladder, observed: 0, sampled: 0 }
    }

    /// Feeds one lookup through the sampler.
    pub fn observe(&mut self, v: u32) {
        self.observed += 1;
        if !self.sampler.keeps(v) {
            return;
        }
        self.sampled += 1;
        for rung in &mut self.rungs {
            rung.lookups += 1;
            if rung.cache.get(u64::from(v)).is_some() {
                rung.hits += 1;
            } else {
                rung.cache.insert(u64::from(v), (), 0.0);
            }
        }
    }

    /// Feeds a whole query.
    pub fn observe_all(&mut self, ids: &[u32]) {
        for &v in ids {
            self.observe(v);
        }
    }

    /// Total lookups seen since construction (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Lookups that passed the spatial sampler in the current window.
    pub fn window_lookups(&self) -> u64 {
        self.rungs.first().map_or(0, |r| r.lookups)
    }

    /// The current-window hit-rate curve, or `None` if the window has no
    /// sampled lookups yet.
    pub fn curve(&self) -> Option<HitRateCurve> {
        if self.window_lookups() == 0 {
            return None;
        }
        let points =
            self.rungs.iter().map(|r| (r.entries, r.hits as f64 / r.lookups as f64)).collect();
        Some(HitRateCurve::new(points))
    }

    /// Starts a new measurement window: zeroes the hit/lookup counters but
    /// keeps the miniature caches warm.
    pub fn reset_window(&mut self) {
        for rung in &mut self.rungs {
            rung.hits = 0;
            rung.lookups = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_on_any_stream() {
        let mut sampler = CurveSampler::new(64, 8, 1.0, 3);
        let mut x = 11u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sampler.observe((x >> 33) as u32 % 200);
        }
        let curve = sampler.curve().expect("stream was observed");
        for w in curve.points().windows(2) {
            assert!(w[1].1 + 1e-12 >= w[0].1, "curve not monotone: {w:?}");
        }
    }

    #[test]
    fn empty_window_yields_no_curve() {
        let sampler = CurveSampler::new(64, 4, 1.0, 0);
        assert!(sampler.curve().is_none());
        let mut sampler = sampler;
        sampler.observe(1);
        sampler.reset_window();
        assert!(sampler.curve().is_none(), "reset window starts empty");
    }

    #[test]
    fn small_working_set_saturates_early() {
        let mut sampler = CurveSampler::new(1000, 10, 1.0, 5);
        for _ in 0..100 {
            for v in 0..50u32 {
                sampler.observe(v);
            }
        }
        let curve = sampler.curve().unwrap();
        // 100 entries hold the whole 50-key working set; 1000 adds nothing.
        let at_small = curve.hit_rate_at(100);
        assert!(at_small > 0.9, "working set should fit: {at_small}");
        assert!(curve.hit_rate_at(1000) - at_small < 0.05);
    }

    #[test]
    fn windowed_counters_track_drift() {
        let mut sampler = CurveSampler::new(256, 8, 1.0, 9);
        // Phase 1: tiny hot set.
        for _ in 0..200 {
            for v in 0..8u32 {
                sampler.observe(v);
            }
        }
        let hot = sampler.curve().unwrap().hit_rate_at(64);
        sampler.reset_window();
        // Phase 2: wide scan, no reuse within the window until wrap.
        for round in 0..4u32 {
            for v in 0..1024u32 {
                sampler.observe(v + round * 1024);
            }
        }
        let cold = sampler.curve().unwrap().hit_rate_at(64);
        assert!(hot > 0.9, "hot phase should hit: {hot}");
        assert!(cold < 0.1, "scan phase should miss: {cold}");
    }

    #[test]
    fn sampling_rate_shrinks_the_rungs() {
        let sampler = CurveSampler::new(1000, 4, 0.1, 1);
        for rung in &sampler.rungs {
            let expected = ((rung.entries as f64 * 0.1).round() as usize).max(1);
            assert_eq!(rung.cache.capacity(), expected);
        }
    }

    #[test]
    fn duplicate_ladder_sizes_are_merged() {
        // max_entries smaller than the rung count would produce duplicate
        // 1-entry rungs without the dedup.
        let sampler = CurveSampler::new(3, 8, 1.0, 0);
        let sizes: Vec<usize> = sampler.rungs.iter().map(|r| r.entries).collect();
        let mut deduped = sizes.clone();
        deduped.dedup();
        assert_eq!(sizes, deduped, "ladder sizes must be strictly increasing");
    }
}
