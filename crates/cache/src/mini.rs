//! Miniature caches: sampled cache simulation for threshold auto-tuning
//! (paper §4.3.3, after Waldspurger et al., ATC 2017).
//!
//! Picking the admission threshold `t` a priori is impossible — Figure 12
//! shows the optimum varies per table and cache size. Bandana therefore runs
//! dozens of *miniature caches*: each simulates the real cache under a
//! different `t`, but over a spatially-sampled slice of the request stream
//! (sample vectors by hash at rate `R`, scale the cache to `R × size`).
//! Table 2 of the paper shows 0.1% sampling picks near-oracle thresholds.

use crate::admission::AdmissionPolicy;
use crate::sim::PrefetchCacheSim;
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};

/// Spatial hash sampler: keeps a deterministic `rate` fraction of vector
/// ids (SHARDS-style), so a sampled stream is self-consistent across reuse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampledStream {
    rate: f64,
    threshold: u64,
    salt: u64,
}

impl SampledStream {
    /// Creates a sampler keeping roughly `rate` of all ids.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn new(rate: f64, salt: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0,1], got {rate}");
        SampledStream { rate, threshold: (rate * u64::MAX as f64) as u64, salt }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether vector `v` is in the sample (pure function of `v` and the
    /// salt).
    pub fn keeps(&self, v: u32) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        mix(self.salt ^ v as u64) <= self.threshold
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A set of miniature caches, one per candidate threshold, plus a miniature
/// baseline (no prefetching) for effective-bandwidth estimation.
///
/// # Example
///
/// ```
/// use bandana_cache::MiniatureCacheSet;
/// use bandana_partition::{AccessFrequency, BlockLayout};
///
/// let layout = BlockLayout::identity(1024, 32);
/// let freq = AccessFrequency::zeros(1024);
/// let mut minis = MiniatureCacheSet::new(&layout, &freq, 256, 0.25, &[5, 10, 20], 1);
/// for v in 0..1024u32 {
///     minis.observe(v);
/// }
/// let chosen = minis.best_threshold();
/// assert!([5, 10, 20].contains(&chosen));
/// ```
#[derive(Debug, Clone)]
pub struct MiniatureCacheSet<'a> {
    sampler: SampledStream,
    thresholds: Vec<u32>,
    sims: Vec<PrefetchCacheSim<'a>>,
    baseline: PrefetchCacheSim<'a>,
    observed: u64,
    sampled: u64,
}

impl<'a> MiniatureCacheSet<'a> {
    /// Creates miniature caches for each threshold in `thresholds`.
    ///
    /// `real_capacity` is the production cache size in vectors; each mini
    /// cache holds `max(1, real_capacity × rate)` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty, `real_capacity` is zero, or `rate`
    /// is outside `(0, 1]`.
    pub fn new(
        layout: &'a BlockLayout,
        freq: &AccessFrequency,
        real_capacity: usize,
        rate: f64,
        thresholds: &[u32],
        salt: u64,
    ) -> Self {
        assert!(!thresholds.is_empty(), "need at least one candidate threshold");
        assert!(real_capacity > 0, "cache capacity must be non-zero");
        let sampler = SampledStream::new(rate, salt);
        let mini_capacity = ((real_capacity as f64 * rate).round() as usize).max(1);
        let sims = thresholds
            .iter()
            .map(|&t| {
                PrefetchCacheSim::new(
                    layout,
                    mini_capacity,
                    AdmissionPolicy::Threshold { t },
                    freq.clone(),
                )
            })
            .collect();
        let baseline =
            PrefetchCacheSim::new(layout, mini_capacity, AdmissionPolicy::None, freq.clone());
        MiniatureCacheSet {
            sampler,
            thresholds: thresholds.to_vec(),
            sims,
            baseline,
            observed: 0,
            sampled: 0,
        }
    }

    /// Feeds one application lookup through the samplers.
    pub fn observe(&mut self, v: u32) {
        self.observed += 1;
        if !self.sampler.keeps(v) {
            return;
        }
        self.sampled += 1;
        for sim in &mut self.sims {
            sim.lookup(v);
        }
        self.baseline.lookup(v);
    }

    /// Feeds a whole query.
    pub fn observe_all(&mut self, ids: &[u32]) {
        for &v in ids {
            self.observe(v);
        }
    }

    /// Total lookups seen (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Lookups that passed the sampler.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Estimated effective-bandwidth increase per candidate threshold,
    /// against the miniature no-prefetch baseline.
    pub fn estimated_gains(&self) -> Vec<(u32, f64)> {
        let base = self.baseline.metrics().block_reads;
        self.thresholds
            .iter()
            .zip(&self.sims)
            .map(|(&t, sim)| (t, sim.metrics().effective_bandwidth_increase(base)))
            .collect()
    }

    /// The candidate threshold with the highest estimated gain (ties go to
    /// the larger, i.e. more conservative, threshold).
    pub fn best_threshold(&self) -> u32 {
        let mut best = (self.thresholds[0], f64::NEG_INFINITY);
        for (t, gain) in self.estimated_gains() {
            if gain > best.1 || (gain == best.1 && t > best.0) {
                best = (t, gain);
            }
        }
        best.0
    }

    /// Estimated hit rate per candidate threshold.
    pub fn estimated_hit_rates(&self) -> Vec<(u32, f64)> {
        self.thresholds
            .iter()
            .zip(&self.sims)
            .map(|(&t, sim)| (t, sim.metrics().hit_rate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rate_is_respected() {
        let s = SampledStream::new(0.1, 42);
        let kept = (0..100_000u32).filter(|&v| s.keeps(v)).count();
        let frac = kept as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
    }

    #[test]
    fn sampler_is_deterministic_and_spatial() {
        let s = SampledStream::new(0.5, 7);
        for v in 0..1000u32 {
            assert_eq!(s.keeps(v), s.keeps(v), "sampling must be a pure function of id");
        }
        let t = SampledStream::new(0.5, 8);
        let differs = (0..1000u32).any(|v| s.keeps(v) != t.keeps(v));
        assert!(differs, "different salts should sample differently");
    }

    #[test]
    fn full_rate_keeps_everything() {
        let s = SampledStream::new(1.0, 0);
        assert!((0..1000u32).all(|v| s.keeps(v)));
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0,1]")]
    fn zero_rate_rejected() {
        let _ = SampledStream::new(0.0, 0);
    }

    #[test]
    fn mini_set_observes_only_sampled() {
        let layout = BlockLayout::identity(1024, 32);
        let freq = AccessFrequency::zeros(1024);
        let mut minis = MiniatureCacheSet::new(&layout, &freq, 128, 0.25, &[5], 3);
        for v in 0..1024u32 {
            minis.observe(v);
        }
        assert_eq!(minis.observed(), 1024);
        let frac = minis.sampled() as f64 / 1024.0;
        assert!((frac - 0.25).abs() < 0.1, "sampled fraction {frac}");
    }

    #[test]
    fn mini_picks_sensible_threshold_on_skewed_workload() {
        // Build a layout where block 0 holds hot vectors and the training
        // frequencies reflect it; the mini set should prefer a threshold
        // that admits the hot block's vectors (low t) over one that blocks
        // everything (huge t).
        let layout = BlockLayout::identity(256, 8);
        // Hot vectors 0..8 appear in many training queries.
        let train: Vec<Vec<u32>> =
            (0..50).map(|i| vec![i % 8, (i + 1) % 8, 8 + (i % 248)]).collect();
        let freq = AccessFrequency::from_queries(256, train.iter().map(|q| q.as_slice()));
        let mut minis = MiniatureCacheSet::new(&layout, &freq, 64, 1.0, &[2, 1_000_000], 1);
        // Evaluation stream: repeatedly scan the hot block.
        for round in 0..50u32 {
            for v in 0..8u32 {
                minis.observe((v + round) % 8);
            }
        }
        assert_eq!(minis.best_threshold(), 2);
        let gains = minis.estimated_gains();
        assert!(gains[0].1 > gains[1].1, "{gains:?}");
    }

    #[test]
    fn ties_prefer_conservative_threshold() {
        let layout = BlockLayout::identity(64, 8);
        let freq = AccessFrequency::zeros(64);
        let minis = MiniatureCacheSet::new(&layout, &freq, 16, 1.0, &[5, 10], 1);
        // No observations: all gains equal (0 block reads) => larger t wins.
        assert_eq!(minis.best_threshold(), 10);
    }
}
