//! The shadow cache: an index-only LRU tracking what a no-prefetch cache
//! would contain (paper §4.3.1).
//!
//! Bandana simulates "another cache that has no prefetched vectors, without
//! actually caching the values": only ids of vectors *explicitly read by the
//! application* enter the shadow queue. When a block is read from NVM, a
//! prefetched vector is admitted to the real cache only if the shadow cache
//! has seen it recently. The shadow capacity is a multiplier over the real
//! cache size (Figure 11b sweeps 1.0–2.0).

use crate::lru::SegmentedLru;

/// An id-only LRU used as a prefetch-admission filter.
///
/// # Example
///
/// ```
/// use bandana_cache::ShadowCache;
///
/// let mut shadow = ShadowCache::new(100, 1.5);
/// assert_eq!(shadow.capacity(), 150);
/// shadow.record_read(42);
/// assert!(shadow.contains(42));
/// assert!(!shadow.contains(7));
/// ```
#[derive(Debug, Clone)]
pub struct ShadowCache {
    lru: SegmentedLru<()>,
}

impl ShadowCache {
    /// Creates a shadow cache sized `real_capacity × multiplier` (at least
    /// one entry).
    ///
    /// # Panics
    ///
    /// Panics if `real_capacity` is zero or `multiplier` is not positive.
    pub fn new(real_capacity: usize, multiplier: f64) -> Self {
        assert!(real_capacity > 0, "capacity must be non-zero");
        assert!(multiplier > 0.0, "multiplier must be positive");
        let cap = ((real_capacity as f64 * multiplier) as usize).max(1);
        ShadowCache { lru: SegmentedLru::new(cap, 1) }
    }

    /// Records an application read (not a prefetch) of `key`.
    pub fn record_read(&mut self, key: u64) {
        self.lru.insert(key, (), 0.0);
    }

    /// Whether `key` is in the shadow queue (does not touch recency).
    pub fn contains(&self, key: u64) -> bool {
        self.lru.contains(key)
    }

    /// The shadow queue capacity in entries.
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Number of ids currently tracked.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the shadow queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_scales_capacity() {
        assert_eq!(ShadowCache::new(100, 1.0).capacity(), 100);
        assert_eq!(ShadowCache::new(100, 1.5).capacity(), 150);
        assert_eq!(ShadowCache::new(100, 2.0).capacity(), 200);
        assert_eq!(ShadowCache::new(1, 0.5).capacity(), 1);
    }

    #[test]
    fn lru_eviction_applies() {
        let mut s = ShadowCache::new(2, 1.0);
        s.record_read(1);
        s.record_read(2);
        s.record_read(3);
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rereads_refresh_recency() {
        let mut s = ShadowCache::new(2, 1.0);
        s.record_read(1);
        s.record_read(2);
        s.record_read(1); // refresh 1
        s.record_read(3); // evicts 2, not 1
        assert!(s.contains(1));
        assert!(!s.contains(2));
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn zero_multiplier_rejected() {
        let _ = ShadowCache::new(10, 0.0);
    }
}
