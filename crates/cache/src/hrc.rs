//! Hit-rate curves: hit rate as a function of cache size.
//!
//! The paper computes these from stack distances (Figure 3) and uses them to
//! divide DRAM across embedding tables (§4.3.3, following Dynacache): the
//! curves observed in production are convex, so a greedy marginal-gain
//! allocation is optimal.

use serde::{Deserialize, Serialize};

/// A piecewise-linear hit-rate curve: monotonically non-decreasing points of
/// (cache size in entries, hit rate).
///
/// # Example
///
/// ```
/// use bandana_cache::HitRateCurve;
///
/// let curve = HitRateCurve::new(vec![(0, 0.0), (100, 0.5), (200, 0.6)]);
/// assert_eq!(curve.hit_rate_at(100), 0.5);
/// assert!((curve.hit_rate_at(50) - 0.25).abs() < 1e-12); // interpolated
/// assert_eq!(curve.hit_rate_at(1000), 0.6); // clamped right
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRateCurve {
    points: Vec<(usize, f64)>,
}

impl HitRateCurve {
    /// Creates a curve from `(size, hit_rate)` samples.
    ///
    /// Points are sorted by size; an implicit `(0, 0.0)` anchor is added if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, a hit rate is outside `[0, 1]`, or the
    /// hit rates are not non-decreasing in size (LRU hit rates always are —
    /// a violation indicates a measurement bug upstream).
    pub fn new(mut points: Vec<(usize, f64)>) -> Self {
        assert!(!points.is_empty(), "curve needs at least one point");
        points.sort_by_key(|&(s, _)| s);
        points.dedup_by_key(|&mut (s, _)| s);
        if points[0].0 != 0 {
            points.insert(0, (0, 0.0));
        }
        for w in points.windows(2) {
            assert!(
                w[1].1 + 1e-9 >= w[0].1,
                "hit rate must be non-decreasing: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        for &(_, hr) in &points {
            assert!((0.0..=1.0 + 1e-9).contains(&hr), "hit rate {hr} outside [0,1]");
        }
        HitRateCurve { points }
    }

    /// The underlying samples.
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }

    /// Hit rate at `size`, linearly interpolated and clamped at the ends.
    pub fn hit_rate_at(&self, size: usize) -> f64 {
        match self.points.binary_search_by_key(&size, |&(s, _)| s) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) if i == self.points.len() => self.points.last().unwrap().1,
            Err(i) => {
                let (s0, h0) = self.points[i - 1];
                let (s1, h1) = self.points[i];
                let frac = (size - s0) as f64 / (s1 - s0) as f64;
                h0 + frac * (h1 - h0)
            }
        }
    }

    /// Marginal hit-rate gain of growing the cache from `size` to
    /// `size + delta`.
    pub fn marginal_gain(&self, size: usize, delta: usize) -> f64 {
        self.hit_rate_at(size + delta) - self.hit_rate_at(size)
    }

    /// Whether the curve is (approximately) concave in size — diminishing
    /// returns, which makes greedy DRAM allocation optimal. (The paper calls
    /// such curves "convex" following the caching literature.)
    pub fn has_diminishing_returns(&self) -> bool {
        let mut prev_slope = f64::INFINITY;
        for w in self.points.windows(2) {
            let (s0, h0) = w[0];
            let (s1, h1) = w[1];
            let slope = (h1 - h0) / (s1 - s0) as f64;
            if slope > prev_slope + 1e-9 {
                return false;
            }
            prev_slope = slope;
        }
        true
    }

    /// The largest sampled size.
    pub fn max_size(&self) -> usize {
        self.points.last().unwrap().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_and_clamping() {
        let c = HitRateCurve::new(vec![(10, 0.2), (20, 0.8)]);
        assert_eq!(c.hit_rate_at(0), 0.0);
        assert!((c.hit_rate_at(5) - 0.1).abs() < 1e-12);
        assert_eq!(c.hit_rate_at(10), 0.2);
        assert!((c.hit_rate_at(15) - 0.5).abs() < 1e-12);
        assert_eq!(c.hit_rate_at(20), 0.8);
        assert_eq!(c.hit_rate_at(100), 0.8);
    }

    #[test]
    fn marginal_gain() {
        let c = HitRateCurve::new(vec![(0, 0.0), (100, 0.5)]);
        assert!((c.marginal_gain(0, 50) - 0.25).abs() < 1e-12);
        assert_eq!(c.marginal_gain(100, 50), 0.0);
    }

    #[test]
    fn diminishing_returns_detection() {
        let concave = HitRateCurve::new(vec![(0, 0.0), (10, 0.5), (20, 0.7), (30, 0.75)]);
        assert!(concave.has_diminishing_returns());
        let cliffy = HitRateCurve::new(vec![(0, 0.0), (10, 0.1), (20, 0.8)]);
        assert!(!cliffy.has_diminishing_returns());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = HitRateCurve::new(vec![(20, 0.8), (10, 0.2)]);
        assert_eq!(c.points()[1], (10, 0.2));
        assert_eq!(c.max_size(), 20);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_curve_rejected() {
        let _ = HitRateCurve::new(vec![(10, 0.5), (20, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "needs at least one point")]
    fn empty_curve_rejected() {
        let _ = HitRateCurve::new(vec![]);
    }
}
