//! The per-table cache simulator: LRU + block prefetch + admission policy.
//!
//! This is the execution model of one Bandana table (§4.3): a lookup that
//! misses in DRAM costs one 4 KB NVM block read; the block's other vectors
//! are prefetch candidates filtered by the [`AdmissionPolicy`]. The `core`
//! crate runs the same logic against real byte storage; this simulator
//! tracks ids only and is what the miniature caches (§4.3.3) replicate at
//! small scale.

use crate::admission::AdmissionPolicy;
use crate::lru::SegmentedLru;
use crate::metrics::CacheMetrics;
use crate::shadow::ShadowCache;
use bandana_partition::{AccessFrequency, BlockLayout};

/// Default shadow-cache size multiplier (mid-range of Figure 11b's sweep).
pub const DEFAULT_SHADOW_MULTIPLIER: f64 = 1.5;

/// How many LRU segments the queue uses; position granularity is 1/16.
const SEGMENTS: usize = 16;

/// Whether a cached entry arrived on demand or as a prefetch (for the
/// prefetch-usefulness counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Demand,
    Prefetch,
}

/// Simulates one embedding table's DRAM cache in front of block NVM.
///
/// # Example
///
/// ```
/// use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
/// use bandana_partition::{AccessFrequency, BlockLayout};
///
/// let layout = BlockLayout::identity(128, 32);
/// let freq = AccessFrequency::zeros(128);
/// let mut sim = PrefetchCacheSim::new(
///     &layout,
///     32,
///     AdmissionPolicy::All { position: 0.0 },
///     freq,
/// );
/// sim.lookup(0);  // miss, prefetches vectors 1..32
/// sim.lookup(1);  // hit thanks to the prefetch
/// assert_eq!(sim.metrics().block_reads, 1);
/// assert_eq!(sim.metrics().prefetch_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchCacheSim<'a> {
    layout: &'a BlockLayout,
    freq: AccessFrequency,
    policy: AdmissionPolicy,
    cache: SegmentedLru<Origin>,
    shadow: Option<ShadowCache>,
    metrics: CacheMetrics,
}

impl<'a> PrefetchCacheSim<'a> {
    /// Creates a simulator with `cache_capacity` vector slots.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity` is zero.
    pub fn new(
        layout: &'a BlockLayout,
        cache_capacity: usize,
        policy: AdmissionPolicy,
        freq: AccessFrequency,
    ) -> Self {
        Self::with_shadow_multiplier(
            layout,
            cache_capacity,
            policy,
            freq,
            DEFAULT_SHADOW_MULTIPLIER,
        )
    }

    /// Creates a simulator with an explicit shadow-cache multiplier
    /// (Figure 11b sweeps this).
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity` is zero or the policy needs a shadow cache
    /// and `shadow_multiplier` is not positive.
    pub fn with_shadow_multiplier(
        layout: &'a BlockLayout,
        cache_capacity: usize,
        policy: AdmissionPolicy,
        freq: AccessFrequency,
        shadow_multiplier: f64,
    ) -> Self {
        assert!(cache_capacity > 0, "cache capacity must be non-zero");
        let segments = SEGMENTS.min(cache_capacity);
        let shadow =
            policy.needs_shadow().then(|| ShadowCache::new(cache_capacity, shadow_multiplier));
        PrefetchCacheSim {
            layout,
            freq,
            policy,
            cache: SegmentedLru::new(cache_capacity, segments),
            shadow,
            metrics: CacheMetrics::new(),
        }
    }

    /// Serves one application lookup; returns `true` on a DRAM hit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the layout.
    pub fn lookup(&mut self, v: u32) -> bool {
        self.metrics.lookups += 1;
        // The shadow cache tracks *application reads only*, hit or miss.
        if let Some(shadow) = &mut self.shadow {
            shadow.record_read(v as u64);
        }
        if let Some(origin) = self.cache.get(v as u64) {
            if *origin == Origin::Prefetch {
                self.metrics.prefetch_hits += 1;
                // Count each prefetched entry's usefulness once.
                self.cache.insert(v as u64, Origin::Demand, 0.0);
            }
            self.metrics.hits += 1;
            return true;
        }

        // Miss: read the whole 4 KB block from NVM.
        self.metrics.misses += 1;
        self.metrics.block_reads += 1;
        let block = self.layout.block_of(v);

        // The requested vector is always cached at the queue top.
        if self.cache.insert(v as u64, Origin::Demand, 0.0).is_some() {
            self.metrics.evictions += 1;
        }

        if self.policy.prefetches() {
            for &u in self.layout.vectors_in_block(block) {
                if u == v || self.cache.contains(u as u64) {
                    continue;
                }
                let shadow_hit = self.shadow.as_ref().is_some_and(|s| s.contains(u as u64));
                if let Some(pos) = self.policy.admit(self.freq.count(u), shadow_hit) {
                    self.metrics.prefetches_admitted += 1;
                    if self.cache.insert(u as u64, Origin::Prefetch, pos).is_some() {
                        self.metrics.evictions += 1;
                    }
                }
            }
        }
        false
    }

    /// Serves a whole query (a slice of vector ids).
    pub fn lookup_all(&mut self, ids: &[u32]) {
        for &v in ids {
            self.lookup(v);
        }
    }

    /// The counters accumulated so far.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Current number of cached vectors.
    pub fn cached_vectors(&self) -> usize {
        self.cache.len()
    }

    /// Resets the counters (cache contents are kept — useful for separating
    /// warm-up from measurement).
    pub fn reset_metrics(&mut self) {
        self.metrics = CacheMetrics::new();
    }
}

/// Runs the single-vector baseline policy (cache exactly what was read, one
/// block read per miss) over a query stream and returns its block reads —
/// the denominator of every effective-bandwidth figure in the paper.
///
/// # Example
///
/// ```
/// use bandana_cache::baseline_block_reads;
/// use bandana_partition::BlockLayout;
///
/// let layout = BlockLayout::identity(64, 8);
/// let queries: Vec<Vec<u32>> = vec![vec![1, 2], vec![1, 2]];
/// // 2 compulsory misses, then hits.
/// assert_eq!(baseline_block_reads(&layout, queries.iter().map(|q| q.as_slice()), 16), 2);
/// ```
pub fn baseline_block_reads<'q, I>(layout: &BlockLayout, queries: I, cache_capacity: usize) -> u64
where
    I: IntoIterator<Item = &'q [u32]>,
{
    let freq = AccessFrequency::zeros(layout.num_vectors());
    let mut sim = PrefetchCacheSim::new(layout, cache_capacity, AdmissionPolicy::None, freq);
    for q in queries {
        sim.lookup_all(q);
    }
    sim.metrics().block_reads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_16x4() -> BlockLayout {
        BlockLayout::identity(16, 4)
    }

    #[test]
    fn baseline_counts_one_block_per_miss() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut sim = PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::None, freq);
        sim.lookup(0);
        sim.lookup(1); // same block but NOT prefetched: still a miss
        sim.lookup(0); // hit
        let m = sim.metrics();
        assert_eq!(m.lookups, 3);
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 2);
        assert_eq!(m.block_reads, 2);
        assert_eq!(m.prefetches_admitted, 0);
    }

    #[test]
    fn prefetch_all_saves_reads_with_locality() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut sim =
            PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::All { position: 0.0 }, freq);
        sim.lookup(0); // miss, prefetch 1,2,3
        sim.lookup(1);
        sim.lookup(2);
        sim.lookup(3);
        let m = sim.metrics();
        assert_eq!(m.block_reads, 1);
        assert_eq!(m.hits, 3);
        assert_eq!(m.prefetches_admitted, 3);
        assert_eq!(m.prefetch_hits, 3);
    }

    #[test]
    fn prefetch_all_thrashes_small_cache() {
        // Access pattern touching many blocks with no reuse of prefetches:
        // admit-all should evict useful entries and do at least as many
        // block reads as the baseline (paper Figure 10).
        let layout = BlockLayout::identity(256, 4);
        let freq = AccessFrequency::zeros(256);
        // Cycle over one vector per block: prefetches are pure pollution.
        let stream: Vec<u32> = (0..2000u32).map(|i| (i * 4) % 256).collect();
        let mut all = PrefetchCacheSim::new(
            &layout,
            16,
            AdmissionPolicy::All { position: 0.0 },
            freq.clone(),
        );
        let mut none = PrefetchCacheSim::new(&layout, 16, AdmissionPolicy::None, freq);
        for &v in &stream {
            all.lookup(v);
            none.lookup(v);
        }
        assert!(
            all.metrics().block_reads >= none.metrics().block_reads,
            "admit-all {} should not beat baseline {} here",
            all.metrics().block_reads,
            none.metrics().block_reads
        );
    }

    #[test]
    fn threshold_filters_cold_vectors() {
        let layout = layout_16x4();
        // Vector 1 is hot in training; 2 and 3 are cold.
        let queries: Vec<Vec<u32>> = (0..20).map(|_| vec![0, 1]).collect();
        let freq = AccessFrequency::from_queries(16, queries.iter().map(|q| q.as_slice()));
        let mut sim = PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::Threshold { t: 5 }, freq);
        sim.lookup(0);
        assert_eq!(sim.metrics().prefetches_admitted, 1); // only vector 1
        assert!(sim.cache.contains(1));
        assert!(!sim.cache.contains(2));
    }

    #[test]
    fn shadow_admits_only_previously_read() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut sim = PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::Shadow, freq);
        sim.lookup(1); // app read: enters shadow; miss reads block 0
                       // Vector 1 cached. Force 1 out of the real cache by touching other
                       // blocks' vectors (no prefetch admits: shadow only contains 1).
        sim.lookup(4);
        sim.lookup(8);
        // Now read vector 0: block 0 fetched; candidate 1 is a shadow hit.
        sim.lookup(0);
        assert!(sim.cache.contains(1), "shadow-hit candidate should be admitted");
        assert!(!sim.cache.contains(2), "shadow-miss candidate should be dropped");
    }

    #[test]
    fn lookup_all_matches_sequential() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut a =
            PrefetchCacheSim::new(&layout, 4, AdmissionPolicy::All { position: 0.5 }, freq.clone());
        let mut b = PrefetchCacheSim::new(&layout, 4, AdmissionPolicy::All { position: 0.5 }, freq);
        let ids = [0u32, 5, 1, 9, 0, 5];
        a.lookup_all(&ids);
        for &v in &ids {
            b.lookup(v);
        }
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn baseline_helper_equals_unique_vectors_with_big_cache() {
        let layout = layout_16x4();
        let queries: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![0, 1, 2], vec![3]];
        let reads = baseline_block_reads(&layout, queries.iter().map(|q| q.as_slice()), 16);
        assert_eq!(reads, 4); // 4 unique vectors
    }

    #[test]
    fn reset_metrics_keeps_cache_contents() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut sim = PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::None, freq);
        sim.lookup(0);
        sim.reset_metrics();
        assert_eq!(sim.metrics().lookups, 0);
        assert!(sim.lookup(0), "cache contents must survive a metrics reset");
    }

    #[test]
    fn prefetch_hit_counted_once() {
        let layout = layout_16x4();
        let freq = AccessFrequency::zeros(16);
        let mut sim =
            PrefetchCacheSim::new(&layout, 8, AdmissionPolicy::All { position: 0.0 }, freq);
        sim.lookup(0); // prefetch 1..3
        sim.lookup(1);
        sim.lookup(1);
        sim.lookup(1);
        assert_eq!(sim.metrics().prefetch_hits, 1);
        assert_eq!(sim.metrics().hits, 3);
    }
}
