//! # bandana-cache — DRAM caching machinery for Bandana
//!
//! Bandana fronts its NVM store with a small DRAM cache per embedding table.
//! The paper's §4.3 explores, in order:
//!
//! 1. treating prefetched vectors like requested ones (disastrous —
//!    Figure 10),
//! 2. inserting prefetches at a lower LRU position ([`lru::SegmentedLru`],
//!    Figure 11a),
//! 3. admitting prefetches only when a [`shadow::ShadowCache`] has seen them
//!    (Figure 11b), and both combined (Figure 11c),
//! 4. admitting prefetches only when their SHP-training access count passes
//!    a threshold `t` (Figure 12) — the policy that wins,
//! 5. choosing `t` per table and cache size by simulating dozens of
//!    [`mini::MiniatureCacheSet`]s on a sampled stream (Table 2, Figure 14),
//! 6. dividing total DRAM across tables with [`alloc`] using hit-rate
//!    curves ([`hrc`]).
//!
//! The [`sim::PrefetchCacheSim`] ties 1–4 together for one table; the `core`
//! crate wraps it around real byte storage.
//!
//! ## Example
//!
//! ```
//! use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
//! use bandana_partition::{AccessFrequency, BlockLayout};
//!
//! let layout = BlockLayout::identity(64, 8);
//! let freq = AccessFrequency::zeros(64);
//! let mut sim = PrefetchCacheSim::new(&layout, 16, AdmissionPolicy::None, freq);
//! sim.lookup(3); // miss: one block read
//! sim.lookup(3); // hit
//! assert_eq!(sim.metrics().hits, 1);
//! assert_eq!(sim.metrics().block_reads, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod alloc;
pub mod allocator;
pub mod curve;
pub mod hrc;
pub mod lru;
pub mod metrics;
pub mod mini;
pub mod policy;
pub mod shadow;
pub mod sim;

pub use admission::AdmissionPolicy;
pub use alloc::{allocate_dram, allocation_hit_rate};
pub use allocator::{allocate_with, compare_policies, AllocationPolicy};
pub use curve::CurveSampler;
pub use hrc::HitRateCurve;
pub use lru::SegmentedLru;
pub use metrics::CacheMetrics;
pub use mini::{MiniatureCacheSet, SampledStream};
pub use policy::{EvictionCache, PolicyKind, PolicySim};
pub use shadow::ShadowCache;
pub use sim::{baseline_block_reads, PrefetchCacheSim};
