//! DRAM allocation across embedding tables (paper §4.3.3).
//!
//! Given each table's hit-rate curve and its share of total lookups, divide
//! a fixed DRAM budget to maximize the overall (lookup-weighted) hit rate.
//! Production curves are convex-in-the-caching-sense (diminishing returns),
//! so greedy marginal-gain allocation — the Dynacache approach the paper
//! cites — is optimal; the paper assigns these budgets statically.

use crate::hrc::HitRateCurve;

/// Divides `total` cache entries across tables by greedy marginal gain.
///
/// * `curves[i]` — table i's hit-rate curve (hit rate vs entries);
/// * `weights[i]` — table i's share of total lookups (Table 1's "% of
///   total"); the objective is `Σ weights[i] · hit_rate_i(size_i)`;
/// * `granularity` — allocation step in entries.
///
/// Returns per-table entry budgets summing to at most `total` (within one
/// granule).
///
/// # Example
///
/// ```
/// use bandana_cache::{allocate_dram, HitRateCurve};
///
/// let hot = HitRateCurve::new(vec![(0, 0.0), (100, 0.9)]);
/// let cold = HitRateCurve::new(vec![(0, 0.0), (100, 0.1)]);
/// let alloc = allocate_dram(100, &[hot, cold], &[0.5, 0.5], 10);
/// assert!(alloc[0] > alloc[1]); // the hot table earns more DRAM
/// ```
///
/// # Panics
///
/// Panics if the slices disagree in length, are empty, or `granularity` is
/// zero.
pub fn allocate_dram(
    total: usize,
    curves: &[HitRateCurve],
    weights: &[f64],
    granularity: usize,
) -> Vec<usize> {
    assert!(!curves.is_empty(), "need at least one table");
    assert_eq!(curves.len(), weights.len(), "curves/weights length mismatch");
    assert!(granularity > 0, "granularity must be non-zero");

    let mut alloc = vec![0usize; curves.len()];
    let mut remaining = total;
    while remaining >= granularity {
        // Pick the table with the highest weighted marginal gain; ties go to
        // the lowest index for determinism.
        let mut best: Option<(f64, usize)> = None;
        for (i, curve) in curves.iter().enumerate() {
            let gain = weights[i] * curve.marginal_gain(alloc[i], granularity);
            if best.is_none_or(|(bg, _)| gain > bg + 1e-15) {
                best = Some((gain, i));
            }
        }
        let (gain, i) = best.expect("non-empty tables");
        if gain <= 0.0 {
            // No table benefits from more DRAM (all curves saturated):
            // spread the remainder round-robin so the budget is not wasted.
            let tables = curves.len();
            let mut i = 0usize;
            while remaining >= granularity {
                alloc[i % tables] += granularity;
                remaining -= granularity;
                i += 1;
            }
            break;
        }
        alloc[i] += granularity;
        remaining -= granularity;
    }
    alloc
}

/// The weighted overall hit rate achieved by an allocation.
pub fn allocation_hit_rate(alloc: &[usize], curves: &[HitRateCurve], weights: &[f64]) -> f64 {
    alloc
        .iter()
        .zip(curves)
        .zip(weights)
        .map(|((&size, curve), &w)| w * curve.hit_rate_at(size))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(max: usize, top: f64) -> HitRateCurve {
        HitRateCurve::new(vec![(0, 0.0), (max, top)])
    }

    #[test]
    fn budget_is_respected() {
        let curves = vec![linear(100, 0.9), linear(100, 0.5), linear(100, 0.3)];
        let weights = vec![0.4, 0.4, 0.2];
        let alloc = allocate_dram(150, &curves, &weights, 10);
        let sum: usize = alloc.iter().sum();
        assert!(sum <= 150);
        assert!(sum >= 140, "budget underused: {alloc:?}");
    }

    #[test]
    fn hot_tables_get_more() {
        let curves = vec![linear(1000, 0.9), linear(1000, 0.9)];
        // Equal curves but table 0 serves 3x the lookups.
        let alloc = allocate_dram(1000, &curves, &[0.75, 0.25], 50);
        assert!(alloc[0] > alloc[1], "{alloc:?}");
    }

    #[test]
    fn greedy_is_optimal_on_concave_curves() {
        // Two concave curves; compare greedy to brute force over all splits.
        let a = HitRateCurve::new(vec![(0, 0.0), (10, 0.5), (20, 0.7), (40, 0.8)]);
        let b = HitRateCurve::new(vec![(0, 0.0), (10, 0.3), (20, 0.55), (40, 0.75)]);
        assert!(a.has_diminishing_returns() && b.has_diminishing_returns());
        let curves = vec![a, b];
        let weights = vec![0.5, 0.5];
        let total = 40usize;
        let g = 5usize;
        let greedy = allocate_dram(total, &curves, &weights, g);
        let greedy_score = allocation_hit_rate(&greedy, &curves, &weights);
        let mut best = 0.0f64;
        let mut s = 0;
        while s <= total {
            let score = allocation_hit_rate(&[s, total - s], &curves, &weights);
            if score > best {
                best = score;
            }
            s += g;
        }
        assert!(
            greedy_score + 1e-9 >= best,
            "greedy {greedy_score} below brute-force optimum {best} ({greedy:?})"
        );
    }

    #[test]
    fn saturated_curves_spread_remainder() {
        let curves = vec![linear(10, 0.5), linear(10, 0.5)];
        let alloc = allocate_dram(100, &curves, &[0.5, 0.5], 10);
        let sum: usize = alloc.iter().sum();
        assert_eq!(sum, 100, "remainder must still be distributed: {alloc:?}");
    }

    #[test]
    fn single_table_gets_everything() {
        let curves = vec![linear(50, 0.9)];
        let alloc = allocate_dram(80, &curves, &[1.0], 8);
        assert_eq!(alloc.iter().sum::<usize>(), 80);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = allocate_dram(10, &[linear(10, 0.5)], &[0.5, 0.5], 1);
    }
}
