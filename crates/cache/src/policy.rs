//! Pluggable eviction policies — an ablation of the paper's LRU choice.
//!
//! The paper fixes LRU for the DRAM cache (§4.3) and never revisits that
//! decision. This module asks the natural follow-up: *does the eviction
//! policy matter once placement and admission are tuned?* It provides four
//! classic alternatives behind one [`EvictionCache`] trait —
//! [`FifoCache`], [`ClockCache`] (second chance), [`LfuCache`], and
//! [`TwoQCache`] — plus [`PolicySim`], a variant of
//! [`crate::PrefetchCacheSim`] with the eviction policy swapped out, so the
//! whole Bandana pipeline (block prefetch + threshold admission) can be
//! replayed under each policy.
//!
//! # Example
//!
//! ```
//! use bandana_cache::policy::{PolicyKind, PolicySim};
//! use bandana_cache::AdmissionPolicy;
//! use bandana_partition::{AccessFrequency, BlockLayout};
//!
//! let layout = BlockLayout::identity(64, 8);
//! let freq = AccessFrequency::zeros(64);
//! let mut sim = PolicySim::new(&layout, 16, AdmissionPolicy::None, freq, PolicyKind::Clock);
//! sim.lookup(3); // miss
//! sim.lookup(3); // hit
//! assert_eq!(sim.metrics().hits, 1);
//! ```

use crate::admission::AdmissionPolicy;
use crate::metrics::CacheMetrics;
use crate::shadow::ShadowCache;
use bandana_partition::{AccessFrequency, BlockLayout};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// A bounded map from `u64` keys to values with a fixed eviction policy.
///
/// All implementations guarantee `len() <= capacity()` after every call and
/// evict exactly one entry per overflowing insert.
pub trait EvictionCache<V>: fmt::Debug {
    /// Looks `key` up, updating any recency/frequency state the policy
    /// keeps. Returns the cached value on a hit.
    fn get(&mut self, key: u64) -> Option<&V>;

    /// Whether `key` is cached, *without* touching policy state.
    fn contains(&self, key: u64) -> bool;

    /// Inserts `key`, evicting one victim if the cache is full. Returns the
    /// evicted `(key, value)` if any. Re-inserting an existing key replaces
    /// its value and refreshes policy state without evicting.
    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)>;

    /// Number of cached entries.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    fn capacity(&self) -> usize;
}

/// Which eviction policy a [`PolicySim`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's choice).
    Lru,
    /// First-in-first-out: insertion order, no recency update on hit.
    Fifo,
    /// CLOCK / second chance: FIFO with one reference bit per entry.
    Clock,
    /// Least-frequently-used with LRU tie-breaking and no aging.
    Lfu,
    /// 2Q: a FIFO probation queue, an LRU protected queue, and a ghost
    /// queue of recently evicted probation keys promoting re-fetches.
    TwoQ,
}

impl PolicyKind {
    /// Every policy, in the order the ablation tables report them.
    pub const ALL: [PolicyKind; 5] =
        [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock, PolicyKind::Lfu, PolicyKind::TwoQ];

    /// Short lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Clock => "clock",
            PolicyKind::Lfu => "lfu",
            PolicyKind::TwoQ => "2q",
        }
    }

    /// Builds a boxed cache of this kind.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn build<V: fmt::Debug + 'static>(self, capacity: usize) -> Box<dyn EvictionCache<V>> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicyCache::new(capacity)),
            PolicyKind::Fifo => Box::new(FifoCache::new(capacity)),
            PolicyKind::Clock => Box::new(ClockCache::new(capacity)),
            PolicyKind::Lfu => Box::new(LfuCache::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQCache::new(capacity)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact LRU behind the [`EvictionCache`] trait (wraps
/// [`crate::SegmentedLru`] with a single segment).
#[derive(Debug)]
pub struct LruPolicyCache<V> {
    inner: crate::lru::SegmentedLru<V>,
}

impl<V> LruPolicyCache<V> {
    /// Creates an exact LRU with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        LruPolicyCache { inner: crate::lru::SegmentedLru::new(capacity, 1) }
    }
}

impl<V: fmt::Debug> EvictionCache<V> for LruPolicyCache<V> {
    fn get(&mut self, key: u64) -> Option<&V> {
        self.inner.get(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.inner.contains(key)
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.inner.insert(key, value, 0.0)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

/// First-in-first-out eviction: hits do not refresh an entry's position.
///
/// # Example
///
/// ```
/// use bandana_cache::policy::{EvictionCache, FifoCache};
///
/// let mut c = FifoCache::new(2);
/// c.insert(1, "a");
/// c.insert(2, "b");
/// c.get(1); // does NOT protect key 1
/// let evicted = c.insert(3, "c").unwrap();
/// assert_eq!(evicted.0, 1);
/// ```
#[derive(Debug)]
pub struct FifoCache<V> {
    map: HashMap<u64, V>,
    queue: VecDeque<u64>,
    capacity: usize,
}

impl<V> FifoCache<V> {
    /// Creates a FIFO cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        FifoCache { map: HashMap::new(), queue: VecDeque::new(), capacity }
    }
}

impl<V: fmt::Debug> EvictionCache<V> for FifoCache<V> {
    fn get(&mut self, key: u64) -> Option<&V> {
        self.map.get(&key)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if self.map.insert(key, value).is_some() {
            return None; // refresh in place, queue position unchanged
        }
        self.queue.push_back(key);
        if self.map.len() > self.capacity {
            let victim = self.queue.pop_front().expect("queue tracks map");
            let v = self.map.remove(&victim).expect("victim cached");
            return Some((victim, v));
        }
        None
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// CLOCK (second chance): a circular scan over entries with reference bits.
///
/// A hit sets the entry's reference bit. Eviction sweeps the clock hand,
/// clearing set bits and evicting the first entry whose bit is clear — an
/// O(1)-amortized approximation of LRU that many OS page caches use.
#[derive(Debug)]
pub struct ClockCache<V> {
    /// Slot table; `None` only before the cache first fills.
    slots: Vec<Option<(u64, V, bool)>>,
    index: HashMap<u64, usize>,
    hand: usize,
    capacity: usize,
}

impl<V> ClockCache<V> {
    /// Creates a CLOCK cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        ClockCache { slots, index: HashMap::new(), hand: 0, capacity }
    }

    /// Advances the hand to a victim slot, clearing reference bits on the
    /// way (classic second-chance sweep).
    fn find_victim(&mut self) -> usize {
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            match &mut self.slots[slot] {
                Some((_, _, referenced)) if *referenced => *referenced = false,
                _ => return slot,
            }
        }
    }
}

impl<V: fmt::Debug> EvictionCache<V> for ClockCache<V> {
    fn get(&mut self, key: u64) -> Option<&V> {
        let &slot = self.index.get(&key)?;
        let (_, v, referenced) = self.slots[slot].as_mut().expect("index tracks slots");
        *referenced = true;
        Some(v)
    }

    fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if let Some(&slot) = self.index.get(&key) {
            let (_, v, referenced) = self.slots[slot].as_mut().expect("index tracks slots");
            *v = value;
            *referenced = true;
            return None;
        }
        if self.index.len() < self.capacity {
            // Fill an empty slot (before first eviction the table is sparse).
            let slot = self.find_victim();
            debug_assert!(self.slots[slot].is_none() || self.index.len() == self.capacity);
            if let Some((old_key, old_val, _)) = self.slots[slot].take() {
                self.index.remove(&old_key);
                self.slots[slot] = Some((key, value, true));
                self.index.insert(key, slot);
                return Some((old_key, old_val));
            }
            self.slots[slot] = Some((key, value, true));
            self.index.insert(key, slot);
            return None;
        }
        let slot = self.find_victim();
        let (old_key, old_val, _) = self.slots[slot].take().expect("cache is full");
        self.index.remove(&old_key);
        self.slots[slot] = Some((key, value, true));
        self.index.insert(key, slot);
        Some((old_key, old_val))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Least-frequently-used with LRU tie-breaking.
///
/// Evicts the entry with the smallest access count; among equals, the one
/// least recently touched. No aging — long-running streams with shifting
/// popularity are exactly where LFU is expected to lose to LRU, which the
/// ablation measures.
#[derive(Debug)]
pub struct LfuCache<V> {
    map: HashMap<u64, (V, u32, u64)>,
    /// Ordered (frequency, last-touch sequence, key): the min is the victim.
    order: BTreeSet<(u32, u64, u64)>,
    seq: u64,
    capacity: usize,
}

impl<V> LfuCache<V> {
    /// Creates an LFU cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        LfuCache { map: HashMap::new(), order: BTreeSet::new(), seq: 0, capacity }
    }

    fn touch(&mut self, key: u64, bump: bool) {
        if let Some((_, freq, last)) = self.map.get(&key) {
            let old = (*freq, *last, key);
            let removed = self.order.remove(&old);
            debug_assert!(removed, "order tracks map");
            self.seq += 1;
            let new_freq = if bump { freq + 1 } else { *freq };
            self.order.insert((new_freq, self.seq, key));
            let entry = self.map.get_mut(&key).expect("checked above");
            entry.1 = new_freq;
            entry.2 = self.seq;
        }
    }
}

impl<V: fmt::Debug> EvictionCache<V> for LfuCache<V> {
    fn get(&mut self, key: u64) -> Option<&V> {
        if !self.map.contains_key(&key) {
            return None;
        }
        self.touch(key, true);
        self.map.get(&key).map(|(v, _, _)| v)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if self.map.contains_key(&key) {
            self.map.get_mut(&key).expect("checked above").0 = value;
            self.touch(key, true);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let &victim = self.order.iter().next().expect("full cache is non-empty");
            self.order.remove(&victim);
            let (_, _, vkey) = victim;
            let (v, _, _) = self.map.remove(&vkey).expect("order tracks map");
            evicted = Some((vkey, v));
        }
        self.seq += 1;
        self.map.insert(key, (value, 1, self.seq));
        self.order.insert((1, self.seq, key));
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Fraction of a 2Q cache devoted to the probation (A1in) FIFO queue.
const TWO_Q_IN_FRACTION: f64 = 0.25;
/// Ghost (A1out) queue size as a fraction of the cache capacity.
const TWO_Q_OUT_FRACTION: f64 = 0.50;

/// The 2Q replacement policy (Johnson & Shasha).
///
/// New keys enter a small FIFO probation queue (A1in). Keys evicted from
/// probation leave their id in a ghost queue (A1out); a re-fetch that hits
/// the ghost queue is promoted to the protected LRU queue (Am). One-shot
/// scans therefore wash through probation without disturbing the protected
/// working set — the same scan resistance the paper buys with admission
/// thresholds, applied at the eviction layer instead.
#[derive(Debug)]
pub struct TwoQCache<V> {
    /// Probation FIFO (A1in): key order, values live in `map`.
    a1in: VecDeque<u64>,
    /// Ghost FIFO (A1out): ids only.
    a1out: VecDeque<u64>,
    a1out_set: HashMap<u64, ()>,
    /// Protected LRU (Am).
    am: crate::lru::SegmentedLru<()>,
    map: HashMap<u64, V>,
    in_capacity: usize,
    out_capacity: usize,
    capacity: usize,
}

impl<V> TwoQCache<V> {
    /// Creates a 2Q cache with `capacity` resident entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        let in_capacity = ((capacity as f64 * TWO_Q_IN_FRACTION) as usize).max(1);
        let am_capacity = (capacity - in_capacity).max(1);
        let out_capacity = ((capacity as f64 * TWO_Q_OUT_FRACTION) as usize).max(1);
        TwoQCache {
            a1in: VecDeque::new(),
            a1out: VecDeque::new(),
            a1out_set: HashMap::new(),
            am: crate::lru::SegmentedLru::new(am_capacity, 1),
            map: HashMap::new(),
            in_capacity,
            out_capacity,
            capacity,
        }
    }

    fn ghost_push(&mut self, key: u64) {
        self.a1out.push_back(key);
        self.a1out_set.insert(key, ());
        while self.a1out.len() > self.out_capacity {
            let old = self.a1out.pop_front().expect("non-empty");
            self.a1out_set.remove(&old);
        }
    }

    /// Evicts from probation into the ghost queue; returns the victim.
    fn evict_probation(&mut self) -> Option<(u64, V)> {
        let victim = self.a1in.pop_front()?;
        let value = self.map.remove(&victim).expect("a1in tracks map");
        self.ghost_push(victim);
        Some((victim, value))
    }
}

impl<V: fmt::Debug> EvictionCache<V> for TwoQCache<V> {
    fn get(&mut self, key: u64) -> Option<&V> {
        if !self.map.contains_key(&key) {
            return None;
        }
        // A hit in Am refreshes recency; a hit in A1in leaves FIFO order
        // alone (the original 2Q "simplified" behaviour).
        if self.am.contains(key) {
            let _ = self.am.get(key);
        }
        self.map.get(&key)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if self.map.contains_key(&key) {
            *self.map.get_mut(&key).expect("checked above") = value;
            if self.am.contains(key) {
                let _ = self.am.get(key);
            }
            return None;
        }

        let promoted = self.a1out_set.remove(&key).is_some();
        if promoted {
            // Ghost hit: the key earned protection.
            self.a1out.retain(|&k| k != key);
            self.map.insert(key, value);
            if let Some((evicted_key, ())) = self.am.insert(key, (), 0.0) {
                let v = self.map.remove(&evicted_key).expect("am tracks map");
                return Some((evicted_key, v));
            }
            // Am had room; if the cache as a whole overflowed, shrink
            // probation (a1in is non-empty whenever that happens, because
            // Am alone can never exceed the total capacity).
            if self.map.len() > self.capacity {
                return self.evict_probation();
            }
            return None;
        }

        // Cold key: probation. A1in's size target only matters as eviction
        // *preference*; probation may borrow capacity Am is not using.
        self.map.insert(key, value);
        self.a1in.push_back(key);
        if self.map.len() > self.capacity {
            // Classic 2Q victim choice: shrink probation while it exceeds
            // its target, otherwise age the protected queue.
            if self.a1in.len() > self.in_capacity {
                return self.evict_probation();
            }
            if let Some((vkey, ())) = self.am.pop_lru() {
                let v = self.map.remove(&vkey).expect("am tracks map");
                return Some((vkey, v));
            }
            return self.evict_probation();
        }
        None
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Whether a cached entry arrived on demand or as a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Demand,
    Prefetch,
}

/// [`crate::PrefetchCacheSim`] with the eviction policy swapped out.
///
/// Runs the same data path — miss reads a 4 KB block, prefetch candidates
/// pass the [`AdmissionPolicy`] — but the DRAM queue is any
/// [`PolicyKind`]. Fractional insertion positions are an LRU-specific
/// concept, so position-based policies degrade gracefully: every admitted
/// entry is inserted the way the policy inserts (FIFO tail, clock hand,
/// LFU count 1, 2Q probation).
#[derive(Debug)]
pub struct PolicySim<'a> {
    layout: &'a BlockLayout,
    freq: AccessFrequency,
    policy: AdmissionPolicy,
    kind: PolicyKind,
    cache: Box<dyn EvictionCache<Origin>>,
    shadow: Option<ShadowCache>,
    metrics: CacheMetrics,
}

impl<'a> PolicySim<'a> {
    /// Creates a simulator with `cache_capacity` vector slots under `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity` is zero.
    pub fn new(
        layout: &'a BlockLayout,
        cache_capacity: usize,
        policy: AdmissionPolicy,
        freq: AccessFrequency,
        kind: PolicyKind,
    ) -> Self {
        assert!(cache_capacity > 0, "cache capacity must be non-zero");
        let shadow = policy
            .needs_shadow()
            .then(|| ShadowCache::new(cache_capacity, crate::sim::DEFAULT_SHADOW_MULTIPLIER));
        PolicySim {
            layout,
            freq,
            policy,
            kind,
            cache: kind.build(cache_capacity),
            shadow,
            metrics: CacheMetrics::new(),
        }
    }

    /// Serves one application lookup; returns `true` on a DRAM hit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the layout.
    pub fn lookup(&mut self, v: u32) -> bool {
        self.metrics.lookups += 1;
        if let Some(shadow) = &mut self.shadow {
            shadow.record_read(v as u64);
        }
        if let Some(&origin) = self.cache.get(v as u64) {
            if origin == Origin::Prefetch {
                self.metrics.prefetch_hits += 1;
                self.cache.insert(v as u64, Origin::Demand);
            }
            self.metrics.hits += 1;
            return true;
        }

        self.metrics.misses += 1;
        self.metrics.block_reads += 1;
        let block = self.layout.block_of(v);

        if self.cache.insert(v as u64, Origin::Demand).is_some() {
            self.metrics.evictions += 1;
        }

        if self.policy.prefetches() {
            for &u in self.layout.vectors_in_block(block) {
                if u == v || self.cache.contains(u as u64) {
                    continue;
                }
                let shadow_hit = self.shadow.as_ref().is_some_and(|s| s.contains(u as u64));
                if self.policy.admit(self.freq.count(u), shadow_hit).is_some() {
                    self.metrics.prefetches_admitted += 1;
                    if self.cache.insert(u as u64, Origin::Prefetch).is_some() {
                        self.metrics.evictions += 1;
                    }
                }
            }
        }
        false
    }

    /// Serves a whole query (a slice of vector ids).
    pub fn lookup_all(&mut self, ids: &[u32]) {
        for &v in ids {
            self.lookup(v);
        }
    }

    /// The counters accumulated so far.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The eviction policy in force.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Current number of cached vectors.
    pub fn cached_vectors(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_and_overflow(cache: &mut dyn EvictionCache<u32>, n: u64) {
        for k in 0..n {
            cache.insert(k, k as u32);
            assert!(cache.len() <= cache.capacity(), "capacity violated at key {k}");
        }
    }

    #[test]
    fn all_policies_respect_capacity() {
        for kind in PolicyKind::ALL {
            let mut cache = kind.build::<u32>(8);
            fill_and_overflow(cache.as_mut(), 100);
            assert_eq!(cache.len(), 8, "{kind} should be full");
        }
    }

    #[test]
    fn all_policies_hit_after_insert() {
        for kind in PolicyKind::ALL {
            let mut cache = kind.build::<u32>(4);
            cache.insert(7, 42);
            assert_eq!(cache.get(7), Some(&42), "{kind}");
            assert!(cache.contains(7), "{kind}");
        }
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        for kind in PolicyKind::ALL {
            let mut cache = kind.build::<u32>(2);
            cache.insert(1, 10);
            cache.insert(2, 20);
            let evicted = cache.insert(1, 11);
            assert!(evicted.is_none(), "{kind}: refresh must not evict");
            assert_eq!(cache.get(1), Some(&11), "{kind}");
            assert_eq!(cache.len(), 2, "{kind}");
        }
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = FifoCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        c.get(1);
        let (victim, ()) = c.insert(3, ()).expect("full");
        assert_eq!(victim, 1, "FIFO must evict the oldest insert, hits notwithstanding");
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = LruPolicyCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        c.get(1);
        let (victim, ()) = c.insert(3, ()).expect("full");
        assert_eq!(victim, 2, "LRU must evict the stale key");
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut c = ClockCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        c.get(1); // sets 1's reference bit
                  // Insert 3: hand sweeps, clears 1's bit... but 2's bit is also set
                  // from its insert. The sweep clears both and returns to slot 0 — we
                  // only check that *something* was evicted and 1 survived if its bit
                  // protected it longer than 2's.
        let evicted = c.insert(3, ()).expect("full");
        assert!(evicted.0 == 1 || evicted.0 == 2);
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let mut c = ClockCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        // Clear all bits with one full sweep by inserting and evicting once.
        let first = c.insert(4, ()).expect("full").0;
        assert_eq!(first, 1, "first sweep clears insert-bits in slot order then loops");
        // Now touch 2 so its bit is set; 3 is the next clean victim.
        c.get(2);
        let second = c.insert(5, ()).expect("full").0;
        assert_eq!(second, 3, "referenced entry 2 must be skipped");
        assert!(c.contains(2));
    }

    #[test]
    fn lfu_evicts_cold_keys() {
        let mut c = LfuCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        c.get(1);
        c.get(1); // key 1: freq 3, key 2: freq 1
        let (victim, ()) = c.insert(3, ()).expect("full");
        assert_eq!(victim, 2);
        assert!(c.contains(1));
    }

    #[test]
    fn lfu_ties_break_lru() {
        let mut c = LfuCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        // Both freq 1; key 1 is older.
        let (victim, ()) = c.insert(3, ()).expect("full");
        assert_eq!(victim, 1);
    }

    #[test]
    fn two_q_protects_reaccessed_keys() {
        let mut c = TwoQCache::new(8); // am cap 6, ghost cap 4
                                       // Overflow probation so keys 1..=4 land in the ghost list.
        for k in 1..=12u64 {
            c.insert(k, ());
        }
        assert!(!c.contains(1), "1 must have left probation");
        // Re-fetch 1: ghost hit → protected.
        c.insert(1, ());
        assert!(c.contains(1));
        // A long cold scan must not displace the protected key.
        for k in 100..140u64 {
            c.insert(k, ());
        }
        assert!(c.contains(1), "protected key washed out by a scan");
    }

    #[test]
    fn two_q_scan_resistant_vs_lru() {
        // A small hot set + a long one-shot scan: 2Q should retain the hot
        // set better than LRU.
        let hot: Vec<u64> = (0..4).collect();
        let mut two_q = TwoQCache::new(16);
        let mut lru = LruPolicyCache::new(16);
        let mut hits_2q = 0;
        let mut hits_lru = 0;
        let mut scan_key = 1000u64;
        for round in 0..200 {
            for &h in &hot {
                if two_q.get(h).is_some() {
                    hits_2q += 1;
                } else {
                    two_q.insert(h, ());
                }
                if lru.get(h).is_some() {
                    hits_lru += 1;
                } else {
                    lru.insert(h, ());
                }
            }
            // Interleave a burst of cold keys.
            if round % 2 == 0 {
                for _ in 0..20 {
                    scan_key += 1;
                    two_q.insert(scan_key, ());
                    lru.insert(scan_key, ());
                }
            }
        }
        assert!(
            hits_2q >= hits_lru,
            "2Q ({hits_2q}) should be at least as scan-resistant as LRU ({hits_lru})"
        );
    }

    #[test]
    fn policy_sim_lru_matches_prefetch_sim() {
        // PolicySim with PolicyKind::Lru and position-0 admission must agree
        // with the production PrefetchCacheSim on hits and block reads.
        use crate::sim::PrefetchCacheSim;
        let layout = BlockLayout::identity(64, 8);
        let freq = AccessFrequency::zeros(64);
        let stream: Vec<u32> = (0..500u32).map(|i| (i * 7 + i * i / 3) % 64).collect();

        let mut reference = PrefetchCacheSim::new(
            &layout,
            16,
            AdmissionPolicy::All { position: 0.0 },
            freq.clone(),
        );
        let mut subject = PolicySim::new(
            &layout,
            16,
            AdmissionPolicy::All { position: 0.0 },
            freq,
            PolicyKind::Lru,
        );
        for &v in &stream {
            reference.lookup(v);
            subject.lookup(v);
        }
        assert_eq!(reference.metrics().hits, subject.metrics().hits);
        assert_eq!(reference.metrics().block_reads, subject.metrics().block_reads);
        assert_eq!(reference.metrics().prefetches_admitted, subject.metrics().prefetches_admitted);
    }

    #[test]
    fn policy_sim_threshold_admission_filters() {
        let layout = BlockLayout::identity(16, 4);
        let queries: Vec<Vec<u32>> = (0..20).map(|_| vec![0, 1]).collect();
        let freq = AccessFrequency::from_queries(16, queries.iter().map(|q| q.as_slice()));
        for kind in PolicyKind::ALL {
            let mut sim =
                PolicySim::new(&layout, 8, AdmissionPolicy::Threshold { t: 5 }, freq.clone(), kind);
            sim.lookup(0);
            assert_eq!(sim.metrics().prefetches_admitted, 1, "{kind}: only vector 1 is hot");
        }
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["lru", "fifo", "clock", "lfu", "2q"]);
    }
}
