//! Cache performance counters and the effective-bandwidth metric.
//!
//! *Effective bandwidth* is the paper's headline metric: the fraction of NVM
//! read bandwidth carrying bytes the application actually uses. Because
//! every miss costs exactly one 4 KB block read, comparing *block reads*
//! between a policy and the single-vector baseline on the same trace gives
//! the effective-bandwidth increase directly:
//!
//! ```text
//! increase = baseline_block_reads / policy_block_reads − 1
//! ```

use serde::{Deserialize, Serialize};

/// Monotonic counters for one cache's behaviour over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Vector lookups served.
    pub lookups: u64,
    /// Lookups satisfied from DRAM.
    pub hits: u64,
    /// Lookups that required an NVM block read.
    pub misses: u64,
    /// NVM block reads issued (equals `misses` for this design: one block
    /// per miss).
    pub block_reads: u64,
    /// Prefetched vectors admitted into the cache.
    pub prefetches_admitted: u64,
    /// Admitted prefetches that were later hit before eviction.
    pub prefetch_hits: u64,
    /// Cache evictions.
    pub evictions: u64,
}

impl CacheMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit rate over the lookups so far (`0.0` when no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of admitted prefetches that produced a hit.
    pub fn prefetch_usefulness(&self) -> f64 {
        if self.prefetches_admitted == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetches_admitted as f64
        }
    }

    /// Effective-bandwidth increase over a baseline that issued
    /// `baseline_block_reads` on the same trace.
    ///
    /// Positive values mean this policy reads fewer blocks than the
    /// baseline; `-0.5` means it reads twice as many (possible for
    /// aggressive prefetching with small caches — paper Figure 10).
    pub fn effective_bandwidth_increase(&self, baseline_block_reads: u64) -> f64 {
        if self.block_reads == 0 {
            0.0
        } else {
            baseline_block_reads as f64 / self.block_reads as f64 - 1.0
        }
    }

    /// Merges counters from another cache (e.g. summing across tables).
    pub fn merge(&mut self, other: &CacheMetrics) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.block_reads += other.block_reads;
        self.prefetches_admitted += other.prefetches_admitted;
        self.prefetch_hits += other.prefetch_hits;
        self.evictions += other.evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_empty_behaviour() {
        let mut m = CacheMetrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        m.lookups = 10;
        m.hits = 7;
        m.misses = 3;
        assert!((m.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_increase_signs() {
        let mut m = CacheMetrics::new();
        m.block_reads = 50;
        // Baseline read 100 blocks: we halved reads => +100%.
        assert!((m.effective_bandwidth_increase(100) - 1.0).abs() < 1e-12);
        // Baseline read 25: we doubled reads => -50%.
        assert!((m.effective_bandwidth_increase(25) + 0.5).abs() < 1e-12);
        // Degenerate zero reads.
        let z = CacheMetrics::new();
        assert_eq!(z.effective_bandwidth_increase(10), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CacheMetrics { lookups: 1, hits: 1, ..Default::default() };
        let b = CacheMetrics { lookups: 2, misses: 2, block_reads: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.lookups, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.block_reads, 2);
    }

    #[test]
    fn prefetch_usefulness() {
        let m = CacheMetrics { prefetches_admitted: 4, prefetch_hits: 1, ..Default::default() };
        assert!((m.prefetch_usefulness() - 0.25).abs() < 1e-12);
        assert_eq!(CacheMetrics::new().prefetch_usefulness(), 0.0);
    }
}
