//! Property-based tests for the caching machinery.

use bandana_cache::{AdmissionPolicy, PrefetchCacheSim, SegmentedLru};
use bandana_partition::{AccessFrequency, BlockLayout};
use proptest::prelude::*;

/// Reference LRU: Vec ordered MRU-first.
#[derive(Debug)]
struct RefLru {
    order: Vec<u64>,
    capacity: usize,
}

impl RefLru {
    fn new(capacity: usize) -> Self {
        RefLru { order: Vec::new(), capacity }
    }
    fn get(&mut self, key: u64) -> bool {
        if let Some(i) = self.order.iter().position(|&k| k == key) {
            self.order.remove(i);
            self.order.insert(0, key);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, key: u64) -> Option<u64> {
        if let Some(i) = self.order.iter().position(|&k| k == key) {
            self.order.remove(i);
        }
        self.order.insert(0, key);
        if self.order.len() > self.capacity {
            self.order.pop()
        } else {
            None
        }
    }
}

/// An operation against the cache.
#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Insert(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![(0..key_space).prop_map(Op::Get), (0..key_space).prop_map(Op::Insert),]
}

proptest! {
    /// With a single segment, SegmentedLru is an exact LRU: identical hits,
    /// evictions, and recency order to the reference model.
    #[test]
    fn single_segment_is_exact_lru(
        capacity in 1usize..16,
        ops in proptest::collection::vec(op_strategy(24), 1..400)
    ) {
        let mut lru = SegmentedLru::new(capacity, 1);
        let mut reference = RefLru::new(capacity);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(lru.get(k).is_some(), reference.get(k));
                }
                Op::Insert(k) => {
                    let e1 = lru.insert(k, (), 0.0).map(|(key, ())| key);
                    let e2 = reference.insert(k);
                    prop_assert_eq!(e1, e2);
                }
            }
            prop_assert_eq!(lru.keys_in_order(), reference.order.clone());
        }
    }

    /// Capacity is never exceeded and `contains` agrees with `keys_in_order`
    /// for any segment count and any mix of positions.
    #[test]
    fn segmented_invariants(
        capacity in 4usize..32,
        segments in 1usize..4,
        ops in proptest::collection::vec((0u64..40, 0..=10u32), 1..400)
    ) {
        let mut lru = SegmentedLru::new(capacity, segments);
        for (key, pos10) in ops {
            let pos = f64::from(pos10) / 10.0;
            lru.insert(key, key, pos);
            prop_assert!(lru.len() <= capacity);
            prop_assert!(lru.contains(key), "freshly inserted key missing");
        }
        let listed = lru.keys_in_order();
        prop_assert_eq!(listed.len(), lru.len());
        for k in listed {
            prop_assert!(lru.contains(k));
        }
    }

    /// The prefetch simulator conserves counters on any lookup stream:
    /// hits + misses = lookups, block reads = misses, and the hit rate of a
    /// bigger cache is never worse under the None policy (pure LRU).
    #[test]
    fn sim_counter_conservation(
        stream in proptest::collection::vec(0u32..128, 1..500),
        cache in 1usize..64
    ) {
        let layout = BlockLayout::identity(128, 8);
        let freq = AccessFrequency::zeros(128);
        let mut sim = PrefetchCacheSim::new(&layout, cache, AdmissionPolicy::None, freq);
        for &v in &stream {
            sim.lookup(v);
        }
        let m = sim.metrics();
        prop_assert_eq!(m.hits + m.misses, m.lookups);
        prop_assert_eq!(m.block_reads, m.misses);
        prop_assert_eq!(m.lookups as usize, stream.len());
    }

    /// LRU inclusion property through the simulator: under the None policy a
    /// larger cache never has fewer hits on the same stream.
    #[test]
    fn lru_inclusion(
        stream in proptest::collection::vec(0u32..64, 1..400),
        small in 1usize..16
    ) {
        let layout = BlockLayout::identity(64, 8);
        let freq = AccessFrequency::zeros(64);
        let big = small * 2;
        let run = |cap: usize| {
            let mut sim = PrefetchCacheSim::new(&layout, cap, AdmissionPolicy::None, freq.clone());
            for &v in &stream {
                sim.lookup(v);
            }
            sim.metrics().hits
        };
        prop_assert!(run(big) >= run(small));
    }

    /// `set_capacity` keeps the structural invariants for any resize
    /// schedule: `targets` always sum to `capacity`, occupancy never
    /// exceeds it, and a shrink→grow round trip never loses a survivor or
    /// reorders one.
    #[test]
    fn set_capacity_round_trip_preserves_survivors(
        capacity in 4usize..24,
        segments in 1usize..4,
        ops in proptest::collection::vec((0u64..48, 0..=10u32), 1..200),
        shrink_to in 1usize..12,
    ) {
        let mut lru = SegmentedLru::new(capacity, segments);
        for (key, pos10) in ops {
            lru.insert(key, key, f64::from(pos10) / 10.0);
        }
        let before = lru.keys_in_order();
        let shed: Vec<u64> = lru.set_capacity(shrink_to).into_iter().map(|(k, _)| k).collect();
        prop_assert_eq!(lru.segment_targets().iter().sum::<usize>(), lru.capacity());
        prop_assert!(lru.len() <= lru.capacity());
        // Shrink evicts coldest-first: the shed keys are exactly the tail
        // of the pre-shrink recency order, coldest first.
        let expected_shed: Vec<u64> = before.iter().rev().take(shed.len()).copied().collect();
        prop_assert_eq!(&shed, &expected_shed);
        lru.set_capacity(capacity);
        prop_assert_eq!(lru.segment_targets().iter().sum::<usize>(), lru.capacity());
        let survivors: Vec<u64> =
            before.iter().filter(|k| !shed.contains(k)).copied().collect();
        prop_assert_eq!(lru.keys_in_order(), survivors);
    }

    /// After a shrink, a single-segment queue behaves exactly like a
    /// freshly built LRU of the smaller size holding the same survivors:
    /// identical hits, evictions, and recency order from then on.
    #[test]
    fn shrunk_lru_matches_fresh_lru_of_same_size(
        warmup in proptest::collection::vec(0u64..32, 1..150),
        ops in proptest::collection::vec(op_strategy(32), 1..150),
        capacity in 2usize..16,
        shrink_to in 1usize..8,
    ) {
        let mut subject = SegmentedLru::new(capacity, 1);
        for &k in &warmup {
            subject.insert(k, k, 0.0);
        }
        subject.set_capacity(shrink_to);
        // A fresh LRU of the shrunken size seeded with the survivors in
        // recency order (coldest inserted first).
        let mut fresh = SegmentedLru::new(shrink_to.max(1), 1);
        for &k in subject.keys_in_order().iter().rev() {
            fresh.insert(k, k, 0.0);
        }
        prop_assert_eq!(subject.keys_in_order(), fresh.keys_in_order());
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(subject.get(k).is_some(), fresh.get(k).is_some());
                }
                Op::Insert(k) => {
                    let e1 = subject.insert(k, k, 0.0).map(|(key, _)| key);
                    let e2 = fresh.insert(k, k, 0.0).map(|(key, _)| key);
                    prop_assert_eq!(e1, e2, "eviction order diverged from fresh LRU");
                }
            }
            prop_assert_eq!(subject.keys_in_order(), fresh.keys_in_order());
        }
    }

    /// Prefetch admission never changes correctness-level counters: lookups
    /// and the hit/miss partition stay consistent for every policy.
    #[test]
    fn policies_conserve_counters(
        stream in proptest::collection::vec(0u32..96, 1..300),
        which in 0usize..5
    ) {
        let policy = match which {
            0 => AdmissionPolicy::None,
            1 => AdmissionPolicy::All { position: 0.0 },
            2 => AdmissionPolicy::All { position: 0.7 },
            3 => AdmissionPolicy::Shadow,
            _ => AdmissionPolicy::Threshold { t: 1 },
        };
        let layout = BlockLayout::random(96, 8, 3);
        let freq = AccessFrequency::zeros(96);
        let mut sim = PrefetchCacheSim::new(&layout, 16, policy, freq);
        for &v in &stream {
            sim.lookup(v);
        }
        let m = sim.metrics();
        prop_assert_eq!(m.hits + m.misses, m.lookups);
        prop_assert_eq!(m.block_reads, m.misses);
        prop_assert!(m.prefetch_hits <= m.prefetches_admitted);
    }
}

mod policy_props {
    use super::*;
    use bandana_cache::policy::{EvictionCache, LruPolicyCache, PolicyKind};

    proptest! {
        /// Every eviction policy maintains `len <= capacity`, never loses a
        /// key it did not evict, and evicts exactly one entry per
        /// overflowing insert.
        #[test]
        fn policies_maintain_invariants(
            ops in proptest::collection::vec(op_strategy(64), 1..400),
            capacity in 1usize..32,
        ) {
            for kind in PolicyKind::ALL {
                let mut cache = kind.build::<u64>(capacity);
                let mut resident = std::collections::HashSet::new();
                for op in &ops {
                    match op {
                        Op::Get(k) => {
                            let hit = cache.get(*k).is_some();
                            prop_assert_eq!(hit, resident.contains(k), "{} get({})", kind, k);
                        }
                        Op::Insert(k) => {
                            let was_resident = resident.contains(k);
                            let evicted = cache.insert(*k, *k);
                            resident.insert(*k);
                            if let Some((vk, vv)) = evicted {
                                prop_assert_eq!(vk, vv, "{}: value corrupted", kind);
                                prop_assert!(resident.remove(&vk), "{}: evicted non-resident {}", kind, vk);
                                prop_assert!(!was_resident, "{}: refresh must not evict", kind);
                            }
                            prop_assert!(cache.len() <= capacity);
                            prop_assert_eq!(cache.len(), resident.len(), "{}: len mismatch", kind);
                        }
                    }
                }
            }
        }

        /// `LruPolicyCache` (the trait adapter) agrees with the reference
        /// LRU model on hits and evictions.
        #[test]
        fn lru_policy_cache_matches_reference(
            ops in proptest::collection::vec(op_strategy(32), 1..300),
            capacity in 1usize..16,
        ) {
            let mut subject = LruPolicyCache::new(capacity);
            let mut reference = RefLru::new(capacity);
            for op in &ops {
                match op {
                    Op::Get(k) => {
                        prop_assert_eq!(subject.get(*k).is_some(), reference.get(*k));
                    }
                    Op::Insert(k) => {
                        let e1 = subject.insert(*k, ()).map(|(key, ())| key);
                        let e2 = reference.insert(*k);
                        prop_assert_eq!(e1, e2);
                    }
                }
            }
        }

        /// `SegmentedLru::pop_lru` always returns the key the reference
        /// model would evict next.
        #[test]
        fn pop_lru_pops_the_coldest(
            keys in proptest::collection::vec(0u64..24, 1..100),
            capacity in 1usize..12,
        ) {
            let mut subject = SegmentedLru::new(capacity, 1);
            let mut reference = RefLru::new(capacity);
            for &k in &keys {
                let _ = subject.insert(k, (), 0.0);
                let _ = reference.insert(k);
            }
            while let Some((k, ())) = subject.pop_lru() {
                let expected = reference.order.pop().expect("reference still has keys");
                prop_assert_eq!(k, expected);
            }
            prop_assert!(reference.order.is_empty());
        }
    }
}
