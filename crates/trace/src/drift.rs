//! Popularity drift — workloads whose hot set moves over time.
//!
//! The paper trains SHP and the admission thresholds on a *past* window and
//! serves a *future* one; §2.1 notes embeddings are retrained every few
//! hours precisely because user behaviour shifts. This module generates
//! traces with controlled popularity drift so the gap can be measured: how
//! fast does a layout/threshold trained at epoch 0 decay, and how well does
//! the online tuner (`bandana-core`'s `OnlineTuner`) track the moving
//! optimum?
//!
//! Drift model: each table gets a fixed random permutation of its vector
//! ids. Every epoch the identity mapping rotates `rotate_fraction` of the
//! way along that permutation, so vector `v`'s popularity *role* is handed
//! to another vector while the marginal distributions (topic skew, Zipf
//! shape, lookups per request — everything Table 1 calibrates) stay
//! exactly the same. Epoch 0 reproduces the base generator verbatim.
//!
//! # Example
//!
//! ```
//! use bandana_trace::{DriftConfig, DriftingTraceGenerator, ModelSpec};
//!
//! let spec = ModelSpec::test_small();
//! let config = DriftConfig { requests_per_epoch: 100, rotate_fraction: 0.2 };
//! let mut generator = DriftingTraceGenerator::new(&spec, 7, config);
//! let trace = generator.generate_requests(250); // spans epochs 0, 1, 2
//! assert_eq!(trace.requests.len(), 250);
//! assert_eq!(generator.current_epoch(), 2);
//! ```

use crate::generator::TraceGenerator;
use crate::query::{Request, Trace};
use crate::spec::ModelSpec;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// How fast and how often the hot set moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Requests per drift epoch; the remap advances between epochs.
    pub requests_per_epoch: usize,
    /// Fraction of the permutation cycle rotated per epoch, in `[0, 1]`.
    /// `0.0` disables drift; `1.0` returns to the start after one epoch.
    pub rotate_fraction: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { requests_per_epoch: 1000, rotate_fraction: 0.1 }
    }
}

impl DriftConfig {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests_per_epoch == 0 {
            return Err("requests_per_epoch must be non-zero".to_string());
        }
        if !(0.0..=1.0).contains(&self.rotate_fraction) {
            return Err(format!("rotate_fraction must be in [0,1], got {}", self.rotate_fraction));
        }
        Ok(())
    }
}

/// Per-table drift state: a shuffled cycle over the id space.
#[derive(Debug)]
struct TableDrift {
    /// A random permutation of the table's ids.
    cycle: Vec<u32>,
    /// `position[v]` = index of `v` inside `cycle`.
    position: Vec<u32>,
}

impl TableDrift {
    fn new(num_vectors: u32, seed: u64) -> Self {
        let mut cycle: Vec<u32> = (0..num_vectors).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        cycle.shuffle(&mut rng);
        let mut position = vec![0u32; num_vectors as usize];
        for (i, &v) in cycle.iter().enumerate() {
            position[v as usize] = i as u32;
        }
        TableDrift { cycle, position }
    }

    /// Maps an id to its epoch-`shift` replacement.
    fn remap(&self, v: u32, shift: u64) -> u32 {
        let n = self.cycle.len() as u64;
        let pos = (self.position[v as usize] as u64 + shift) % n;
        self.cycle[pos as usize]
    }
}

/// A [`TraceGenerator`] whose hot set rotates between epochs.
#[derive(Debug)]
pub struct DriftingTraceGenerator {
    inner: TraceGenerator,
    drifts: Vec<TableDrift>,
    config: DriftConfig,
    requests_generated: usize,
}

impl DriftingTraceGenerator {
    /// Builds the generator, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec or the drift config fails validation.
    pub fn new(spec: &ModelSpec, seed: u64, config: DriftConfig) -> Self {
        config.validate().expect("invalid drift config");
        let inner = TraceGenerator::new(spec, seed);
        let drifts = spec
            .tables
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                TableDrift::new(ts.num_vectors, (seed ^ 0xD81F_77A0).wrapping_add(t as u64))
            })
            .collect();
        DriftingTraceGenerator { inner, drifts, config, requests_generated: 0 }
    }

    /// The drift configuration.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// The underlying table topic model (for embedding synthesis, exactly
    /// as on [`TraceGenerator::topic_model`]).
    pub fn topic_model(&self, table: usize) -> &crate::TopicModel {
        self.inner.topic_model(table)
    }

    /// The epoch the *next* generated request falls into.
    pub fn current_epoch(&self) -> u64 {
        (self.requests_generated / self.config.requests_per_epoch) as u64
    }

    /// The id-space shift applied at a given epoch.
    fn shift_at(&self, epoch: u64, table: usize) -> u64 {
        let n = self.drifts[table].cycle.len() as f64;
        let per_epoch = (n * self.config.rotate_fraction).round() as u64;
        epoch.wrapping_mul(per_epoch)
    }

    /// Generates one request under the current epoch's remap.
    pub fn generate_request(&mut self) -> Request {
        let epoch = self.current_epoch();
        let mut request = self.inner.generate_request();
        for q in &mut request.queries {
            let shift = self.shift_at(epoch, q.table);
            if shift > 0 {
                let drift = &self.drifts[q.table];
                for id in &mut q.ids {
                    *id = drift.remap(*id, shift);
                }
            }
        }
        self.requests_generated += 1;
        request
    }

    /// Generates a trace of `n` requests, drifting across epochs as it goes.
    pub fn generate_requests(&mut self, n: usize) -> Trace {
        let requests = (0..n).map(|_| self.generate_request()).collect();
        Trace::new(self.inner.spec().tables.len(), requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn hot_set(trace: &Trace, table: usize, top: usize) -> HashSet<u32> {
        let mut counts = std::collections::HashMap::new();
        for id in trace.table_stream(table) {
            *counts.entry(id).or_insert(0u64) += 1;
        }
        let mut pairs: Vec<(u32, u64)> = counts.into_iter().collect();
        pairs.sort_by_key(|&(id, c)| (std::cmp::Reverse(c), id));
        pairs.into_iter().take(top).map(|(id, _)| id).collect()
    }

    #[test]
    fn epoch_zero_matches_base_generator() {
        let spec = ModelSpec::test_small();
        let mut base = TraceGenerator::new(&spec, 11);
        let mut drifting = DriftingTraceGenerator::new(
            &spec,
            11,
            DriftConfig { requests_per_epoch: 1000, rotate_fraction: 0.5 },
        );
        let a = base.generate_requests(100);
        let b = drifting.generate_requests(100);
        assert_eq!(a, b, "epoch 0 must be drift-free");
    }

    #[test]
    fn zero_rotation_never_drifts() {
        let spec = ModelSpec::test_small();
        let mut base = TraceGenerator::new(&spec, 12);
        let mut drifting = DriftingTraceGenerator::new(
            &spec,
            12,
            DriftConfig { requests_per_epoch: 10, rotate_fraction: 0.0 },
        );
        assert_eq!(base.generate_requests(200), drifting.generate_requests(200));
    }

    #[test]
    fn hot_set_moves_between_epochs() {
        let spec = ModelSpec::test_small();
        let config = DriftConfig { requests_per_epoch: 500, rotate_fraction: 0.4 };
        let mut g = DriftingTraceGenerator::new(&spec, 13, config);
        let epoch0 = g.generate_requests(500);
        let epoch1 = g.generate_requests(500);
        let h0 = hot_set(&epoch0, 0, 50);
        let h1 = hot_set(&epoch1, 0, 50);
        let overlap = h0.intersection(&h1).count();
        assert!(
            overlap < 25,
            "40% rotation should displace most of the top-50 hot set, overlap={overlap}"
        );
    }

    #[test]
    fn distribution_shape_is_preserved() {
        // Unique-id counts (a proxy for the popularity shape) must match
        // between a drifted epoch and the base workload.
        let spec = ModelSpec::test_small();
        let config = DriftConfig { requests_per_epoch: 400, rotate_fraction: 0.3 };
        let mut g = DriftingTraceGenerator::new(&spec, 14, config);
        let epoch0 = g.generate_requests(400);
        let epoch2 = {
            g.generate_requests(400); // skip epoch 1
            g.generate_requests(400)
        };
        let unique = |t: &Trace| {
            let mut ids = t.table_stream(0);
            ids.sort_unstable();
            ids.dedup();
            ids.len() as f64
        };
        let ratio = unique(&epoch2) / unique(&epoch0);
        assert!(
            (0.8..1.25).contains(&ratio),
            "drift must not change the popularity shape, unique ratio {ratio}"
        );
    }

    #[test]
    fn ids_stay_in_range() {
        let spec = ModelSpec::test_small();
        let config = DriftConfig { requests_per_epoch: 50, rotate_fraction: 0.9 };
        let mut g = DriftingTraceGenerator::new(&spec, 15, config);
        let trace = g.generate_requests(300);
        for (t, ts) in g.inner.spec().tables.iter().enumerate() {
            for id in trace.table_stream(t) {
                assert!(id < ts.num_vectors);
            }
        }
    }

    #[test]
    fn epoch_counter_advances() {
        let spec = ModelSpec::test_small();
        let config = DriftConfig { requests_per_epoch: 10, rotate_fraction: 0.1 };
        let mut g = DriftingTraceGenerator::new(&spec, 16, config);
        assert_eq!(g.current_epoch(), 0);
        g.generate_requests(25);
        assert_eq!(g.current_epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid drift config")]
    fn bad_config_rejected() {
        let spec = ModelSpec::test_small();
        let _ = DriftingTraceGenerator::new(
            &spec,
            0,
            DriftConfig { requests_per_epoch: 0, rotate_fraction: 0.1 },
        );
    }
}
