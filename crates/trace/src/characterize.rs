//! Workload characterization: reproduces the rows of the paper's Table 1 and
//! the data behind Figures 3 (hit-rate curves) and 4 (access histograms).

use crate::query::Trace;
use crate::spec::ModelSpec;
use crate::stack::StackDistances;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Histogram of per-vector access counts (Figure 4): `buckets[i]` counts how
/// many vectors were accessed a number of times falling in bucket `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessHistogram {
    /// Upper bound (inclusive) of each bucket, in accesses.
    pub bucket_bounds: Vec<u64>,
    /// Number of vectors per bucket.
    pub counts: Vec<u64>,
    /// Highest access count observed for any single vector.
    pub max_accesses: u64,
}

impl AccessHistogram {
    /// Builds a histogram with `buckets` equal-width buckets from per-vector
    /// access counts.
    pub fn from_counts(counts_per_vector: &HashMap<u32, u64>, buckets: usize) -> Self {
        let max_accesses = counts_per_vector.values().copied().max().unwrap_or(0);
        let buckets = buckets.max(1);
        let width = (max_accesses / buckets as u64).max(1);
        let bucket_bounds: Vec<u64> = (1..=buckets as u64).map(|i| i * width).collect();
        let mut counts = vec![0u64; buckets];
        for &c in counts_per_vector.values() {
            let idx = ((c.saturating_sub(1)) / width).min(buckets as u64 - 1) as usize;
            counts[idx] += 1;
        }
        AccessHistogram { bucket_bounds, counts, max_accesses }
    }

    /// Number of vectors accessed at least once.
    pub fn vectors_accessed(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// One row of Table 1 plus the reuse data behind Figures 3 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableCharacterization {
    /// Table index.
    pub table: usize,
    /// Number of vectors in the table.
    pub num_vectors: u32,
    /// Lookups against this table in the trace.
    pub total_lookups: u64,
    /// Fraction of all trace lookups that hit this table ("% of total").
    pub lookup_share: f64,
    /// Mean lookups per request ("avg request lookups").
    pub mean_lookups_per_request: f64,
    /// Fraction of lookups that were first-time accesses ("compulsory
    /// misses").
    pub compulsory_miss_rate: f64,
    /// Distinct vectors accessed.
    pub unique_vectors: u64,
    /// Per-vector access-count histogram (Figure 4).
    pub access_histogram: AccessHistogram,
    /// LRU hit-rate curve sampled at `hit_rate_sizes` (Figure 3).
    pub hit_rate_curve: Vec<(usize, f64)>,
}

/// Characterizes every table of a trace.
///
/// `hit_rate_sizes` chooses where to sample the hit-rate curves (Figure 3's
/// x-axis); pass sizes proportional to the table sizes in use.
///
/// # Example
///
/// ```
/// use bandana_trace::{characterize, ModelSpec, TraceGenerator};
///
/// let spec = ModelSpec::test_small();
/// let trace = TraceGenerator::new(&spec, 3).generate_requests(200);
/// let rows = characterize(&trace, &spec, &[64, 256, 1024]);
/// assert_eq!(rows.len(), spec.num_tables());
/// assert!(rows[0].compulsory_miss_rate > 0.0);
/// ```
pub fn characterize(
    trace: &Trace,
    spec: &ModelSpec,
    hit_rate_sizes: &[usize],
) -> Vec<TableCharacterization> {
    let total_lookups = trace.total_lookups() as f64;
    let mut out = Vec::with_capacity(spec.tables.len());
    for (table, tspec) in spec.tables.iter().enumerate() {
        let stream = trace.table_stream(table);
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for &id in &stream {
            *counts.entry(id).or_insert(0) += 1;
        }
        let mut sd = StackDistances::with_capacity(stream.len().max(1));
        sd.access_all(stream.iter().map(|&id| id as u64));

        let requests_with_table =
            trace.requests.iter().filter(|r| r.query_for(table).is_some()).count().max(1);
        out.push(TableCharacterization {
            table,
            num_vectors: tspec.num_vectors,
            total_lookups: stream.len() as u64,
            lookup_share: if total_lookups > 0.0 {
                stream.len() as f64 / total_lookups
            } else {
                0.0
            },
            mean_lookups_per_request: stream.len() as f64 / requests_with_table as f64,
            compulsory_miss_rate: sd.compulsory_miss_rate(),
            unique_vectors: counts.len() as u64,
            access_histogram: AccessHistogram::from_counts(&counts, 12),
            hit_rate_curve: sd.hit_rate_curve(hit_rate_sizes),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;

    #[test]
    fn characterization_is_consistent_with_trace() {
        let spec = ModelSpec::test_small();
        let trace = TraceGenerator::new(&spec, 5).generate_requests(300);
        let rows = characterize(&trace, &spec, &[32, 128, 512]);
        assert_eq!(rows.len(), 2);
        let share_sum: f64 = rows.iter().map(|r| r.lookup_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {share_sum}");
        for r in &rows {
            assert_eq!(r.total_lookups as usize, trace.table_lookups(r.table));
            assert!(r.unique_vectors <= r.total_lookups);
            assert!(r.unique_vectors >= 1);
            assert_eq!(r.access_histogram.vectors_accessed(), r.unique_vectors);
            // Compulsory rate = unique / total for a single stream.
            let expected = r.unique_vectors as f64 / r.total_lookups as f64;
            assert!((r.compulsory_miss_rate - expected).abs() < 1e-12);
            // Curve monotone.
            for w in r.hit_rate_curve.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }

    #[test]
    fn paper_model_preserves_cacheability_ordering() {
        // The defining property of Table 1: tables 1-2 (indices 0-1) have low
        // compulsory-miss rates, table 8 (index 7) is dominated by them.
        let spec = ModelSpec::paper_scaled(1_000);
        let trace = TraceGenerator::new(&spec, 1).generate_requests(2_000);
        let rows = characterize(&trace, &spec, &[100]);
        let cm: Vec<f64> = rows.iter().map(|r| r.compulsory_miss_rate).collect();
        assert!(
            cm[1] < cm[2],
            "table 2 ({}) should be more cacheable than table 3 ({})",
            cm[1],
            cm[2]
        );
        assert!(
            cm[0] < cm[2],
            "table 1 ({}) should be more cacheable than table 3 ({})",
            cm[0],
            cm[2]
        );
        // Table 8 has the highest compulsory-miss rate of all, as in Table 1.
        let max_cm = cm.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (cm[7] - max_cm).abs() < 1e-12,
            "table 8 ({}) must be least cacheable: {cm:?}",
            cm[7]
        );
        // Table 2 has the largest lookup share, as in the paper.
        let max_share_idx = rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.lookup_share.partial_cmp(&b.1.lookup_share).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_share_idx, 1);
    }

    #[test]
    fn histogram_buckets_cover_all_vectors() {
        let mut counts = HashMap::new();
        counts.insert(0u32, 1u64);
        counts.insert(1, 100);
        counts.insert(2, 10_000);
        let h = AccessHistogram::from_counts(&counts, 10);
        assert_eq!(h.vectors_accessed(), 3);
        assert_eq!(h.max_accesses, 10_000);
        assert_eq!(h.bucket_bounds.len(), 10);
        // The hottest vector is in the last bucket; the coldest in the first.
        assert!(h.counts[0] >= 1);
        assert!(*h.counts.last().unwrap() >= 1);
    }

    #[test]
    fn histogram_of_empty_counts() {
        let h = AccessHistogram::from_counts(&HashMap::new(), 5);
        assert_eq!(h.vectors_accessed(), 0);
        assert_eq!(h.max_accesses, 0);
    }

    #[test]
    fn hot_table_has_heavier_histogram_tail_than_flat_table() {
        // Mirrors Figure 4: table 2 (index 1) has vectors accessed orders of
        // magnitude more often than table 7's (index 6) hottest vectors.
        let spec = ModelSpec::paper_scaled(10_000);
        let trace = TraceGenerator::new(&spec, 2).generate_requests(2_000);
        let rows = characterize(&trace, &spec, &[100]);
        assert!(
            rows[1].access_histogram.max_accesses > 3 * rows[6].access_histogram.max_accesses,
            "table2 max {} vs table7 max {}",
            rows[1].access_histogram.max_accesses,
            rows[6].access_histogram.max_accesses
        );
    }
}
