//! Open-loop arrival processes for serving experiments.
//!
//! Closed-loop replay (issue the next request when the previous one
//! finishes) measures capacity but hides queueing delay: under open-loop
//! load, requests arrive on their own clock and latency explodes near
//! saturation (the paper's Figure 5 shape). This module generates those
//! arrival clocks — deterministic per seed — for the `bandana-serve`
//! load generator and the `nvm-sim` device simulator alike.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// How request arrival times are distributed.
///
/// # Example
///
/// ```
/// use bandana_trace::ArrivalProcess;
///
/// let schedule = ArrivalProcess::Poisson { rate_rps: 1_000.0 }.schedule(500, 7);
/// assert_eq!(schedule.len(), 500);
/// // Offsets are non-decreasing and average out to the offered rate.
/// assert!(schedule.windows(2).all(|w| w[1] >= w[0]));
/// let span = schedule.last().unwrap() - schedule[0];
/// let rate = 499.0 / span;
/// assert!((rate - 1_000.0).abs() / 1_000.0 < 0.2, "realized rate {rate}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Perfectly paced arrivals: one request every `1 / rate_rps` seconds.
    Uniform {
        /// Offered load in requests per second.
        rate_rps: f64,
    },
    /// Memoryless arrivals (exponential inter-arrival gaps) — the standard
    /// open-loop model for independent users.
    Poisson {
        /// Mean offered load in requests per second.
        rate_rps: f64,
    },
    /// An on/off modulated Poisson process: bursts at
    /// `burst_factor × rate_rps` during the on-phase of each cycle, with
    /// the off-phase rate chosen so the long-run mean stays `rate_rps`.
    Bursty {
        /// Long-run mean offered load in requests per second.
        rate_rps: f64,
        /// On-phase rate multiplier (> 1).
        burst_factor: f64,
        /// Fraction of each cycle spent bursting, in `(0, 1)`.
        on_fraction: f64,
        /// Cycle period in seconds.
        cycle_s: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean offered load in requests per second.
    pub fn rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { rate_rps }
            | ArrivalProcess::Poisson { rate_rps }
            | ArrivalProcess::Bursty { rate_rps, .. } => rate_rps,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_rps() <= 0.0 || self.rate_rps().is_nan() {
            return Err(format!("arrival rate must be positive, got {}", self.rate_rps()));
        }
        if let ArrivalProcess::Bursty { burst_factor, on_fraction, cycle_s, .. } = *self {
            if burst_factor <= 1.0 {
                return Err(format!("burst factor must exceed 1, got {burst_factor}"));
            }
            if !(0.0 < on_fraction && on_fraction < 1.0) {
                return Err(format!("on-fraction {on_fraction} outside (0, 1)"));
            }
            if cycle_s <= 0.0 {
                return Err(format!("cycle must be positive, got {cycle_s}"));
            }
            if burst_factor * on_fraction >= 1.0 {
                return Err(format!(
                    "burst_factor × on_fraction = {} ≥ 1 leaves no load for the off-phase",
                    burst_factor * on_fraction
                ));
            }
        }
        Ok(())
    }

    /// Generates `n` arrival offsets in seconds from time zero,
    /// non-decreasing, deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`ArrivalProcess::validate`].
    pub fn schedule(&self, n: usize, seed: u64) -> Vec<f64> {
        self.validate().expect("invalid arrival process");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        match *self {
            ArrivalProcess::Uniform { rate_rps } => {
                let gap = 1.0 / rate_rps;
                for _ in 0..n {
                    out.push(t);
                    t += gap;
                }
            }
            ArrivalProcess::Poisson { rate_rps } => {
                for _ in 0..n {
                    out.push(t);
                    t += exponential_gap(rate_rps, &mut rng);
                }
            }
            ArrivalProcess::Bursty { rate_rps, burst_factor, on_fraction, cycle_s } => {
                let on_rate = rate_rps * burst_factor;
                // Mean rate constraint: f·on + (1−f)·off = rate.
                let off_rate = rate_rps * (1.0 - burst_factor * on_fraction) / (1.0 - on_fraction);
                let on_span = on_fraction * cycle_s;
                // Time-rescaling: draw a unit-rate exponential and advance
                // through the piecewise-constant intensity until it is
                // used up. (Drawing a gap at the *current* phase's rate
                // would bias the realized rate low: slow off-phase gaps
                // would skip entire bursts.)
                for _ in 0..n {
                    out.push(t);
                    let mut e = exponential_gap(1.0, &mut rng);
                    loop {
                        let cycle_start = (t / cycle_s).floor() * cycle_s;
                        let phase = t - cycle_start;
                        let (rate, window_end) =
                            if phase < on_span { (on_rate, on_span) } else { (off_rate, cycle_s) };
                        let intensity_to_window_end = rate * (window_end - phase);
                        if e <= intensity_to_window_end {
                            t += e / rate;
                            break;
                        }
                        e -= intensity_to_window_end;
                        let next = cycle_start + window_end;
                        // Guard the floating-point corner where the window
                        // edge is indistinguishable from `t`.
                        t = if next > t { next } else { f64::from_bits(t.to_bits() + 1) };
                    }
                }
            }
        }
        out
    }
}

/// One exponential inter-arrival gap with mean `1 / rate`.
fn exponential_gap<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_perfectly_paced() {
        let s = ArrivalProcess::Uniform { rate_rps: 100.0 }.schedule(10, 0);
        for (i, &t) in s.iter().enumerate() {
            assert!((t - i as f64 * 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_mean_rate_is_right() {
        let n = 20_000;
        let s = ArrivalProcess::Poisson { rate_rps: 5_000.0 }.schedule(n, 3);
        let span = s.last().unwrap() - s[0];
        let rate = (n - 1) as f64 / span;
        assert!((rate - 5_000.0).abs() / 5_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn poisson_gaps_have_exponential_spread() {
        // Coefficient of variation of exponential gaps is 1; uniform pacing
        // would give 0.
        let s = ArrivalProcess::Poisson { rate_rps: 1_000.0 }.schedule(20_000, 4);
        let gaps: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "coefficient of variation {cv}");
    }

    #[test]
    fn bursty_keeps_long_run_mean_and_bursts() {
        let p = ArrivalProcess::Bursty {
            rate_rps: 1_000.0,
            burst_factor: 4.0,
            on_fraction: 0.2,
            cycle_s: 0.1,
        };
        let n = 50_000;
        let s = p.schedule(n, 5);
        let span = s.last().unwrap() - s[0];
        let rate = (n - 1) as f64 / span;
        assert!((rate - 1_000.0).abs() / 1_000.0 < 0.1, "long-run rate {rate}");

        // Arrivals inside on-phases should be denser than off-phases.
        let cycle = 0.1;
        let (mut on, mut off) = (0usize, 0usize);
        for &t in &s {
            if t.rem_euclid(cycle) < 0.02 {
                on += 1;
            } else {
                off += 1;
            }
        }
        let on_density = on as f64 / 0.2;
        let off_density = off as f64 / 0.8;
        assert!(on_density > 2.0 * off_density, "on {on_density} vs off {off_density}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_rps: 100.0 };
        assert_eq!(p.schedule(100, 9), p.schedule(100, 9));
        assert_ne!(p.schedule(100, 9), p.schedule(100, 10));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(ArrivalProcess::Poisson { rate_rps: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_factor: 0.5,
            on_fraction: 0.2,
            cycle_s: 1.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_factor: 6.0,
            on_fraction: 0.2,
            cycle_s: 1.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_factor: 4.0,
            on_fraction: 0.2,
            cycle_s: 1.0
        }
        .validate()
        .is_ok());
    }
}
