//! Synthetic embedding values.
//!
//! K-means partitioning (paper §4.2.1) needs actual vector geometry: Bandana
//! clusters embeddings by Euclidean distance hoping that geometric proximity
//! predicts temporal co-access. We synthesize embeddings so that this is
//! *partially* true, matching the paper's finding that semantic partitioning
//! helps some tables but is consistently beaten by access-history-based SHP:
//! vectors are drawn around their topic's centroid, but with enough noise
//! (and centroid overlap) that geometry is an imperfect proxy for co-access.

use crate::topics::TopicModel;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A dense row-major embedding matrix for one table, plus byte access used
/// by the storage layer.
///
/// # Example
///
/// ```
/// use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
///
/// let spec = ModelSpec::test_small();
/// let generator = TraceGenerator::new(&spec, 1);
/// let emb = EmbeddingTable::synthesize(
///     spec.tables[0].num_vectors,
///     spec.dim,
///     generator.topic_model(0),
///     7,
/// );
/// assert_eq!(emb.vector(0).len(), spec.dim);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    data: Vec<f32>,
    num_vectors: u32,
    dim: usize,
}

impl EmbeddingTable {
    /// Synthesizes embeddings around topic centroids.
    ///
    /// Each topic gets a centroid drawn from N(0, I); each vector is its
    /// topic centroid plus N(0, σ²) noise with σ chosen so neighbouring
    /// topics overlap (≈ 60% of the centroid spread). The noise magnitude
    /// grows with the vector's popularity rank inside its topic: popular
    /// items sit near the semantic core of their cluster (they co-occur
    /// with more contexts during training), cold items drift to the shell.
    /// This within-topic structure is what lets fine-grained K-means
    /// separate hot cores from cold shells — imperfectly, as in the paper,
    /// where semantic partitioning trails supervised SHP.
    ///
    /// # Panics
    ///
    /// Panics if `num_vectors` or `dim` is zero.
    pub fn synthesize(num_vectors: u32, dim: usize, topics: &TopicModel, seed: u64) -> Self {
        assert!(num_vectors > 0, "table must have vectors");
        assert!(dim > 0, "dimension must be non-zero");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let num_topics = topics.num_topics();
        let mut centroids = vec![0f32; num_topics * dim];
        for c in centroids.iter_mut() {
            *c = gaussian(&mut rng) as f32;
        }
        let base_sigma = 0.6f32;
        let mut data = vec![0f32; num_vectors as usize * dim];
        for v in 0..num_vectors {
            let topic = topics.topic_of(v) as usize;
            // Hot core (rank 0) at ~0.35σ, cold shell at ~1.3σ.
            let rank_frac = topics.rank_in_topic(v) as f32 / topics.topic_size(v).max(1) as f32;
            let sigma = base_sigma * (0.35 + 0.95 * rank_frac);
            let row = &mut data[v as usize * dim..(v as usize + 1) * dim];
            for (d, x) in row.iter_mut().enumerate() {
                *x = centroids[topic * dim + d] + sigma * gaussian(&mut rng) as f32;
            }
        }
        EmbeddingTable { data, num_vectors, dim }
    }

    /// Creates a table from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_vectors * dim`.
    pub fn from_data(data: Vec<f32>, num_vectors: u32, dim: usize) -> Self {
        assert_eq!(data.len(), num_vectors as usize * dim, "data shape mismatch");
        EmbeddingTable { data, num_vectors, dim }
    }

    /// Number of vectors.
    pub fn num_vectors(&self) -> u32 {
        self.num_vectors
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One embedding vector as a float slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vector(&self, v: u32) -> &[f32] {
        let i = v as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// The whole matrix, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Bytes per vector when serialized (f32 little-endian).
    pub fn vector_bytes(&self) -> usize {
        self.dim * 4
    }

    /// Serializes one vector to little-endian bytes (the payload stored on
    /// NVM).
    pub fn vector_as_bytes(&self, v: u32) -> Vec<u8> {
        self.vector(v).iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    /// Squared Euclidean distance between two vectors.
    pub fn distance2(&self, a: u32, b: u32) -> f32 {
        let va = self.vector(a);
        let vb = self.vector(b);
        va.iter().zip(vb).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

/// Box–Muller standard normal.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    let v: f64 = rng.gen::<f64>();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    fn table() -> (EmbeddingTable, TopicModel) {
        let spec = TableSpec::test_small(512);
        let topics = TopicModel::new(&spec, 3);
        let emb = EmbeddingTable::synthesize(512, 8, &topics, 4);
        (emb, topics)
    }

    #[test]
    fn shape_and_access() {
        let (emb, _) = table();
        assert_eq!(emb.num_vectors(), 512);
        assert_eq!(emb.dim(), 8);
        assert_eq!(emb.vector(0).len(), 8);
        assert_eq!(emb.data().len(), 512 * 8);
        assert_eq!(emb.vector_bytes(), 32);
    }

    #[test]
    fn same_topic_vectors_are_closer_on_average() {
        let (emb, topics) = table();
        let mut same = (0.0f64, 0usize);
        let mut diff = (0.0f64, 0usize);
        for a in 0..256u32 {
            for b in (a + 1)..256u32 {
                let d = emb.distance2(a, b) as f64;
                if topics.topic_of(a) == topics.topic_of(b) {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        let same_mean = same.0 / same.1 as f64;
        let diff_mean = diff.0 / diff.1 as f64;
        assert!(
            same_mean < diff_mean,
            "same-topic mean {same_mean} should be below cross-topic {diff_mean}"
        );
        // ...but with meaningful overlap (geometry is an imperfect proxy):
        // same-topic distance is not negligible relative to cross-topic
        // (cold-shell members keep topics overlapping).
        assert!(
            same_mean > 0.1 * diff_mean,
            "topics too well separated: {same_mean} vs {diff_mean}"
        );
    }

    #[test]
    fn bytes_round_trip() {
        let (emb, _) = table();
        let bytes = emb.vector_as_bytes(17);
        assert_eq!(bytes.len(), 32);
        let floats: Vec<f32> =
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        assert_eq!(floats.as_slice(), emb.vector(17));
    }

    #[test]
    fn from_data_validates_shape() {
        let e = EmbeddingTable::from_data(vec![0.0; 12], 3, 4);
        assert_eq!(e.num_vectors(), 3);
    }

    #[test]
    #[should_panic(expected = "data shape mismatch")]
    fn from_data_rejects_bad_shape() {
        let _ = EmbeddingTable::from_data(vec![0.0; 10], 3, 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 1);
        let a = EmbeddingTable::synthesize(64, 4, &topics, 9);
        let b = EmbeddingTable::synthesize(64, 4, &topics, 9);
        assert_eq!(a, b);
        let c = EmbeddingTable::synthesize(64, 4, &topics, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
