//! Zipf-popular co-access groups whose hot set rotates between epochs.
//!
//! The online re-layout loop (`bandana-serve`) needs a workload where
//! (a) requests have co-access structure a block layout can exploit,
//! (b) group popularity is heavy-tailed so a small hot set dominates, and
//! (c) the hot set *moves* mid-run, invalidating whatever layout was learned
//! before the drift. [`DriftingTraceGenerator`](crate::drift) rotates vector
//! *roles* under the full topic model; this module is the sharper instrument:
//! each table's id space is dealt into fixed co-access groups, one group is
//! drawn per request from a Zipf law over ranks, and every epoch the
//! rank→group assignment rotates so yesterday's hottest groups go cold.
//!
//! Because a group's ids are dealt from a random permutation, a hot group's
//! members straddle many build-time blocks — exactly the situation the
//! re-layout controller is supposed to detect and repair.
//!
//! # Example
//!
//! ```
//! use bandana_trace::{ModelSpec, ZipfDriftConfig, ZipfDriftGenerator};
//!
//! let spec = ModelSpec::test_small();
//! let config = ZipfDriftConfig { requests_per_epoch: 100, ..ZipfDriftConfig::default() };
//! let mut generator = ZipfDriftGenerator::new(&spec, 7, config);
//! let trace = generator.generate_requests(250); // spans epochs 0, 1, 2
//! assert_eq!(trace.requests.len(), 250);
//! assert_eq!(generator.current_epoch(), 2);
//! ```

use crate::query::{Request, TableQuery, Trace};
use crate::spec::ModelSpec;
use crate::zipf::Zipf;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Shape of the grouped workload and its drift schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfDriftConfig {
    /// Ids looked up together per group (one group per table per request).
    pub group_size: usize,
    /// Zipf exponent over group ranks; `0.0` degenerates to uniform.
    pub exponent: f64,
    /// Requests per drift epoch; the rank→group deal rotates between epochs.
    pub requests_per_epoch: usize,
    /// Fraction of each table's groups displaced per epoch, in `[0, 1]`.
    /// `0.0` disables drift entirely; any positive value displaces at least
    /// one group per epoch.
    pub rotate_fraction: f64,
}

impl Default for ZipfDriftConfig {
    fn default() -> Self {
        ZipfDriftConfig {
            group_size: 4,
            exponent: 1.1,
            requests_per_epoch: 1000,
            rotate_fraction: 0.5,
        }
    }
}

impl ZipfDriftConfig {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.group_size == 0 {
            return Err("group_size must be non-zero".to_string());
        }
        if !self.exponent.is_finite() || self.exponent < 0.0 {
            return Err(format!("exponent must be finite and non-negative, got {}", self.exponent));
        }
        if self.requests_per_epoch == 0 {
            return Err("requests_per_epoch must be non-zero".to_string());
        }
        if !(0.0..=1.0).contains(&self.rotate_fraction) {
            return Err(format!("rotate_fraction must be in [0,1], got {}", self.rotate_fraction));
        }
        Ok(())
    }
}

/// One table's dealt groups plus the rotating rank→group cycle.
#[derive(Debug)]
struct TableGroups {
    /// Concatenated group members: group `g` owns
    /// `members[g * group_size .. (g + 1) * group_size]`.
    members: Vec<u32>,
    /// A shuffled cycle of group indices; rank `r` at epoch shift `s` maps to
    /// group `cycle[(r + s) % groups]`.
    cycle: Vec<u32>,
    /// Groups displaced per epoch.
    shift_per_epoch: u64,
    zipf: Zipf,
}

impl TableGroups {
    fn new(num_vectors: u32, config: &ZipfDriftConfig, seed: u64) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut members: Vec<u32> = (0..num_vectors).collect();
        members.shuffle(&mut rng);
        // Whole groups only; a short tail of ids is simply never looked up.
        let groups = ((num_vectors as usize / config.group_size).max(1)) as u32;
        members.truncate(groups as usize * config.group_size.min(num_vectors as usize));
        let mut cycle: Vec<u32> = (0..groups).collect();
        cycle.shuffle(&mut rng);
        let shift_per_epoch = if config.rotate_fraction == 0.0 {
            0
        } else {
            ((groups as f64 * config.rotate_fraction).round() as u64).max(1)
        };
        TableGroups {
            members,
            cycle,
            shift_per_epoch,
            zipf: Zipf::new(groups as u64, config.exponent),
        }
    }

    fn groups(&self) -> u64 {
        self.cycle.len() as u64
    }

    /// The group index holding popularity rank `rank` at `epoch`.
    fn group_at(&self, rank: u64, epoch: u64) -> u32 {
        let n = self.groups();
        let shift = (epoch % n) * (self.shift_per_epoch % n) % n;
        self.cycle[((rank + shift) % n) as usize]
    }

    fn members_of(&self, group: u32, group_size: usize) -> &[u32] {
        let start = group as usize * group_size;
        &self.members[start..(start + group_size).min(self.members.len())]
    }
}

/// Generates requests of Zipf-popular co-access groups with epoch drift.
#[derive(Debug)]
pub struct ZipfDriftGenerator {
    tables: Vec<TableGroups>,
    config: ZipfDriftConfig,
    rng: ChaCha12Rng,
    requests_generated: usize,
}

impl ZipfDriftGenerator {
    /// Builds the generator, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation or the spec has no tables.
    pub fn new(spec: &ModelSpec, seed: u64, config: ZipfDriftConfig) -> Self {
        config.validate().expect("invalid zipf drift config");
        assert!(!spec.tables.is_empty(), "spec must have at least one table");
        let tables = spec
            .tables
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                TableGroups::new(
                    ts.num_vectors,
                    &config,
                    (seed ^ 0x51F7_D81F).wrapping_add(t as u64),
                )
            })
            .collect();
        ZipfDriftGenerator {
            tables,
            config,
            rng: ChaCha12Rng::seed_from_u64(seed),
            requests_generated: 0,
        }
    }

    /// The drift epoch the *next* request will be generated in.
    pub fn current_epoch(&self) -> u64 {
        (self.requests_generated / self.config.requests_per_epoch) as u64
    }

    /// Generates the next request: one Zipf-ranked group per table.
    pub fn generate_request(&mut self) -> Request {
        let epoch = self.current_epoch();
        self.requests_generated += 1;
        let queries = self
            .tables
            .iter()
            .enumerate()
            .map(|(t, tg)| {
                let rank = tg.zipf.sample(&mut self.rng);
                let group = tg.group_at(rank, epoch);
                TableQuery::new(t, tg.members_of(group, self.config.group_size).to_vec())
            })
            .collect();
        Request { queries }
    }

    /// Generates a trace of `n` requests, advancing epochs as configured.
    pub fn generate_requests(&mut self, n: usize) -> Trace {
        let requests = (0..n).map(|_| self.generate_request()).collect();
        Trace::new(self.tables.len(), requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn config() -> ZipfDriftConfig {
        ZipfDriftConfig {
            group_size: 4,
            exponent: 1.2,
            requests_per_epoch: 500,
            rotate_fraction: 0.5,
        }
    }

    /// The `top` most frequent ids of one table in a trace.
    fn hot_set(trace: &Trace, table: usize, top: usize) -> HashSet<u32> {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for ids in trace.table_queries(table) {
            for &v in ids {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(u32, u64)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
        ranked.into_iter().take(top).map(|(v, _)| v).collect()
    }

    #[test]
    fn requests_are_whole_coaccess_groups() {
        let spec = ModelSpec::test_small();
        let mut g = ZipfDriftGenerator::new(&spec, 11, config());
        // Reconstruct each table's deal from the generator's own state and
        // check every emitted query is exactly one group's member slice.
        let trace = g.generate_requests(200);
        for (t, tg) in g.tables.iter().enumerate() {
            let groups: HashSet<&[u32]> = (0..tg.cycle.len() as u32)
                .map(|grp| tg.members_of(grp, g.config.group_size))
                .collect();
            for ids in trace.table_queries(t) {
                assert_eq!(ids.len(), g.config.group_size);
                assert!(groups.contains(ids), "table {t} query {ids:?} is not a dealt group");
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = ModelSpec::test_small();
        let mut g = ZipfDriftGenerator::new(
            &spec,
            3,
            ZipfDriftConfig { requests_per_epoch: 100_000, ..config() },
        );
        let trace = g.generate_requests(5_000); // single epoch
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for ids in trace.table_queries(0) {
            for &v in ids {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.into_values().collect();
        freqs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let median = freqs[freqs.len() / 2];
        assert!(
            freqs[0] > 5 * median.max(1),
            "head frequency {} should dwarf median {median}",
            freqs[0]
        );
    }

    #[test]
    fn hot_set_moves_between_epochs() {
        let spec = ModelSpec::test_small();
        let mut g = ZipfDriftGenerator::new(&spec, 17, config());
        let epoch0 = g.generate_requests(500);
        let epoch1 = g.generate_requests(500);
        assert_eq!(g.current_epoch(), 2);
        for t in 0..spec.tables.len() {
            let before = hot_set(&epoch0, t, 16);
            let after = hot_set(&epoch1, t, 16);
            let overlap = before.intersection(&after).count();
            assert!(
                overlap < 8,
                "table {t}: hot set barely moved ({overlap}/16 ids survived the epoch)"
            );
        }
    }

    #[test]
    fn zero_rotate_fraction_disables_drift() {
        let spec = ModelSpec::test_small();
        let cfg = ZipfDriftConfig { rotate_fraction: 0.0, ..config() };
        let mut g = ZipfDriftGenerator::new(&spec, 17, cfg);
        let epoch0 = g.generate_requests(500);
        let epoch1 = g.generate_requests(500);
        let before = hot_set(&epoch0, 0, 16);
        let after = hot_set(&epoch1, 0, 16);
        assert!(
            before.intersection(&after).count() >= 12,
            "hot set should be stable without rotation"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ModelSpec::test_small();
        let mut a = ZipfDriftGenerator::new(&spec, 99, config());
        let mut b = ZipfDriftGenerator::new(&spec, 99, config());
        assert_eq!(a.generate_requests(300), b.generate_requests(300));
    }

    #[test]
    fn ids_stay_in_range() {
        let spec = ModelSpec::test_small();
        let mut g = ZipfDriftGenerator::new(&spec, 5, config());
        let trace = g.generate_requests(1_000);
        for (t, ts) in spec.tables.iter().enumerate() {
            for ids in trace.table_queries(t) {
                for &v in ids {
                    assert!(v < ts.num_vectors, "table {t} id {v} out of range");
                }
            }
        }
    }

    #[test]
    fn tiny_table_still_yields_a_group() {
        let mut spec = ModelSpec::test_small();
        spec.tables[0].num_vectors = 3; // smaller than group_size
        let mut g = ZipfDriftGenerator::new(&spec, 1, config());
        let trace = g.generate_requests(50);
        for ids in trace.table_queries(0) {
            assert!(!ids.is_empty() && ids.len() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "invalid zipf drift config")]
    fn degenerate_config_is_rejected() {
        ZipfDriftGenerator::new(
            &ModelSpec::test_small(),
            0,
            ZipfDriftConfig { group_size: 0, ..config() },
        );
    }
}
