//! Mattson stack distances and LRU hit-rate curves.
//!
//! The paper characterizes table reuse with stack distances (§3, Figure 3):
//! the stack distance of an access is the number of *distinct* keys touched
//! since the previous access to the same key — equivalently its rank from
//! the top of an infinite LRU stack. An access with stack distance `d` hits
//! in an LRU cache of capacity ≥ `d`; accumulating the distance histogram
//! therefore yields the entire hit-rate curve in one pass.
//!
//! The classic O(n log n) algorithm keeps a Fenwick (binary-indexed) tree
//! over access timestamps: each key's most recent access is marked `1`, so
//! the number of distinct keys since time `t` is a suffix sum.

use std::collections::HashMap;

/// Fenwick tree over u64 counts supporting point update and prefix sum.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn total(&self) -> u64 {
        if self.tree.len() > 1 {
            self.prefix(self.tree.len() - 2)
        } else {
            0
        }
    }
}

/// Streaming stack-distance calculator over `u64`-encodable keys.
///
/// Distances are 1-based: an immediate re-access (nothing else in between)
/// has distance 1 and hits in a cache of capacity 1. First-time accesses are
/// *compulsory misses* and have no distance.
///
/// # Example
///
/// ```
/// use bandana_trace::StackDistances;
///
/// let mut sd = StackDistances::with_capacity(8);
/// assert_eq!(sd.access(10), None);     // compulsory
/// assert_eq!(sd.access(20), None);     // compulsory
/// assert_eq!(sd.access(10), Some(2));  // 10 is 2nd from the stack top
/// assert_eq!(sd.access(10), Some(1));  // immediate re-access
/// ```
#[derive(Debug, Clone)]
pub struct StackDistances {
    fenwick: Fenwick,
    last_access: HashMap<u64, usize>,
    time: usize,
    /// histogram[d-1] = number of accesses with stack distance d (capped).
    histogram: Vec<u64>,
    compulsory: u64,
    total: u64,
}

impl StackDistances {
    /// Creates a calculator able to process `capacity` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        StackDistances {
            fenwick: Fenwick::new(capacity),
            last_access: HashMap::new(),
            time: 0,
            histogram: Vec::new(),
            compulsory: 0,
            total: 0,
        }
    }

    /// Processes one access; returns the stack distance or `None` for a
    /// compulsory (first-time) miss.
    ///
    /// # Panics
    ///
    /// Panics if more accesses are processed than the construction capacity.
    pub fn access(&mut self, key: u64) -> Option<u64> {
        assert!(self.time < self.fenwick.tree.len() - 1, "exceeded declared capacity");
        self.total += 1;
        let dist = match self.last_access.get(&key).copied() {
            None => {
                self.compulsory += 1;
                None
            }
            Some(t) => {
                // Distinct keys accessed strictly after t, plus the key itself.
                let after = self.fenwick.total() - self.fenwick.prefix(t);
                self.fenwick.add(t, -1);
                Some(after + 1)
            }
        };
        self.fenwick.add(self.time, 1);
        self.last_access.insert(key, self.time);
        self.time += 1;
        if let Some(d) = dist {
            let idx = d as usize - 1;
            if idx >= self.histogram.len() {
                self.histogram.resize(idx + 1, 0);
            }
            self.histogram[idx] += 1;
        }
        dist
    }

    /// Processes a whole sequence of accesses.
    pub fn access_all<I: IntoIterator<Item = u64>>(&mut self, keys: I) {
        for k in keys {
            let _ = self.access(k);
        }
    }

    /// Total accesses processed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of compulsory (first-time) misses.
    pub fn compulsory_misses(&self) -> u64 {
        self.compulsory
    }

    /// Fraction of accesses that were compulsory misses (Table 1's
    /// "compulsory misses" column).
    pub fn compulsory_miss_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.compulsory as f64 / self.total as f64
        }
    }

    /// The stack-distance histogram: entry `d-1` counts accesses at distance
    /// `d`.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// LRU hit rate at a given cache capacity (in entries): the fraction of
    /// accesses with stack distance ≤ `capacity`.
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(capacity).sum();
        hits as f64 / self.total as f64
    }

    /// The full hit-rate curve sampled at the given capacities.
    pub fn hit_rate_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities.iter().map(|&c| (c, self.hit_rate_at(c))).collect()
    }
}

/// One-shot helper: hit-rate curve of a key sequence at the given cache
/// sizes.
///
/// # Example
///
/// ```
/// use bandana_trace::hit_rate_curve;
///
/// let keys = [1u64, 2, 1, 2, 1, 2, 3, 3];
/// let curve = hit_rate_curve(keys.iter().copied(), &[1, 2, 4]);
/// assert_eq!(curve.len(), 3);
/// assert!(curve[2].1 >= curve[0].1);
/// ```
pub fn hit_rate_curve<I: IntoIterator<Item = u64>>(
    keys: I,
    capacities: &[usize],
) -> Vec<(usize, f64)> {
    let keys: Vec<u64> = keys.into_iter().collect();
    if keys.is_empty() {
        return capacities.iter().map(|&c| (c, 0.0)).collect();
    }
    let mut sd = StackDistances::with_capacity(keys.len());
    sd.access_all(keys);
    sd.hit_rate_curve(capacities)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) oracle: distance = distinct keys since last access.
    fn naive_distances(keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let last = keys[..i].iter().rposition(|&x| x == k);
            match last {
                None => out.push(None),
                Some(j) => {
                    let mut distinct: Vec<u64> = keys[j + 1..i].to_vec();
                    distinct.sort_unstable();
                    distinct.dedup();
                    out.push(Some(distinct.len() as u64 + 1));
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_oracle_on_fixed_sequence() {
        let keys = [1u64, 2, 3, 1, 2, 2, 4, 1, 3, 3, 2, 1, 5, 4];
        let expected = naive_distances(&keys);
        let mut sd = StackDistances::with_capacity(keys.len());
        let got: Vec<Option<u64>> = keys.iter().map(|&k| sd.access(k)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_naive_oracle_on_pseudorandom_sequence() {
        // Deterministic pseudo-random keys without pulling in rand here.
        let mut x = 12345u64;
        let keys: Vec<u64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) % 40
            })
            .collect();
        let expected = naive_distances(&keys);
        let mut sd = StackDistances::with_capacity(keys.len());
        let got: Vec<Option<u64>> = keys.iter().map(|&k| sd.access(k)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn compulsory_misses_count_unique_keys() {
        let keys = [5u64, 6, 5, 7, 6, 5];
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        assert_eq!(sd.compulsory_misses(), 3);
        assert_eq!(sd.total_accesses(), 6);
        assert!((sd.compulsory_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_curve_is_monotone() {
        let keys: Vec<u64> = (0..200).map(|i| (i * 7) % 50).collect();
        let curve = hit_rate_curve(keys.iter().copied(), &[1, 2, 5, 10, 25, 50, 100]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve not monotone: {curve:?}");
        }
        // At capacity >= distinct keys, hit rate = 1 - compulsory rate.
        let last = curve.last().unwrap().1;
        assert!((last - 0.75).abs() < 1e-12, "expected 150/200 hits, got {last}");
    }

    #[test]
    fn cyclic_scan_defeats_small_lru() {
        // The classic LRU-hostile pattern: cycling over N+1 keys with
        // capacity N yields zero hits.
        let n = 10usize;
        let keys: Vec<u64> = (0..110).map(|i| i % (n as u64 + 1)).collect();
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        assert_eq!(sd.hit_rate_at(n), 0.0);
        assert!(sd.hit_rate_at(n + 1) > 0.8);
    }

    #[test]
    fn immediate_reaccess_has_distance_one() {
        let mut sd = StackDistances::with_capacity(4);
        assert_eq!(sd.access(1), None);
        assert_eq!(sd.access(1), Some(1));
        assert_eq!(sd.access(1), Some(1));
    }

    #[test]
    #[should_panic(expected = "exceeded declared capacity")]
    fn over_capacity_panics() {
        let mut sd = StackDistances::with_capacity(1);
        let _ = sd.access(1);
        let _ = sd.access(2);
    }

    #[test]
    fn empty_curve_helper() {
        let curve = hit_rate_curve(std::iter::empty(), &[1, 2]);
        assert_eq!(curve, vec![(1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 3);
        f.add(4, 2);
        f.add(9, 1);
        assert_eq!(f.prefix(0), 3);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(4), 5);
        assert_eq!(f.prefix(9), 6);
        assert_eq!(f.total(), 6);
        f.add(4, -2);
        assert_eq!(f.total(), 4);
    }
}
