//! # bandana-trace — synthetic embedding-lookup workloads
//!
//! Bandana is evaluated on production traces of user-embedding lookups at
//! Facebook: 8 tables of 10–20 M vectors, ~1 B lookups, with the per-table
//! characteristics listed in Table 1 of the paper and the reuse behaviour of
//! Figures 3 and 4. Those traces are proprietary, so this crate synthesizes
//! workloads with the same *structure*:
//!
//! * per-table popularity skew (Zipf over latent topics × Zipf within topic)
//!   calibrated so the cacheability ordering of Table 1 is preserved
//!   (tables 1–2 cache well, table 8 is dominated by compulsory misses);
//! * co-access structure: each request draws a small set of user-interest
//!   topics and looks up vectors from those topics, giving the hypergraph
//!   partitioner (SHP) real spatial locality to discover;
//! * embedding geometry: vectors are topic centroids plus noise, so K-means
//!   recovers topic structure — but only approximately, reproducing the
//!   paper's SHP ≻ K-means result.
//!
//! Everything is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use bandana_trace::{ModelSpec, TraceGenerator};
//!
//! let spec = ModelSpec::paper_scaled(1000); // 1000x smaller than production
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let trace = generator.generate_requests(100);
//! assert_eq!(trace.requests.len(), 100);
//! assert!(trace.total_lookups() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aet;
pub mod arrivals;
pub mod characterize;
pub mod counterstacks;
pub mod drift;
pub mod embedding;
pub mod generator;
pub mod query;
pub mod serialize;
pub mod shards;
pub mod spec;
pub mod stack;
pub mod topics;
pub mod zipf;
pub mod zipf_drift;

pub use aet::AetModel;
pub use arrivals::ArrivalProcess;
pub use characterize::{characterize, AccessHistogram, TableCharacterization};
pub use counterstacks::{CounterStacks, HyperLogLog};
pub use drift::{DriftConfig, DriftingTraceGenerator};
pub use embedding::EmbeddingTable;
pub use generator::TraceGenerator;
pub use query::{Request, TableQuery, Trace};
pub use serialize::{read_trace, write_trace};
pub use shards::{mean_absolute_error, Shards};
pub use spec::{ModelSpec, TableSpec};
pub use stack::{hit_rate_curve, StackDistances};
pub use topics::TopicModel;
pub use zipf::Zipf;
pub use zipf_drift::{ZipfDriftConfig, ZipfDriftGenerator};
