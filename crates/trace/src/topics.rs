//! Latent-topic co-access model.
//!
//! The paper's central premise is that embedding vectors exhibit co-access
//! locality: vectors a user touches in one request tend to recur together in
//! other requests (that is what SHP mines from the access history, §4.2.2).
//! We synthesize that structure with latent topics: every vector belongs to
//! one topic, requests draw a handful of topics, and lookups sample vectors
//! from the drawn topics. The mapping from vector id to topic is a
//! pseudorandom permutation, so the *id order carries no locality* — exactly
//! the situation Bandana faces, where the physical table order is unrelated
//! to co-access.

use crate::spec::TableSpec;
use crate::zipf::Zipf;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The topic structure of one table: a partition of vector ids into topics
/// plus popularity distributions.
#[derive(Debug, Clone)]
pub struct TopicModel {
    /// topic_of[v] = topic index of vector v.
    topic_of: Vec<u32>,
    /// members[t] = vector ids in topic t (scrambled order; the position of
    /// an id in this list is its popularity rank within the topic).
    members: Vec<Vec<u32>>,
    /// rank_of[v] = v's popularity rank within its topic (0 = hottest).
    rank_of: Vec<u32>,
    topic_zipf: Zipf,
    member_zipf: Vec<Zipf>,
    noise: f64,
    num_vectors: u32,
}

impl TopicModel {
    /// Builds the topic structure for a table, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero vectors or zero topics.
    pub fn new(spec: &TableSpec, seed: u64) -> Self {
        assert!(spec.num_vectors > 0, "table must have vectors");
        assert!(spec.num_topics > 0, "table must have topics");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let n = spec.num_vectors as usize;
        let t = spec.num_topics.min(spec.num_vectors) as usize;

        // Shuffle ids, then deal them into topics round-robin so topic sizes
        // are balanced and id order carries no topical signal.
        let mut ids: Vec<u32> = (0..spec.num_vectors).collect();
        shuffle(&mut ids, &mut rng);
        let mut members: Vec<Vec<u32>> = vec![Vec::with_capacity(n / t + 1); t];
        let mut topic_of = vec![0u32; n];
        let mut rank_of = vec![0u32; n];
        for (i, &v) in ids.iter().enumerate() {
            let topic = i % t;
            rank_of[v as usize] = members[topic].len() as u32;
            members[topic].push(v);
            topic_of[v as usize] = topic as u32;
        }

        let member_zipf =
            members.iter().map(|m| Zipf::new(m.len() as u64, spec.vector_skew)).collect();
        TopicModel {
            topic_of,
            members,
            rank_of,
            topic_zipf: Zipf::new(t as u64, spec.topic_skew),
            member_zipf,
            noise: spec.noise,
            num_vectors: spec.num_vectors,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.members.len()
    }

    /// Topic of a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn topic_of(&self, v: u32) -> u32 {
        self.topic_of[v as usize]
    }

    /// The vector ids belonging to a topic.
    pub fn topic_members(&self, topic: u32) -> &[u32] {
        &self.members[topic as usize]
    }

    /// A vector's popularity rank within its topic (0 = hottest; the
    /// in-topic Zipf draws ranks in this order).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn rank_in_topic(&self, v: u32) -> u32 {
        self.rank_of[v as usize]
    }

    /// Size of the topic containing `v`.
    pub fn topic_size(&self, v: u32) -> usize {
        self.members[self.topic_of(v) as usize].len()
    }

    /// Draws the topic set for one request.
    pub fn sample_request_topics<R: Rng + ?Sized>(&self, count: u32, rng: &mut R) -> Vec<u32> {
        let mut topics = Vec::with_capacity(count as usize);
        for _ in 0..count {
            topics.push(self.topic_zipf.sample(rng) as u32);
        }
        topics
    }

    /// Draws one vector lookup given the request's topic set.
    pub fn sample_lookup<R: Rng + ?Sized>(&self, request_topics: &[u32], rng: &mut R) -> u32 {
        if request_topics.is_empty() || rng.gen::<f64>() < self.noise {
            return rng.gen_range(0..self.num_vectors);
        }
        let topic = request_topics[rng.gen_range(0..request_topics.len())] as usize;
        let members = &self.members[topic];
        let rank = self.member_zipf[topic].sample(rng) as usize;
        members[rank]
    }
}

/// Fisher–Yates shuffle with the caller's RNG (avoids depending on
/// `rand::seq` trait imports at call sites).
pub(crate) fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    fn model() -> TopicModel {
        TopicModel::new(&TableSpec::test_small(1024), 7)
    }

    #[test]
    fn every_vector_has_a_topic_and_membership_is_consistent() {
        let m = model();
        let mut seen = vec![false; 1024];
        for t in 0..m.num_topics() as u32 {
            for &v in m.topic_members(t) {
                assert_eq!(m.topic_of(v), t);
                assert!(!seen[v as usize], "vector {v} in two topics");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some vector lost its topic");
    }

    #[test]
    fn topic_sizes_are_balanced() {
        let m = model();
        let sizes: Vec<usize> =
            (0..m.num_topics() as u32).map(|t| m.topic_members(t).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "topic sizes {min}..{max} not balanced");
    }

    #[test]
    fn id_order_carries_no_topic_signal() {
        // Adjacent ids should usually be in different topics (the shuffle
        // destroys contiguity); check that fewer than 30% of adjacent pairs
        // share a topic when there are 16 topics.
        let m = model();
        let same: usize = (0..1023u32).filter(|&v| m.topic_of(v) == m.topic_of(v + 1)).count();
        let frac = same as f64 / 1023.0;
        assert!(frac < 0.3, "adjacent-id same-topic fraction {frac}");
    }

    #[test]
    fn lookups_stay_in_request_topics_mostly() {
        let m = model();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let topics = m.sample_request_topics(2, &mut rng);
        let mut in_topic = 0;
        let total = 2000;
        for _ in 0..total {
            let v = m.sample_lookup(&topics, &mut rng);
            if topics.contains(&m.topic_of(v)) {
                in_topic += 1;
            }
        }
        // noise = 0.05 in the test spec; allow sampling slack.
        assert!(
            in_topic as f64 / total as f64 > 0.9,
            "in-topic fraction too low: {in_topic}/{total}"
        );
    }

    #[test]
    fn empty_topic_set_falls_back_to_uniform() {
        let m = model();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        for _ in 0..100 {
            let v = m.sample_lookup(&[], &mut rng);
            assert!(v < 1024);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TopicModel::new(&TableSpec::test_small(512), 11);
        let b = TopicModel::new(&TableSpec::test_small(512), 11);
        for v in 0..512u32 {
            assert_eq!(a.topic_of(v), b.topic_of(v));
        }
        let c = TopicModel::new(&TableSpec::test_small(512), 12);
        let diff = (0..512u32).filter(|&v| a.topic_of(v) != c.topic_of(v)).count();
        assert!(diff > 0, "different seeds should give different assignments");
    }

    #[test]
    fn more_topics_than_vectors_is_clamped() {
        let mut spec = TableSpec::test_small(4);
        spec.num_topics = 100;
        let m = TopicModel::new(&spec, 1);
        assert_eq!(m.num_topics(), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut xs: Vec<u32> = (0..100).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        shuffle(&mut xs, &mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
