//! AET — miss-rate curves from the Average Eviction Time model.
//!
//! AET (Hu et al., USENIX ATC '16, cited in the paper's related work) is a
//! kinetic model of LRU: it needs only the *reuse time* histogram — the
//! number of accesses since the previous access to the same key, a single
//! hash-map away — rather than stack distances, and derives the whole
//! miss-rate curve from it:
//!
//! * `P(t)` — probability an access's reuse time exceeds `t`;
//! * the *average eviction time* of a cache of size `c` is the smallest `T`
//!   with `Σ_{t=1..T} P(t) = c` (an entry drifts one position down the LRU
//!   stack per access that is colder than it);
//! * the miss rate at size `c` is then `P(T)`.
//!
//! Compared with [`crate::shards::Shards`], AET trades a little accuracy
//! for an even cheaper pass (no ordered structure at all); Bandana uses
//! these estimates interchangeably wherever a hit-rate curve is consumed.
//!
//! # Example
//!
//! ```
//! use bandana_trace::aet::AetModel;
//!
//! let mut aet = AetModel::new();
//! for i in 0..10_000u64 {
//!     aet.access(i % 64);
//! }
//! let mrc = aet.miss_rate_at(64);
//! assert!(mrc < 0.05, "the whole working set fits, mrc={mrc}");
//! ```

use std::collections::HashMap;

/// Streaming reuse-time collector and AET miss-rate-curve solver.
#[derive(Debug, Clone, Default)]
pub struct AetModel {
    last_seen: HashMap<u64, u64>,
    /// reuse-time histogram; index `t-1` counts reuse time `t` (capped).
    reuse: Vec<u64>,
    /// Accesses with no prior occurrence (reuse time ∞).
    cold: u64,
    time: u64,
}

impl AetModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        AetModel::default()
    }

    /// Records one access.
    pub fn access(&mut self, key: u64) {
        self.time += 1;
        match self.last_seen.insert(key, self.time) {
            None => self.cold += 1,
            Some(prev) => {
                let rt = (self.time - prev) as usize;
                if rt > self.reuse.len() {
                    self.reuse.resize(rt, 0);
                }
                self.reuse[rt - 1] += 1;
            }
        }
    }

    /// Records a whole sequence.
    pub fn access_all<I: IntoIterator<Item = u64>>(&mut self, keys: I) {
        for k in keys {
            self.access(k);
        }
    }

    /// Total accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.time
    }

    /// Accesses that were first touches (infinite reuse time).
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// The miss rate of an LRU cache with `capacity` entries under the AET
    /// model. Includes compulsory misses.
    pub fn miss_rate_at(&self, capacity: usize) -> f64 {
        if self.time == 0 {
            return 0.0;
        }
        if capacity == 0 {
            return 1.0;
        }
        let n = self.time as f64;
        // survivors(t) = # accesses with reuse time > t; survivors(0) counts
        // every non-cold access plus the cold ones (rt = ∞ > 0).
        // P(t) = survivors(t) / n.
        let mut remaining: u64 = self.reuse.iter().sum::<u64>() + self.cold;
        let mut filled = 0.0f64;
        let mut t = 0usize;
        // Walk T upward until the integral of P reaches the cache size;
        // the model's miss rate is P(T) at that point.
        loop {
            // P(t) = fraction of accesses with reuse time > t.
            filled += remaining as f64 / n;
            // Advance to P(t+1): accesses with reuse time exactly t+1 no
            // longer survive.
            if t < self.reuse.len() {
                remaining -= self.reuse[t];
            }
            t += 1;
            let p_next = remaining as f64 / n;
            if filled >= capacity as f64 || remaining == self.cold {
                return p_next;
            }
        }
    }

    /// Hit rate (1 − miss rate) at `capacity`.
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        1.0 - self.miss_rate_at(capacity)
    }

    /// The hit-rate curve at the given capacities.
    pub fn hit_rate_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities.iter().map(|&c| (c, self.hit_rate_at(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shards::mean_absolute_error;
    use crate::stack::StackDistances;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                ((u * u) * universe as f64) as u64
            })
            .collect()
    }

    #[test]
    fn cyclic_stream_has_sharp_knee() {
        // Round-robin over 64 keys: everything hits once capacity ≥ 64,
        // everything misses below (LRU's classic cliff).
        let mut aet = AetModel::new();
        for i in 0..64_000u64 {
            aet.access(i % 64);
        }
        assert!(aet.miss_rate_at(64) < 0.05);
        assert!(aet.miss_rate_at(32) > 0.9, "below the loop size LRU thrashes");
    }

    #[test]
    fn matches_exact_mrc_on_skewed_stream() {
        let keys = skewed_stream(50_000, 2_000, 1);
        let caps = [10, 50, 100, 250, 500, 1000, 2000];
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        let exact = sd.hit_rate_curve(&caps);
        let mut aet = AetModel::new();
        aet.access_all(keys.iter().copied());
        let est = aet.hit_rate_curve(&caps);
        let mae = mean_absolute_error(&exact, &est);
        assert!(mae < 0.05, "AET estimate too far from exact, mae={mae}");
    }

    #[test]
    fn miss_rate_monotone_decreasing() {
        let keys = skewed_stream(20_000, 1_000, 2);
        let mut aet = AetModel::new();
        aet.access_all(keys.iter().copied());
        let mut prev = 1.0f64;
        for c in [1, 2, 4, 16, 64, 256, 1024, 4096] {
            let m = aet.miss_rate_at(c);
            assert!(m <= prev + 1e-9, "miss rate must not grow with capacity");
            prev = m;
        }
    }

    #[test]
    fn all_unique_keys_always_miss() {
        let mut aet = AetModel::new();
        aet.access_all(0..10_000u64);
        assert!((aet.miss_rate_at(1_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(aet.cold_accesses(), 10_000);
    }

    #[test]
    fn empty_model_is_zero() {
        let aet = AetModel::new();
        assert_eq!(aet.miss_rate_at(10), 0.0);
        assert_eq!(aet.total_accesses(), 0);
    }

    #[test]
    fn capacity_zero_always_misses() {
        let mut aet = AetModel::new();
        aet.access_all([1u64, 1, 1, 1]);
        assert_eq!(aet.miss_rate_at(0), 1.0);
    }
}
