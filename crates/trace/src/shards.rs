//! SHARDS — spatially hashed approximate reuse-distance sampling.
//!
//! The paper's miniature caches (§4.3.3) are built on the observation from
//! SHARDS (Waldspurger et al., FAST '15) that an LRU hit-rate curve can be
//! estimated from a small spatially-sampled subset of the keys: track the
//! stack distances of only the keys whose hash falls under a threshold
//! (rate `R`), then scale each measured distance by `1/R`. This module
//! implements both variants from the paper:
//!
//! * [`Shards`] — **fixed-rate**: a constant sampling rate chosen up front.
//! * [`Shards::fixed_size`] — **SHARDS-max**: a bound on the number of
//!   tracked keys; the threshold self-adjusts downward as the working set
//!   grows, so memory stays constant regardless of trace length.
//!
//! The estimated curves feed the same consumers as exact
//! [`crate::StackDistances`] curves (DRAM allocation across tables), at a
//! thousandth of the cost — which is exactly the trade Bandana makes when
//! tuning per-table budgets on production streams.
//!
//! # Example
//!
//! ```
//! use bandana_trace::shards::Shards;
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i % 100).collect();
//! let mut shards = Shards::new(0.5, 42);
//! for &k in &keys {
//!     shards.access(k);
//! }
//! let hr = shards.hit_rate_at(100); // the whole working set fits
//! assert!(hr > 0.9, "hit rate {hr}");
//! ```

use std::collections::{BTreeMap, HashMap};

/// 64-bit mix (splitmix64 finalizer) used as the spatial hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Modulus of the hash space the threshold is expressed in.
const HASH_SPACE: u64 = 1 << 24;

/// A stack-distance tracker over the *sampled* keys, supporting removal
/// (needed when SHARDS-max lowers its threshold and expels keys).
#[derive(Debug, Clone, Default)]
struct SampledStack {
    /// time → 1 if that timestamp is some key's most recent access.
    marks: BTreeMap<u64, ()>,
    last_access: HashMap<u64, u64>,
    time: u64,
}

impl SampledStack {
    /// Records an access; returns the stack distance among sampled keys, or
    /// `None` on a first access.
    fn access(&mut self, key: u64) -> Option<u64> {
        let t = self.time;
        self.time += 1;
        let dist = self.last_access.get(&key).copied().map(|prev| {
            // Distinct sampled keys accessed strictly after `prev`, plus one.
            let after = self.marks.range(prev + 1..).count() as u64;
            self.marks.remove(&prev);
            after + 1
        });
        self.marks.insert(t, ());
        self.last_access.insert(key, t);
        dist
    }

    /// Forgets a key entirely (SHARDS-max eviction).
    fn remove(&mut self, key: u64) {
        if let Some(t) = self.last_access.remove(&key) {
            self.marks.remove(&t);
        }
    }

    fn tracked(&self) -> usize {
        self.last_access.len()
    }
}

/// Streaming SHARDS estimator for LRU hit-rate curves.
#[derive(Debug, Clone)]
pub struct Shards {
    salt: u64,
    /// Sample iff `hash(key) < threshold`; rate = threshold / HASH_SPACE.
    threshold: u64,
    /// `None` = fixed-rate; `Some(s)` = bound on tracked keys (SHARDS-max).
    max_tracked: Option<usize>,
    stack: SampledStack,
    /// Per-key hash values currently tracked (for threshold-lowering).
    hashes: BTreeMap<u64, Vec<u64>>,
    /// Scaled-distance histogram: distance → accumulated weight.
    histogram: BTreeMap<u64, f64>,
    /// Weighted total accesses (hits + compulsory), in unsampled units.
    total_weight: f64,
    compulsory_weight: f64,
    /// Raw (unsampled) accesses seen, for bookkeeping.
    raw_accesses: u64,
    sampled_accesses: u64,
}

impl Shards {
    /// Creates a fixed-rate estimator sampling a `rate` fraction of keys.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn new(rate: f64, salt: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1], got {rate}");
        let threshold = ((rate * HASH_SPACE as f64).round() as u64).clamp(1, HASH_SPACE);
        Shards {
            salt,
            threshold,
            max_tracked: None,
            stack: SampledStack::default(),
            hashes: BTreeMap::new(),
            histogram: BTreeMap::new(),
            total_weight: 0.0,
            compulsory_weight: 0.0,
            raw_accesses: 0,
            sampled_accesses: 0,
        }
    }

    /// Creates a SHARDS-max estimator tracking at most `max_keys` keys.
    ///
    /// Starts at rate 1.0 and lowers the threshold as the working set
    /// grows, evicting the tracked keys with the largest hashes — constant
    /// memory for arbitrarily long traces.
    ///
    /// # Panics
    ///
    /// Panics if `max_keys` is zero.
    pub fn fixed_size(max_keys: usize, salt: u64) -> Self {
        assert!(max_keys > 0, "max_keys must be non-zero");
        let mut s = Shards::new(1.0, salt);
        s.max_tracked = Some(max_keys);
        s
    }

    /// The current sampling rate.
    pub fn rate(&self) -> f64 {
        self.threshold as f64 / HASH_SPACE as f64
    }

    /// Raw accesses observed (sampled or not).
    pub fn raw_accesses(&self) -> u64 {
        self.raw_accesses
    }

    /// Accesses that passed the spatial filter.
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Number of keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.stack.tracked()
    }

    /// Processes one access.
    pub fn access(&mut self, key: u64) {
        self.raw_accesses += 1;
        let h = mix64(key ^ self.salt) % HASH_SPACE;
        if h >= self.threshold {
            return;
        }
        self.sampled_accesses += 1;
        let rate = self.rate();
        let weight = 1.0 / rate;
        self.total_weight += weight;
        let first_time = !self.stack.last_access.contains_key(&key);
        match self.stack.access(key) {
            None => self.compulsory_weight += weight,
            Some(d) => {
                // Scale the sampled distance into unsampled units.
                let scaled = ((d as f64) / rate).round().max(1.0) as u64;
                *self.histogram.entry(scaled).or_insert(0.0) += weight;
            }
        }
        if first_time {
            self.hashes.entry(h).or_default().push(key);
            self.shrink_if_needed();
        }
    }

    /// Processes a whole sequence.
    pub fn access_all<I: IntoIterator<Item = u64>>(&mut self, keys: I) {
        for k in keys {
            self.access(k);
        }
    }

    /// SHARDS-max: expel largest-hash keys until the bound holds, lowering
    /// the threshold to the largest expelled hash.
    fn shrink_if_needed(&mut self) {
        let Some(max) = self.max_tracked else { return };
        while self.stack.tracked() > max {
            let (&h, _) = self.hashes.iter().next_back().expect("tracked keys have hashes");
            let keys = self.hashes.remove(&h).expect("present");
            for k in keys {
                self.stack.remove(k);
            }
            // Future samples must hash strictly below the expelled value.
            self.threshold = h;
        }
    }

    /// Estimated LRU hit rate at `capacity` cache entries.
    ///
    /// Uses the standard SHARDS-adj correction: the weighted totals are
    /// rescaled so the estimated access count matches the observed one,
    /// compensating sampling-rate drift in the fixed-size variant.
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let hits: f64 = self.histogram.range(..=(capacity as u64)).map(|(_, w)| *w).sum();
        (hits / self.total_weight).clamp(0.0, 1.0)
    }

    /// The estimated hit-rate curve at the given capacities.
    pub fn hit_rate_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities.iter().map(|&c| (c, self.hit_rate_at(c))).collect()
    }

    /// Estimated compulsory-miss rate.
    pub fn compulsory_miss_rate(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.compulsory_weight / self.total_weight
        }
    }
}

/// Mean absolute error between two hit-rate curves sampled at the same
/// capacities — the metric SHARDS' evaluation reports.
///
/// # Panics
///
/// Panics if the curves have different lengths or mismatched capacities.
///
/// # Example
///
/// ```
/// use bandana_trace::shards::mean_absolute_error;
///
/// let exact = [(10, 0.5), (20, 0.8)];
/// let est = [(10, 0.45), (20, 0.85)];
/// let mae = mean_absolute_error(&exact, &est);
/// assert!((mae - 0.05).abs() < 1e-12);
/// ```
pub fn mean_absolute_error(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    assert_eq!(a.len(), b.len(), "curves must be sampled at the same capacities");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&(ca, ha), &(cb, hb))| {
            assert_eq!(ca, cb, "curves must be sampled at the same capacities");
            (ha - hb).abs()
        })
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackDistances;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn zipfish_stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        // Cheap skewed stream: square a uniform variate.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                ((u * u) * universe as f64) as u64
            })
            .collect()
    }

    fn exact_curve(keys: &[u64], caps: &[usize]) -> Vec<(usize, f64)> {
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        sd.hit_rate_curve(caps)
    }

    #[test]
    fn rate_one_matches_exact() {
        let keys = zipfish_stream(5_000, 500, 1);
        let caps = [1, 10, 50, 100, 250, 500];
        let exact = exact_curve(&keys, &caps);
        let mut shards = Shards::new(1.0, 7);
        shards.access_all(keys.iter().copied());
        let est = shards.hit_rate_curve(&caps);
        let mae = mean_absolute_error(&exact, &est);
        assert!(mae < 1e-9, "rate 1.0 must be exact, mae={mae}");
    }

    #[test]
    fn sampled_estimate_tracks_exact_curve() {
        let keys = zipfish_stream(40_000, 2_000, 2);
        let caps = [10, 50, 100, 250, 500, 1000, 2000];
        let exact = exact_curve(&keys, &caps);
        let mut shards = Shards::new(0.1, 11);
        shards.access_all(keys.iter().copied());
        let est = shards.hit_rate_curve(&caps);
        let mae = mean_absolute_error(&exact, &est);
        assert!(mae < 0.05, "10% SHARDS should track the exact MRC, mae={mae}");
    }

    #[test]
    fn fixed_size_bounds_memory() {
        let keys = zipfish_stream(50_000, 10_000, 3);
        let mut shards = Shards::fixed_size(256, 5);
        shards.access_all(keys.iter().copied());
        assert!(shards.tracked_keys() <= 256);
        assert!(shards.rate() < 1.0, "threshold must have dropped");
    }

    #[test]
    fn fixed_size_estimate_still_accurate() {
        let keys = zipfish_stream(60_000, 3_000, 4);
        let caps = [50, 100, 250, 500, 1000, 3000];
        let exact = exact_curve(&keys, &caps);
        let mut shards = Shards::fixed_size(512, 9);
        shards.access_all(keys.iter().copied());
        let est = shards.hit_rate_curve(&caps);
        let mae = mean_absolute_error(&exact, &est);
        assert!(mae < 0.08, "SHARDS-max estimate too far off, mae={mae}");
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let keys = zipfish_stream(10_000, 1_000, 6);
        let mut shards = Shards::new(0.25, 3);
        shards.access_all(keys.iter().copied());
        let mut prev = 0.0;
        for c in [1, 2, 4, 8, 16, 64, 256, 1024] {
            let h = shards.hit_rate_at(c);
            assert!(h + 1e-12 >= prev, "hit rate must be monotone");
            prev = h;
        }
        assert!(prev <= 1.0);
    }

    #[test]
    fn empty_estimator_reports_zero() {
        let shards = Shards::new(0.5, 0);
        assert_eq!(shards.hit_rate_at(100), 0.0);
        assert_eq!(shards.compulsory_miss_rate(), 0.0);
        assert_eq!(shards.raw_accesses(), 0);
    }

    #[test]
    fn compulsory_rate_reasonable() {
        // A stream of unique keys is 100% compulsory misses.
        let keys: Vec<u64> = (0..20_000).collect();
        let mut shards = Shards::new(0.2, 1);
        shards.access_all(keys.iter().copied());
        assert!((shards.compulsory_miss_rate() - 1.0).abs() < 1e-9);
        assert_eq!(shards.hit_rate_at(1_000_000), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_rejected() {
        let _ = Shards::new(0.0, 0);
    }
}
