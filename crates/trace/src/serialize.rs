//! Compact binary trace serialization.
//!
//! Traces at the Full experiment scale run to millions of lookups;
//! re-generating them is cheap but sharing *identical* traces across
//! machines (or pinning one in a repository) calls for a stable on-disk
//! format. The format here is deliberately simple and self-describing:
//!
//! ```text
//! magic "BDNT" | version u16 | num_tables u16 | num_requests u64
//! per request:  num_queries u16
//! per query:    table u16 | num_ids u32 | ids (delta-encoded varints)
//! ```
//!
//! Ids within a query are sorted before delta encoding; Bandana's consumers
//! (hypergraph construction, frequency counting, cache simulation keyed by
//! id multiset) are order-insensitive within a query, and sorting typically
//! shrinks the encoding by 3–4×.

use crate::query::{Request, TableQuery, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BDNT";
const VERSION: u16 = 1;

/// Writes a varint (LEB128) u64.
fn write_varint<W: Write>(w: &mut W, mut x: u64) -> io::Result<()> {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a varint (LEB128) u64.
fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint too long"));
        }
        x |= u64::from(buf[0] & 0x7F) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// Serializes a trace to a writer.
///
/// Note that a `&mut W` can be passed where a `W: Write` is expected, so
/// callers can keep ownership of their writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use bandana_trace::serialize::{read_trace, write_trace};
/// use bandana_trace::{ModelSpec, TraceGenerator};
///
/// # fn main() -> std::io::Result<()> {
/// let trace = TraceGenerator::new(&ModelSpec::test_small(), 3).generate_requests(20);
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace)?;
/// let back = read_trace(&mut buf.as_slice())?;
/// assert_eq!(back.total_lookups(), trace.total_lookups());
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let tables = u16::try_from(trace.num_tables)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many tables"))?;
    w.write_all(&tables.to_le_bytes())?;
    w.write_all(&(trace.requests.len() as u64).to_le_bytes())?;
    let mut ids: Vec<u32> = Vec::new();
    for request in &trace.requests {
        let queries = u16::try_from(request.queries.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many queries"))?;
        w.write_all(&queries.to_le_bytes())?;
        for q in &request.queries {
            let table = u16::try_from(q.table)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "table id too large"))?;
            w.write_all(&table.to_le_bytes())?;
            w.write_all(&(q.ids.len() as u32).to_le_bytes())?;
            ids.clear();
            ids.extend_from_slice(&q.ids);
            ids.sort_unstable();
            let mut prev = 0u64;
            for &id in &ids {
                write_varint(&mut w, u64::from(id) - prev)?;
                prev = u64::from(id);
            }
        }
    }
    Ok(())
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version or malformed stream, and
/// propagates reader I/O errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let mut u16buf = [0u8; 2];
    r.read_exact(&mut u16buf)?;
    let version = u16::from_le_bytes(u16buf);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    r.read_exact(&mut u16buf)?;
    let num_tables = usize::from(u16::from_le_bytes(u16buf));
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let num_requests = u64::from_le_bytes(u64buf);

    let mut requests = Vec::with_capacity(usize::try_from(num_requests).unwrap_or(0));
    for _ in 0..num_requests {
        r.read_exact(&mut u16buf)?;
        let num_queries = usize::from(u16::from_le_bytes(u16buf));
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            r.read_exact(&mut u16buf)?;
            let table = usize::from(u16::from_le_bytes(u16buf));
            let mut u32buf = [0u8; 4];
            r.read_exact(&mut u32buf)?;
            let num_ids = u32::from_le_bytes(u32buf) as usize;
            let mut ids = Vec::with_capacity(num_ids);
            let mut prev = 0u64;
            for _ in 0..num_ids {
                let delta = read_varint(&mut r)?;
                prev = prev
                    .checked_add(delta)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "id overflow"))?;
                let id = u32::try_from(prev)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "id exceeds u32"))?;
                ids.push(id);
            }
            queries.push(TableQuery::new(table, ids));
        }
        requests.push(Request { queries });
    }
    Ok(Trace::new(num_tables, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec::ModelSpec;

    fn round_trip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace).unwrap();
        read_trace(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let spec = ModelSpec::test_small();
        let trace = TraceGenerator::new(&spec, 4).generate_requests(50);
        let back = round_trip(&trace);
        assert_eq!(back.num_tables, trace.num_tables);
        assert_eq!(back.requests.len(), trace.requests.len());
        assert_eq!(back.total_lookups(), trace.total_lookups());
        // Ids survive per query as multisets (the format sorts them).
        for (a, b) in trace.requests.iter().zip(&back.requests) {
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                assert_eq!(qa.table, qb.table);
                let mut ia = qa.ids.clone();
                ia.sort_unstable();
                assert_eq!(ia, qb.ids);
            }
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(3, vec![]);
        let back = round_trip(&trace);
        assert_eq!(back, trace);
    }

    #[test]
    fn encoding_is_compact() {
        // Sorted delta-varints: a 100-id query over nearby ids should cost
        // well under 4 bytes per id.
        let ids: Vec<u32> = (0..100u32).map(|i| i * 3).collect();
        let trace = Trace::new(1, vec![Request { queries: vec![TableQuery::new(0, ids)] }]);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert!(buf.len() < 100 * 2 + 32, "encoding too large: {} bytes", buf.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BDNT");
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let spec = ModelSpec::test_small();
        let trace = TraceGenerator::new(&spec, 4).generate_requests(5);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn varint_round_trip() {
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), x);
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = [0x80u8; 11];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }
}
