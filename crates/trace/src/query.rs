//! Trace data model: requests, per-table queries, and whole traces.
//!
//! A *request* corresponds to ranking content for one user: it touches
//! several embedding tables, looking up a handful of vectors in each (§3 of
//! the paper: 17–93 lookups per table per request on average).

use serde::{Deserialize, Serialize};

/// Identifier of an embedding vector within its table (a column id).
pub type VecId = u32;

/// The lookups a single request performs in one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableQuery {
    /// Index of the table in the model.
    pub table: usize,
    /// Vector ids looked up, in issue order. May contain duplicates — a
    /// request can reference the same page/word twice.
    pub ids: Vec<VecId>,
}

impl TableQuery {
    /// Creates a query against `table` for the given ids.
    pub fn new(table: usize, ids: Vec<VecId>) -> Self {
        TableQuery { table, ids }
    }

    /// The distinct ids in this query, sorted.
    pub fn unique_ids(&self) -> Vec<VecId> {
        let mut ids = self.ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// One user request spanning several tables.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Request {
    /// Per-table lookups; at most one entry per table.
    pub queries: Vec<TableQuery>,
}

impl Request {
    /// Total number of vector lookups across all tables.
    pub fn total_lookups(&self) -> usize {
        self.queries.iter().map(|q| q.ids.len()).sum()
    }

    /// The lookups against a given table, if any.
    pub fn query_for(&self, table: usize) -> Option<&TableQuery> {
        self.queries.iter().find(|q| q.table == table)
    }
}

/// A sequence of requests against a fixed set of tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of tables in the model that produced this trace.
    pub num_tables: usize,
    /// The requests, in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Creates a trace over `num_tables` tables.
    pub fn new(num_tables: usize, requests: Vec<Request>) -> Self {
        Trace { num_tables, requests }
    }

    /// Total number of vector lookups in the trace.
    pub fn total_lookups(&self) -> usize {
        self.requests.iter().map(Request::total_lookups).sum()
    }

    /// Number of lookups against one table.
    pub fn table_lookups(&self, table: usize) -> usize {
        self.requests.iter().filter_map(|r| r.query_for(table)).map(|q| q.ids.len()).sum()
    }

    /// Iterates over the per-request id lists for one table (requests that
    /// skip the table are omitted).
    pub fn table_queries(&self, table: usize) -> impl Iterator<Item = &[VecId]> + '_ {
        self.requests.iter().filter_map(move |r| r.query_for(table).map(|q| q.ids.as_slice()))
    }

    /// Flattens one table's lookups into a single id stream, in trace order.
    pub fn table_stream(&self, table: usize) -> Vec<VecId> {
        let mut out = Vec::new();
        for ids in self.table_queries(table) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Splits the trace into a prefix of `n` requests and the remainder;
    /// useful for separating SHP training data from evaluation data.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of requests.
    pub fn split_at(&self, n: usize) -> (Trace, Trace) {
        assert!(n <= self.requests.len(), "split point beyond trace length");
        let (a, b) = self.requests.split_at(n);
        (Trace::new(self.num_tables, a.to_vec()), Trace::new(self.num_tables, b.to_vec()))
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        let requests: Vec<Request> = iter.into_iter().collect();
        let num_tables =
            requests.iter().flat_map(|r| r.queries.iter().map(|q| q.table + 1)).max().unwrap_or(0);
        Trace { num_tables, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            2,
            vec![
                Request {
                    queries: vec![TableQuery::new(0, vec![1, 2, 2]), TableQuery::new(1, vec![9])],
                },
                Request { queries: vec![TableQuery::new(0, vec![3])] },
            ],
        )
    }

    #[test]
    fn lookup_counts() {
        let t = sample_trace();
        assert_eq!(t.total_lookups(), 5);
        assert_eq!(t.table_lookups(0), 4);
        assert_eq!(t.table_lookups(1), 1);
        assert_eq!(t.table_lookups(2), 0); // nonexistent table is just empty
    }

    #[test]
    fn unique_ids_dedupes_and_sorts() {
        let q = TableQuery::new(0, vec![5, 1, 5, 3]);
        assert_eq!(q.unique_ids(), vec![1, 3, 5]);
    }

    #[test]
    fn table_stream_preserves_order() {
        let t = sample_trace();
        assert_eq!(t.table_stream(0), vec![1, 2, 2, 3]);
        assert_eq!(t.table_stream(1), vec![9]);
    }

    #[test]
    fn split_at_partitions_requests() {
        let t = sample_trace();
        let (a, b) = t.split_at(1);
        assert_eq!(a.requests.len(), 1);
        assert_eq!(b.requests.len(), 1);
        assert_eq!(a.num_tables, 2);
        assert_eq!(b.table_stream(0), vec![3]);
    }

    #[test]
    #[should_panic(expected = "split point beyond trace length")]
    fn split_beyond_length_panics() {
        sample_trace().split_at(3);
    }

    #[test]
    fn from_iterator_infers_table_count() {
        let t: Trace =
            vec![Request { queries: vec![TableQuery::new(4, vec![1])] }].into_iter().collect();
        assert_eq!(t.num_tables, 5);
    }

    #[test]
    fn request_query_for_finds_table() {
        let t = sample_trace();
        assert!(t.requests[0].query_for(1).is_some());
        assert!(t.requests[1].query_for(1).is_none());
        assert_eq!(t.requests[0].total_lookups(), 4);
    }
}
