//! Trace generation: turns a [`ModelSpec`] into request streams.

use crate::query::{Request, TableQuery, Trace};
use crate::spec::ModelSpec;
use crate::topics::TopicModel;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Generates deterministic synthetic traces from a model specification.
///
/// Each request:
/// 1. visits every table (production requests touch all user-embedding
///    tables; per-table lookup counts give the Table 1 shares),
/// 2. draws a per-table topic set (the "user's interests" for this request),
/// 3. draws a Poisson-distributed number of lookups around the table's mean.
///
/// # Example
///
/// ```
/// use bandana_trace::{ModelSpec, TraceGenerator};
///
/// let spec = ModelSpec::test_small();
/// let mut generator = TraceGenerator::new(&spec, 1);
/// let trace = generator.generate_requests(50);
/// assert_eq!(trace.requests.len(), 50);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: ModelSpec,
    topic_models: Vec<TopicModel>,
    rng: ChaCha12Rng,
}

impl TraceGenerator {
    /// Builds the generator (including per-table topic structure) from a
    /// spec, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn new(spec: &ModelSpec, seed: u64) -> Self {
        spec.validate().expect("invalid model spec");
        let topic_models = spec
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                TopicModel::new(t, seed.wrapping_add(0x9E37_79B9).wrapping_mul(i as u64 + 1))
            })
            .collect();
        TraceGenerator { spec: spec.clone(), topic_models, rng: ChaCha12Rng::seed_from_u64(seed) }
    }

    /// The model spec this generator was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The topic model for one table (used by tests and by embedding
    /// generation, which shares the topic structure).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn topic_model(&self, table: usize) -> &TopicModel {
        &self.topic_models[table]
    }

    /// Generates one request spanning all tables.
    pub fn generate_request(&mut self) -> Request {
        let mut queries = Vec::with_capacity(self.spec.tables.len());
        for (table, spec) in self.spec.tables.iter().enumerate() {
            let model = &self.topic_models[table];
            let topics = model.sample_request_topics(spec.topics_per_request, &mut self.rng);
            let count = sample_poisson(spec.mean_lookups, &mut self.rng).max(1);
            let mut ids = Vec::with_capacity(count as usize);
            for _ in 0..count {
                ids.push(model.sample_lookup(&topics, &mut self.rng));
            }
            queries.push(TableQuery::new(table, ids));
        }
        Request { queries }
    }

    /// Generates a trace of `n` requests.
    pub fn generate_requests(&mut self, n: usize) -> Trace {
        let requests = (0..n).map(|_| self.generate_request()).collect();
        Trace::new(self.spec.tables.len(), requests)
    }

    /// Generates requests until the trace contains at least `lookups` vector
    /// lookups in total. The paper sizes traces in lookups ("1 billion
    /// embedding vector lookups", §3).
    pub fn generate_lookups(&mut self, lookups: usize) -> Trace {
        let mut requests = Vec::new();
        let mut total = 0usize;
        while total < lookups {
            let r = self.generate_request();
            total += r.total_lookups();
            requests.push(r);
        }
        Trace::new(self.spec.tables.len(), requests)
    }
}

/// Knuth's Poisson sampler for small means, normal approximation above 64.
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    debug_assert!(mean > 0.0);
    if mean < 64.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // Numerical guard for pathological RNG streams.
            if k > 64 + (mean * 8.0) as u64 {
                return k;
            }
        }
    } else {
        // Normal approximation with continuity correction.
        let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let v: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        (mean + z * mean.sqrt() + 0.5).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    #[test]
    fn request_touches_every_table() {
        let spec = ModelSpec::test_small();
        let mut g = TraceGenerator::new(&spec, 3);
        let r = g.generate_request();
        assert_eq!(r.queries.len(), 2);
        for (i, q) in r.queries.iter().enumerate() {
            assert_eq!(q.table, i);
            assert!(!q.ids.is_empty());
            for &id in &q.ids {
                assert!(id < spec.tables[i].num_vectors);
            }
        }
    }

    #[test]
    fn mean_lookups_close_to_spec() {
        let spec = ModelSpec::test_small();
        let mut g = TraceGenerator::new(&spec, 4);
        let trace = g.generate_requests(2000);
        for (i, t) in spec.tables.iter().enumerate() {
            let mean = trace.table_lookups(i) as f64 / trace.requests.len() as f64;
            assert!(
                (mean - t.mean_lookups).abs() / t.mean_lookups < 0.1,
                "table {i}: mean {mean} vs spec {}",
                t.mean_lookups
            );
        }
    }

    #[test]
    fn generate_lookups_reaches_target() {
        let spec = ModelSpec::test_small();
        let mut g = TraceGenerator::new(&spec, 5);
        let trace = g.generate_lookups(1000);
        assert!(trace.total_lookups() >= 1000);
        // Should not wildly overshoot (one request is ~16 lookups here).
        assert!(trace.total_lookups() < 1100);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ModelSpec::test_small();
        let a = TraceGenerator::new(&spec, 9).generate_requests(20);
        let b = TraceGenerator::new(&spec, 9).generate_requests(20);
        assert_eq!(a, b);
        let c = TraceGenerator::new(&spec, 10).generate_requests(20);
        assert_ne!(a, c);
    }

    #[test]
    fn lookup_shares_follow_spec_ordering() {
        // Build a 3-table spec with distinct mean lookups and check the
        // realized share ordering matches.
        let spec = ModelSpec {
            tables: vec![
                TableSpec { mean_lookups: 5.0, lookup_share: 0.1, ..TableSpec::test_small(1024) },
                TableSpec { mean_lookups: 40.0, lookup_share: 0.8, ..TableSpec::test_small(1024) },
                TableSpec { mean_lookups: 10.0, lookup_share: 0.1, ..TableSpec::test_small(1024) },
            ],
            dim: 8,
            element_bytes: 4,
        };
        let mut g = TraceGenerator::new(&spec, 6);
        let trace = g.generate_requests(500);
        let l0 = trace.table_lookups(0);
        let l1 = trace.table_lookups(1);
        let l2 = trace.table_lookups(2);
        assert!(l1 > l2 && l2 > l0, "shares out of order: {l0} {l1} {l2}");
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for mean in [2.0, 17.68, 92.75, 200.0] {
            let n = 5000;
            let total: u64 = (0..n).map(|_| sample_poisson(mean, &mut rng)).sum();
            let got = total as f64 / n as f64;
            assert!((got - mean).abs() / mean < 0.05, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn skewed_tables_reuse_vectors_more_than_uniform_ones() {
        // A heavy-skew table should touch far fewer unique vectors than a
        // noisy near-uniform one, for equal lookup counts.
        let mk = |skew: f64, noise: f64| TableSpec {
            topic_skew: skew,
            vector_skew: skew,
            noise,
            mean_lookups: 20.0,
            lookup_share: 0.5,
            ..TableSpec::test_small(4096)
        };
        let spec =
            ModelSpec { tables: vec![mk(1.1, 0.01), mk(0.2, 0.8)], dim: 8, element_bytes: 4 };
        let mut g = TraceGenerator::new(&spec, 8);
        let trace = g.generate_requests(1000);
        let unique = |t: usize| {
            let mut ids = trace.table_stream(t);
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        assert!(
            (unique(0) as f64) * 1.3 < unique(1) as f64,
            "skewed table unique {} vs uniform {}",
            unique(0),
            unique(1)
        );
    }
}
