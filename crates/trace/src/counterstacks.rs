//! Counter Stacks — miss-rate curves from probabilistic counters.
//!
//! The third MRC technique the paper cites (Wires et al., OSDI '14),
//! completing the family next to [`crate::shards`] and [`crate::aet`]. The
//! idea: keep a *stack* of [`HyperLogLog`] cardinality sketches, starting a
//! new one every `downsample` accesses. On an access to `x`, every sketch
//! that has already seen `x` does **not** grow — so the newest non-growing
//! sketch brackets `x`'s reuse window, and its cardinality *is* (an
//! estimate of) the stack distance. Each sketch costs a few hundred bytes
//! regardless of how many keys it has absorbed, and adjacent sketches whose
//! counts converge are pruned, so the whole structure is sublinear in both
//! stream length and working-set size.
//!
//! Accuracy is the loosest of the three estimators (HLL noise plus the
//! downsampling quantizes distances) but the memory is the smallest — the
//! OSDI paper processes multi-week enterprise traces in megabytes.
//!
//! # Example
//!
//! ```
//! use bandana_trace::counterstacks::CounterStacks;
//!
//! let mut cs = CounterStacks::new(64, 10);
//! for i in 0..20_000u64 {
//!     cs.access(i % 128);
//! }
//! assert!(cs.hit_rate_at(256) > 0.9); // working set fits
//! assert!(cs.hit_rate_at(16) < 0.4);  // loop larger than cache thrashes
//! ```

use std::collections::BTreeMap;

/// 64-bit mix (splitmix64 finalizer).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A from-scratch HyperLogLog cardinality sketch over `u64` keys.
///
/// # Example
///
/// ```
/// use bandana_trace::counterstacks::HyperLogLog;
///
/// let mut hll = HyperLogLog::new(10); // 1024 registers, ~3% error
/// for k in 0..50_000u64 {
///     hll.insert(k);
/// }
/// let est = hll.count();
/// assert!((est - 50_000.0).abs() / 50_000.0 < 0.1, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u8,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` one-byte registers.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= precision <= 16`.
    pub fn new(precision: u8) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16, got {precision}");
        HyperLogLog { registers: vec![0; 1 << precision], precision }
    }

    /// Absorbs one key (idempotent).
    pub fn insert(&mut self, key: u64) {
        let h = mix64(key);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank = position of the first 1-bit in the remaining bits, 1-based.
        let rest = h << self.precision;
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct keys inserted.
    pub fn count(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are
        // mostly empty.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Bytes of state held.
    pub fn size_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// One live counter: the sketch plus its count at the previous interval
/// boundary.
#[derive(Debug, Clone)]
struct Counter {
    sketch: HyperLogLog,
    last_count: f64,
}

/// Streaming Counter Stacks MRC estimator.
#[derive(Debug, Clone)]
pub struct CounterStacks {
    counters: Vec<Counter>,
    downsample: usize,
    precision: u8,
    /// Accesses buffered until the current interval completes.
    pending: Vec<u64>,
    /// Estimated-distance histogram: distance → weight.
    histogram: BTreeMap<u64, f64>,
    compulsory: f64,
    total: u64,
    /// Prune an older counter when its count is within this fraction of
    /// its newer neighbour.
    prune_fraction: f64,
}

impl CounterStacks {
    /// Creates an estimator starting a new sketch every `downsample`
    /// accesses, each with `2^precision` registers.
    ///
    /// # Panics
    ///
    /// Panics if `downsample` is zero or `precision` is outside `4..=16`.
    pub fn new(downsample: usize, precision: u8) -> Self {
        assert!(downsample > 0, "downsample must be non-zero");
        assert!((4..=16).contains(&precision), "precision must be in 4..=16, got {precision}");
        CounterStacks {
            counters: Vec::new(),
            downsample,
            precision,
            pending: Vec::new(),
            histogram: BTreeMap::new(),
            compulsory: 0.0,
            total: 0,
            prune_fraction: 0.02,
        }
    }

    /// Number of live sketches (memory is this × sketch size).
    pub fn live_counters(&self) -> usize {
        self.counters.len()
    }

    /// Total bytes held by the sketches.
    pub fn size_bytes(&self) -> usize {
        self.counters.iter().map(|c| c.sketch.size_bytes()).sum()
    }

    /// Total accesses processed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Processes one access. Distances are attributed at interval
    /// granularity: the access is buffered until `downsample` accesses have
    /// arrived, then the whole interval is folded into the counter stack.
    pub fn access(&mut self, key: u64) {
        self.total += 1;
        self.pending.push(key);
        if self.pending.len() == self.downsample {
            self.flush_interval();
        }
    }

    /// Folds the buffered interval into the stack (the OSDI algorithm at
    /// interval granularity).
    ///
    /// Each counter's growth over the interval, `Δ_i`, counts the
    /// interval's distinct keys *not* seen since counter `i` started.
    /// Counters are ordered oldest→newest, so `Δ` is non-decreasing, and
    /// the difference `Δ_{i+1} − Δ_i` is the number of interval accesses
    /// whose previous occurrence falls between the two counters' start
    /// times — i.e. whose stack distance is ≈ the *newer* counter's
    /// cardinality `c_{i+1}`. `Δ_oldest` is the compulsory estimate, and
    /// accesses repeated *within* the interval get the newest counter's
    /// (small) cardinality.
    fn flush_interval(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // A fresh counter opens at every interval boundary.
        self.counters.push(Counter { sketch: HyperLogLog::new(self.precision), last_count: 0.0 });

        let batch = std::mem::take(&mut self.pending);
        let mut deltas = Vec::with_capacity(self.counters.len());
        let mut counts = Vec::with_capacity(self.counters.len());
        for c in self.counters.iter_mut() {
            for &k in &batch {
                c.sketch.insert(k);
            }
            let now = c.sketch.count();
            deltas.push((now - c.last_count).max(0.0));
            counts.push(now);
            c.last_count = now;
        }

        let n = self.counters.len();
        // Deltas are non-decreasing oldest→newest in exact arithmetic;
        // enforce it to strip HLL noise before differencing (otherwise the
        // max(0) clamp below rectifies noise into spurious hits).
        for i in 1..n {
            if deltas[i] < deltas[i - 1] {
                deltas[i] = deltas[i - 1];
            }
        }
        // Within-interval repeats: accesses beyond the interval's distinct
        // set re-reference something this interval already touched.
        let distinct_in_batch = deltas[n - 1].min(batch.len() as f64);
        let repeats = (batch.len() as f64 - distinct_in_batch).max(0.0);
        if repeats > 0.0 {
            let d = counts[n - 1].max(1.0).round() as u64;
            *self.histogram.entry(d).or_insert(0.0) += repeats;
        }
        // First-order differences between adjacent counters, with a
        // half-key noise floor.
        for i in 0..n - 1 {
            let caught = deltas[i + 1] - deltas[i];
            if caught > 0.5 {
                let d = counts[i + 1].max(1.0).round() as u64;
                *self.histogram.entry(d).or_insert(0.0) += caught;
            }
        }
        // Whatever even the oldest counter had never seen is compulsory.
        self.compulsory += deltas[0];
        self.prune();
    }

    /// Processes a whole sequence.
    pub fn access_all<I: IntoIterator<Item = u64>>(&mut self, keys: I) {
        for k in keys {
            self.access(k);
        }
    }

    /// Drops counters that have converged with their newer neighbour: once
    /// `c_{i}` and `c_{i+1}` report (nearly) the same cardinality they
    /// will answer every future query identically, so the older one is
    /// redundant. This is what keeps the stack sublinear on long streams.
    fn prune(&mut self) {
        let frac = self.prune_fraction;
        let mut i = 0;
        while i + 1 < self.counters.len() {
            let older = self.counters[i].last_count;
            let newer = self.counters[i + 1].last_count;
            if older > 0.0 && (older - newer).abs() <= frac * older {
                self.counters.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Flushes a partial interval (call after the last access if the
    /// stream length is not a multiple of `downsample`).
    pub fn finish(&mut self) {
        self.flush_interval();
    }

    /// Estimated LRU hit rate at `capacity` entries.
    ///
    /// Accesses still buffered in an incomplete interval are not yet
    /// attributed; call [`CounterStacks::finish`] first for exact totals.
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        let attributed = self.total - self.pending.len() as u64;
        if attributed == 0 {
            return 0.0;
        }
        let hits: f64 = self.histogram.range(..=(capacity as u64)).map(|(_, w)| *w).sum();
        (hits / attributed as f64).clamp(0.0, 1.0)
    }

    /// The estimated hit-rate curve at the given capacities.
    pub fn hit_rate_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities.iter().map(|&c| (c, self.hit_rate_at(c))).collect()
    }

    /// Estimated compulsory-miss rate (over attributed accesses).
    pub fn compulsory_miss_rate(&self) -> f64 {
        let attributed = self.total - self.pending.len() as u64;
        if attributed == 0 {
            0.0
        } else {
            (self.compulsory / attributed as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shards::mean_absolute_error;
    use crate::stack::StackDistances;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                ((u * u) * universe as f64) as u64
            })
            .collect()
    }

    #[test]
    fn hll_estimates_cardinality() {
        for &n in &[100u64, 1_000, 20_000] {
            let mut hll = HyperLogLog::new(10);
            for k in 0..n {
                hll.insert(k);
            }
            let est = hll.count();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.12, "n={n}: estimate {est} off by {err:.3}");
        }
    }

    #[test]
    fn hll_is_idempotent() {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for k in 0..500u64 {
            a.insert(k);
            b.insert(k);
            b.insert(k); // duplicates must not inflate the count
        }
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn cyclic_stream_has_knee() {
        let mut cs = CounterStacks::new(32, 10);
        for i in 0..30_000u64 {
            cs.access(i % 100);
        }
        assert!(cs.hit_rate_at(300) > 0.9, "got {}", cs.hit_rate_at(300));
        assert!(cs.hit_rate_at(10) < 0.4, "got {}", cs.hit_rate_at(10));
    }

    #[test]
    fn tracks_exact_curve_loosely() {
        let keys = skewed_stream(40_000, 2_000, 1);
        let caps = [50usize, 100, 250, 500, 1000, 2000];
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        let exact = sd.hit_rate_curve(&caps);
        let mut cs = CounterStacks::new(64, 11);
        cs.access_all(keys.iter().copied());
        cs.finish();
        let est = cs.hit_rate_curve(&caps);
        let mae = mean_absolute_error(&exact, &est);
        assert!(mae < 0.15, "Counter Stacks MAE {mae} too large");
    }

    #[test]
    fn pruning_bounds_counter_count() {
        let keys = skewed_stream(50_000, 1_000, 2);
        let mut cs = CounterStacks::new(100, 8);
        cs.access_all(keys.iter().copied());
        // Without pruning there would be 500 counters.
        assert!(
            cs.live_counters() < 200,
            "pruning should collapse converged counters, kept {}",
            cs.live_counters()
        );
        assert!(cs.size_bytes() < 200 * 256);
    }

    #[test]
    fn hit_rate_monotone() {
        let keys = skewed_stream(10_000, 500, 3);
        let mut cs = CounterStacks::new(50, 9);
        cs.access_all(keys.iter().copied());
        let mut prev = 0.0;
        for c in [1usize, 10, 50, 200, 1000] {
            let h = cs.hit_rate_at(c);
            assert!(h + 1e-12 >= prev);
            prev = h;
        }
    }

    #[test]
    fn all_unique_is_compulsory() {
        // Interval size must dominate the sketches' absolute error (the
        // regime Counter Stacks is designed for: intervals of ~1M accesses
        // against ~1% sketches). 200-key intervals with 2^14 registers
        // (±0.8%) keep per-interval noise well under the interval size.
        let mut cs = CounterStacks::new(200, 14);
        cs.access_all(0..5_000u64);
        cs.finish();
        assert!(cs.compulsory_miss_rate() > 0.9, "got {}", cs.compulsory_miss_rate());
        assert!(cs.hit_rate_at(1_000_000) < 0.1, "got {}", cs.hit_rate_at(1_000_000));
    }

    #[test]
    fn empty_reports_zero() {
        let cs = CounterStacks::new(10, 8);
        assert_eq!(cs.hit_rate_at(100), 0.0);
        assert_eq!(cs.total_accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "downsample must be non-zero")]
    fn zero_downsample_rejected() {
        let _ = CounterStacks::new(0, 8);
    }
}
