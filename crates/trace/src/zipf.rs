//! Zipf-distributed sampling by rejection inversion.
//!
//! Access popularity in the Facebook workloads is heavy-tailed (paper
//! Figure 4: some vectors in table 2 are read hundreds of thousands of times
//! while table 7 has none above a thousand). A Zipf law over ranks is the
//! standard generative model for such histograms; this module implements the
//! Hörmann–Derflinger rejection-inversion sampler (the same algorithm used by
//! Apache Commons and `rand_distr`), which samples in O(1) expected time for
//! any exponent `s > 0` and domain size `n`.

use rand::Rng;

/// A Zipf(n, s) sampler producing ranks in `0..n` (0 is the most popular).
///
/// Probability of rank `k` (1-based) is proportional to `1 / k^s`. An
/// exponent of `0` degenerates to the uniform distribution.
///
/// # Example
///
/// ```
/// use bandana_trace::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "domain size must be non-zero");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
        let h_integral_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, s);
        let threshold =
            2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Zipf { n, s, h_integral_x1, h_integral_n, threshold }
    }

    /// The domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// H(x) = ∫ h, with h(x) = x^-s: the integral used for inversion.
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - s) * log_x) * log_x
    }

    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    fn h_integral_inverse(x: f64, s: f64) -> f64 {
        let mut t = x * (1.0 - s);
        if t < -1.0 {
            // Numerical guard: t must stay above -1 for the formula below.
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.s == 0.0 {
            return rng.gen_range(0..self.n);
        }
        loop {
            let u: f64 =
                self.h_integral_n + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.s);
            let mut k64 = x.round();
            if k64 < 1.0 {
                k64 = 1.0;
            } else if k64 > self.n as f64 {
                k64 = self.n as f64;
            }
            if k64 - x <= self.threshold
                || u >= Self::h_integral(k64 + 0.5, self.s) - Self::h(k64, self.s)
            {
                return k64 as u64 - 1;
            }
        }
    }
}

/// helper1(x) = ln(1+x)/x, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// helper2(x) = (exp(x)-1)/x, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn frequencies(n: u64, s: f64, samples: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = ChaCha12Rng::seed_from_u64(123);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(10, 1.2);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn exponent_one_matches_harmonic_law() {
        // P(k) = (1/k) / H_n; check the head empirically.
        let n = 100u64;
        let counts = frequencies(n, 1.0, 200_000);
        let h_n: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        for k in [1usize, 2, 5, 10] {
            let expected = 200_000.0 / (k as f64 * h_n);
            let got = counts[k - 1] as f64;
            assert!(
                (got - expected).abs() / expected < 0.1,
                "rank {k}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn exponent_two_is_steeper_than_one() {
        let head1: u64 = frequencies(1000, 1.0, 100_000)[..10].iter().sum();
        let head2: u64 = frequencies(1000, 2.0, 100_000)[..10].iter().sum();
        assert!(head2 > head1, "s=2 head {head2} should exceed s=1 head {head1}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let counts = frequencies(50, 0.0, 100_000);
        let expected = 100_000.0 / 50.0;
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.2,
                "rank {k}: count {c} too far from uniform {expected}"
            );
        }
    }

    #[test]
    fn small_fractional_exponent_works() {
        let counts = frequencies(100, 0.4, 100_000);
        // Mildly skewed: rank 0 more popular than rank 99, but not extremely.
        assert!(counts[0] > counts[99]);
        assert!(counts[0] < 20 * counts[99].max(1));
    }

    #[test]
    fn single_element_domain() {
        let zipf = Zipf::new(1, 1.5);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(1000, 0.9);
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn large_domain_does_not_overflow() {
        let zipf = Zipf::new(u32::MAX as u64, 1.01);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < u32::MAX as u64);
        }
    }

    #[test]
    #[should_panic(expected = "domain size must be non-zero")]
    fn zero_domain_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be finite and non-negative")]
    fn negative_exponent_rejected() {
        Zipf::new(10, -1.0);
    }

    #[test]
    fn helpers_stable_near_zero() {
        assert!((helper1(1e-12) - 1.0).abs() < 1e-9);
        assert!((helper2(1e-12) - 1.0).abs() < 1e-9);
        assert!((helper1(0.5) - (1.5f64.ln() / 0.5)).abs() < 1e-12);
        assert!((helper2(0.5) - (0.5f64.exp_m1() / 0.5)).abs() < 1e-12);
    }
}
