//! Workload specifications: per-table parameters and the paper's Table 1
//! model.

use serde::{Deserialize, Serialize};

/// Generative parameters for one embedding table's access pattern.
///
/// The popularity model is hierarchical: requests pick a few *topics* from a
/// Zipf distribution over topics, then pick vectors from those topics with an
/// in-topic Zipf; a `noise` fraction of lookups is uniform over the whole
/// table. Tables with high `topic_skew`/`vector_skew` and low `noise` are
/// highly cacheable (paper tables 1–2); near-uniform tables with large id
/// spaces reproduce the compulsory-miss-bound table 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Number of embedding vectors (columns) in the table.
    pub num_vectors: u32,
    /// Mean number of lookups a request performs in this table
    /// (Table 1 "avg request lookups": 17.68–92.75).
    pub mean_lookups: f64,
    /// Fraction of all lookups that go to this table (Table 1 "% of total").
    pub lookup_share: f64,
    /// Number of latent topics (co-access clusters).
    pub num_topics: u32,
    /// Topics a single request draws from.
    pub topics_per_request: u32,
    /// Zipf exponent over topic popularity.
    pub topic_skew: f64,
    /// Zipf exponent over vector popularity within a topic.
    pub vector_skew: f64,
    /// Probability that a lookup ignores topics and picks uniformly at
    /// random — the knob controlling the compulsory-miss rate.
    pub noise: f64,
}

impl TableSpec {
    /// A small, moderately skewed table useful in unit tests.
    pub fn test_small(num_vectors: u32) -> Self {
        TableSpec {
            num_vectors,
            mean_lookups: 8.0,
            lookup_share: 0.5,
            num_topics: (num_vectors / 64).max(1),
            topics_per_request: 2,
            topic_skew: 0.8,
            vector_skew: 0.7,
            noise: 0.05,
        }
    }

    /// Expected table size in bytes given a vector payload size.
    pub fn size_bytes(&self, vector_bytes: usize) -> u64 {
        self.num_vectors as u64 * vector_bytes as u64
    }
}

/// A full model: the set of embedding tables plus vector geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Per-table generative parameters.
    pub tables: Vec<TableSpec>,
    /// Embedding dimension (elements per vector).
    pub dim: usize,
    /// Bytes per element (4 for the f32 vectors we synthesize; the paper's
    /// production model uses 64 × fp16 = 128 B, which equals 32 × f32).
    pub element_bytes: usize,
}

impl ModelSpec {
    /// The paper's 8-table user-embedding model (Table 1), scaled down by
    /// `scale` in table size. Trace lengths scale separately — pass shorter
    /// traces to the generator.
    ///
    /// Table 1 of the paper:
    ///
    /// | table | vectors | avg lookups | share | compulsory misses |
    /// |-------|---------|-------------|-------|-------------------|
    /// | 1     | 10 M    | 34.83       |  9.44% |  4.16% |
    /// | 2     | 10 M    | 92.75       | 25.14% |  2.19% |
    /// | 3     | 20 M    | 26.67       |  7.23% | 24.29% |
    /// | 4     | 20 M    | 25.14       |  6.82% | 19.46% |
    /// | 5     | 10 M    | 30.22       |  8.19% | 22.68% |
    /// | 6     | 10 M    | 53.50       | 14.50% | 26.94% |
    /// | 7     | 10 M    | 54.35       | 14.73% | 11.36% |
    /// | 8     | 20 M    | 17.68       |  4.79% | 60.83% |
    ///
    /// The skew/noise parameters below were calibrated (see EXPERIMENTS.md)
    /// so that the *ordering* of cacheability matches the paper: tables 1–2
    /// have low compulsory-miss rates and long LRU-friendly tails, table 8 is
    /// dominated by compulsory misses, and the rest sit in between.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn paper_scaled(scale: u32) -> Self {
        assert!(scale > 0, "scale must be non-zero");
        let m = |millions: u64| ((millions * 1_000_000) / scale as u64).max(1024) as u32;
        let table = |num_vectors: u32,
                     mean_lookups: f64,
                     lookup_share: f64,
                     topic_skew: f64,
                     vector_skew: f64,
                     noise: f64| TableSpec {
            num_vectors,
            mean_lookups,
            lookup_share,
            num_topics: (num_vectors / 256).max(8),
            topics_per_request: 3,
            topic_skew,
            vector_skew,
            noise,
        };
        ModelSpec {
            tables: vec![
                // Highly cacheable: strong skew, little noise.
                table(m(10), 34.83, 0.0944, 1.05, 0.90, 0.02),
                table(m(10), 92.75, 0.2514, 1.10, 0.95, 0.01),
                // Mid-tier cacheability.
                table(m(20), 26.67, 0.0723, 0.75, 0.60, 0.25),
                table(m(20), 25.14, 0.0682, 0.80, 0.65, 0.20),
                table(m(10), 30.22, 0.0819, 0.75, 0.60, 0.22),
                table(m(10), 53.50, 0.1450, 0.70, 0.55, 0.25),
                // Cacheable but with a flat histogram (no ultra-hot head).
                table(m(10), 54.35, 0.1473, 0.85, 0.35, 0.10),
                // Compulsory-miss bound: large, nearly uniform.
                table(m(20), 17.68, 0.0479, 0.30, 0.20, 0.60),
            ],
            dim: 32,
            element_bytes: 4,
        }
    }

    /// A compact two-table model for unit tests.
    pub fn test_small() -> Self {
        ModelSpec {
            tables: vec![TableSpec::test_small(2048), TableSpec::test_small(4096)],
            dim: 8,
            element_bytes: 4,
        }
    }

    /// Bytes per embedding vector.
    pub fn vector_bytes(&self) -> usize {
        self.dim * self.element_bytes
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Returns a copy with every table's vector payload resized to
    /// `vector_bytes` (dimension is adjusted; element size stays f32). Used
    /// by the Figure 16 sweep over 64/128/256-byte vectors.
    ///
    /// # Panics
    ///
    /// Panics if `vector_bytes` is not a positive multiple of the element
    /// size.
    pub fn with_vector_bytes(mut self, vector_bytes: usize) -> Self {
        assert!(
            vector_bytes > 0 && vector_bytes.is_multiple_of(self.element_bytes),
            "vector bytes must be a positive multiple of element bytes"
        );
        self.dim = vector_bytes / self.element_bytes;
        self
    }

    /// Validates internal consistency (shares roughly sum to 1, non-empty).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("model has no tables".to_string());
        }
        if self.dim == 0 || self.element_bytes == 0 {
            return Err("vector geometry must be non-zero".to_string());
        }
        let share: f64 = self.tables.iter().map(|t| t.lookup_share).sum();
        if !(0.5..=1.5).contains(&share) {
            return Err(format!("lookup shares sum to {share:.3}, expected ~1.0"));
        }
        for (i, t) in self.tables.iter().enumerate() {
            if t.num_vectors == 0 {
                return Err(format!("table {i} has no vectors"));
            }
            if t.mean_lookups <= 0.0 {
                return Err(format!("table {i} has non-positive mean lookups"));
            }
            if !(0.0..=1.0).contains(&t.noise) {
                return Err(format!("table {i} noise outside [0,1]"));
            }
            if t.num_topics == 0 || t.topics_per_request == 0 {
                return Err(format!("table {i} topic configuration is degenerate"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_table1_shape() {
        let spec = ModelSpec::paper_scaled(1000);
        assert_eq!(spec.tables.len(), 8);
        spec.validate().unwrap();
        // 10M/1000 = 10_000 vectors, 20M/1000 = 20_000.
        assert_eq!(spec.tables[0].num_vectors, 10_000);
        assert_eq!(spec.tables[2].num_vectors, 20_000);
        // Vector payload is 128 B like the paper's production model.
        assert_eq!(spec.vector_bytes(), 128);
        // Table 2 dominates lookups; table 8 is the smallest share.
        let shares: Vec<f64> = spec.tables.iter().map(|t| t.lookup_share).collect();
        let max_idx =
            shares.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(max_idx, 1);
        // Noise ordering: table 8 noisiest, tables 1-2 cleanest.
        assert!(spec.tables[7].noise > spec.tables[2].noise);
        assert!(spec.tables[1].noise < spec.tables[2].noise);
    }

    #[test]
    fn scale_floors_at_1024_vectors() {
        let spec = ModelSpec::paper_scaled(1_000_000);
        for t in &spec.tables {
            assert!(t.num_vectors >= 1024);
        }
    }

    #[test]
    fn with_vector_bytes_adjusts_dim() {
        let spec = ModelSpec::paper_scaled(1000).with_vector_bytes(64);
        assert_eq!(spec.dim, 16);
        assert_eq!(spec.vector_bytes(), 64);
        let spec = spec.with_vector_bytes(256);
        assert_eq!(spec.dim, 64);
    }

    #[test]
    #[should_panic(expected = "multiple of element bytes")]
    fn odd_vector_bytes_rejected() {
        let _ = ModelSpec::paper_scaled(1000).with_vector_bytes(102);
    }

    #[test]
    fn validation_catches_bad_shares() {
        let mut spec = ModelSpec::test_small();
        spec.tables[0].lookup_share = 10.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_catches_empty_tables() {
        let spec = ModelSpec { tables: vec![], dim: 4, element_bytes: 4 };
        assert!(spec.validate().is_err());
        let mut spec = ModelSpec::test_small();
        spec.tables[0].lookup_share = 0.5;
        spec.tables[1].lookup_share = 0.5;
        spec.tables[0].num_vectors = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn table_size_bytes() {
        let t = TableSpec::test_small(1000);
        assert_eq!(t.size_bytes(128), 128_000);
    }

    #[test]
    #[should_panic(expected = "scale must be non-zero")]
    fn zero_scale_rejected() {
        ModelSpec::paper_scaled(0);
    }
}
