//! Property-based tests for the trace substrate.

use bandana_trace::{hit_rate_curve, StackDistances, Zipf};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Naive O(n²) stack-distance oracle.
fn naive_distances(keys: &[u64]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(keys.len());
    for (i, &k) in keys.iter().enumerate() {
        match keys[..i].iter().rposition(|&x| x == k) {
            None => out.push(None),
            Some(j) => {
                let mut distinct: Vec<u64> = keys[j + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                out.push(Some(distinct.len() as u64 + 1));
            }
        }
    }
    out
}

proptest! {
    /// The Fenwick-tree stack distances match the quadratic oracle on any
    /// key sequence.
    #[test]
    fn stack_distances_match_oracle(keys in proptest::collection::vec(0u64..30, 1..300)) {
        let expected = naive_distances(&keys);
        let mut sd = StackDistances::with_capacity(keys.len());
        let got: Vec<Option<u64>> = keys.iter().map(|&k| sd.access(k)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Compulsory misses equal the number of distinct keys.
    #[test]
    fn compulsory_misses_equal_distinct_keys(keys in proptest::collection::vec(0u64..50, 1..400)) {
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(sd.compulsory_misses() as usize, distinct.len());
    }

    /// Hit-rate curves are monotone in cache size and bounded by
    /// 1 − compulsory rate.
    #[test]
    fn hit_rate_curves_monotone(keys in proptest::collection::vec(0u64..40, 2..300)) {
        let sizes: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
        let curve = hit_rate_curve(keys.iter().copied(), &sizes);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let ceiling = 1.0 - distinct.len() as f64 / keys.len() as f64;
        for &(_, hr) in &curve {
            prop_assert!(hr <= ceiling + 1e-12);
        }
    }

    /// Zipf samples stay in range for arbitrary domain/exponent.
    #[test]
    fn zipf_in_range(n in 1u64..10_000, s in 0.0f64..3.0, seed in any::<u64>()) {
        let zipf = Zipf::new(n, s);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    /// An LRU of capacity >= distinct keys only misses compulsorily: the
    /// curve's tail equals 1 - compulsory rate exactly.
    #[test]
    fn infinite_cache_hits_everything_but_compulsory(
        keys in proptest::collection::vec(0u64..20, 1..200)
    ) {
        let mut sd = StackDistances::with_capacity(keys.len());
        sd.access_all(keys.iter().copied());
        let hr = sd.hit_rate_at(keys.len());
        let expected = 1.0 - sd.compulsory_miss_rate();
        prop_assert!((hr - expected).abs() < 1e-12);
    }
}

mod estimator_props {
    use super::*;
    use bandana_trace::{AetModel, DriftConfig, DriftingTraceGenerator, ModelSpec, Shards};

    proptest! {
        /// SHARDS at rate 1.0 equals the exact curve for any stream.
        #[test]
        fn shards_rate_one_is_exact(
            keys in proptest::collection::vec(0u64..64, 1..400),
            salt in any::<u64>(),
        ) {
            let mut sd = StackDistances::with_capacity(keys.len());
            sd.access_all(keys.iter().copied());
            let mut shards = Shards::new(1.0, salt);
            shards.access_all(keys.iter().copied());
            for cap in [1usize, 2, 5, 10, 30, 64] {
                let exact = sd.hit_rate_at(cap);
                let est = shards.hit_rate_at(cap);
                prop_assert!((exact - est).abs() < 1e-9, "cap {}: {} vs {}", cap, exact, est);
            }
        }

        /// SHARDS estimates are valid probabilities and monotone in the
        /// cache size, at any sampling rate.
        #[test]
        fn shards_estimates_are_monotone_probabilities(
            keys in proptest::collection::vec(0u64..256, 1..500),
            rate in 0.05f64..1.0,
            salt in any::<u64>(),
        ) {
            let mut shards = Shards::new(rate, salt);
            shards.access_all(keys.iter().copied());
            let mut prev = 0.0f64;
            for cap in [1usize, 4, 16, 64, 256, 1024] {
                let h = shards.hit_rate_at(cap);
                prop_assert!((0.0..=1.0).contains(&h));
                prop_assert!(h + 1e-12 >= prev);
                prev = h;
            }
        }

        /// SHARDS-max never tracks more keys than its bound, whatever the
        /// stream.
        #[test]
        fn shards_max_respects_bound(
            keys in proptest::collection::vec(any::<u64>(), 1..600),
            max in 1usize..64,
        ) {
            let mut shards = Shards::fixed_size(max, 1);
            shards.access_all(keys.iter().copied());
            prop_assert!(shards.tracked_keys() <= max);
        }

        /// AET miss rates are monotone non-increasing in capacity and land
        /// in [0, 1]; at infinite capacity only compulsory misses remain.
        #[test]
        fn aet_miss_rates_behave(
            keys in proptest::collection::vec(0u64..64, 1..400),
        ) {
            let mut aet = AetModel::new();
            aet.access_all(keys.iter().copied());
            let mut prev = 1.0f64;
            for cap in [1usize, 2, 4, 8, 16, 32, 64, 100_000] {
                let m = aet.miss_rate_at(cap);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&m));
                prop_assert!(m <= prev + 1e-9);
                prev = m;
            }
            let cold = aet.cold_accesses() as f64 / keys.len() as f64;
            prop_assert!((aet.miss_rate_at(100_000) - cold).abs() < 1e-9);
        }

        /// The drift remap is a bijection at every epoch shift: a drifted
        /// trace references each id space without collisions biasing the
        /// marginals (checked via in-range + shape preservation elsewhere).
        #[test]
        fn drift_keeps_ids_in_range(
            seed in any::<u64>(),
            rotate in 0.0f64..1.0,
        ) {
            let spec = ModelSpec::test_small();
            let mut g = DriftingTraceGenerator::new(
                &spec,
                seed,
                DriftConfig { requests_per_epoch: 20, rotate_fraction: rotate },
            );
            let trace = g.generate_requests(60); // 3 epochs
            for (t, ts) in spec.tables.iter().enumerate() {
                for id in trace.table_stream(t) {
                    prop_assert!(id < ts.num_vectors);
                }
            }
        }
    }
}
