//! Property-based tests for the NVM simulator.

use nvm_sim::{BlockDevice, Histogram, NvmConfig, NvmDevice, OnlineStats, QueueModel};
use proptest::prelude::*;

proptest! {
    /// Histogram percentiles are monotone in p and bracket the sample range
    /// within the bucket resolution.
    #[test]
    fn histogram_percentiles_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v + 1e-12 >= prev, "percentile not monotone at p{p}");
            prev = v;
        }
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        // Bucket resolution is ~3%; allow 10% slack.
        prop_assert!(h.percentile(100.0) <= max * 1.1 + 1e-9);
    }

    /// Online stats merging is order-independent and matches the direct
    /// computation.
    #[test]
    fn online_stats_merge_equivalence(
        a in proptest::collection::vec(-1e3f64..1e3, 1..100),
        b in proptest::collection::vec(-1e3f64..1e3, 1..100)
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            whole.record(x);
        }
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for &x in &a { sa.record(x); }
        for &x in &b { sb.record(x); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        prop_assert!((sa.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((sa.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Device reads always return the last written content, and counters
    /// track every operation, under arbitrary write/read interleavings.
    #[test]
    fn device_read_your_writes(
        ops in proptest::collection::vec((0u64..16, 0u8..=255), 1..200)
    ) {
        let mut dev = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(16));
        let mut shadow: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let mut writes = 0u64;
        let mut reads = 0u64;
        for (block, fill) in ops {
            if fill % 2 == 0 {
                let data = vec![fill; dev.block_size()];
                dev.write_block(block, &data).unwrap();
                shadow.insert(block, fill);
                writes += 1;
            } else {
                let got = dev.read_block(block).unwrap();
                let expected = shadow.get(&block).copied().unwrap_or(0);
                prop_assert!(got.iter().all(|&b| b == expected));
                reads += 1;
            }
        }
        prop_assert_eq!(dev.counters().writes, writes);
        prop_assert_eq!(dev.counters().reads, reads);
        prop_assert_eq!(dev.endurance().bytes_written(), writes * 4096);
    }

    /// The analytic queue model is self-consistent: bandwidth = qd × block /
    /// latency (capped), latency monotone, P99 above mean.
    #[test]
    fn queue_model_consistency(qd in 1u32..64) {
        let m = QueueModel::optane();
        let lat = m.mean_latency(qd);
        let bw = m.bandwidth(qd);
        let littles = qd as f64 * m.block_size as f64 / lat;
        prop_assert!((bw - littles.min(m.max_bandwidth_bps)).abs() / bw < 1e-9);
        prop_assert!(m.p99_latency(qd) > lat);
        if qd > 1 {
            prop_assert!(lat >= m.mean_latency(qd - 1) - 1e-12);
        }
    }

    /// Open-loop P99 (and mean) under the queue model are monotonically
    /// non-decreasing in offered load — the regression contract behind the
    /// serving sweep's latency-vs-load shape.
    #[test]
    fn open_loop_tail_latency_monotone_in_offered_load(
        a in 0.0f64..3.0,
        b in 0.0f64..3.0,
    ) {
        let m = QueueModel::optane();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let lo_bps = lo * m.max_bandwidth_bps;
        let hi_bps = hi * m.max_bandwidth_bps;
        prop_assert!(
            m.open_loop_p99_latency(hi_bps) + 1e-15 >= m.open_loop_p99_latency(lo_bps),
            "p99 decreased from load {lo} to {hi}"
        );
        prop_assert!(
            m.open_loop_mean_latency(hi_bps) + 1e-15 >= m.open_loop_mean_latency(lo_bps),
            "mean decreased from load {lo} to {hi}"
        );
    }

    /// Under arbitrary submit/complete interleavings the depth tracker's
    /// queue depth never goes negative, never exceeds its bound, and the
    /// accounting identity depth = submitted - completed-or-dropped holds.
    #[test]
    fn depth_tracker_never_goes_negative(
        bound in 1u32..16,
        ops in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 1..300),
    ) {
        let mut t = nvm_sim::QueueDepthTracker::new(QueueModel::optane(), bound);
        let mut busy = 0.0f64;
        for submit in ops {
            if submit {
                busy += t.submit();
            } else {
                busy += t.complete();
            }
            let s = t.stats();
            prop_assert!(t.depth() <= bound, "depth {} above bound {bound}", t.depth());
            prop_assert!(s.completed <= s.submitted);
            prop_assert_eq!(u64::from(t.depth()), s.submitted - s.completed);
        }
        busy += t.drain();
        prop_assert_eq!(t.depth(), 0);
        let s = t.stats();
        prop_assert_eq!(s.submitted, s.completed);
        prop_assert!((busy - s.busy_s).abs() < 1e-12, "clock drifted: {} vs {}", busy, s.busy_s);
        // Every completed read is charged at least the saturated per-read
        // service time and at most the QD1 latency.
        let per_read_floor = QueueModel::optane().mean_latency(bound) / f64::from(bound);
        let per_read_ceil = QueueModel::optane().mean_latency(1);
        if s.completed > 0 {
            let per_read = s.busy_s / s.completed as f64;
            prop_assert!(per_read >= per_read_floor - 1e-15);
            prop_assert!(per_read <= per_read_ceil + 1e-15);
        }
    }
    /// A rebased dense shard is indistinguishable from the
    /// parent-addressed carve it came from: every resident block reads the
    /// same bytes at its remapped address, non-carved blocks have no dense
    /// address, writes round-trip, and the I/O counters agree op for op.
    #[test]
    fn rebase_preserves_bytes_addresses_and_counters(
        slots in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 8),
        lens in proptest::collection::vec(1u64..=8, 8),
        ops in proptest::collection::vec((0u64..64, 0u8..=255), 1..100),
    ) {
        // Parent: 64 blocks with distinctive contents; carve up to eight
        // disjoint ranges, one per 8-block slot.
        let mut parent = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(64));
        for b in 0..64u64 {
            parent.write_block(b, &vec![b as u8; parent.block_size()]).unwrap();
        }
        let ranges: Vec<(u64, u64)> = slots
            .iter()
            .zip(&lens)
            .enumerate()
            .filter(|(_, (&on, _))| on)
            .map(|(slot, (_, &len))| (slot as u64 * 8, len))
            .collect();
        let mut carve = nvm_sim::SparseDevice::carve(&parent, &ranges).unwrap();
        let mut dense = nvm_sim::SparseDevice::carve(&parent, &ranges).unwrap().rebase();
        prop_assert_eq!(dense.capacity_blocks(), carve.resident_blocks());

        for b in 0..64u64 {
            let resident = ranges.iter().any(|&(s, l)| (s..s + l).contains(&b));
            match dense.remap(b) {
                Some(nb) => {
                    prop_assert!(resident, "block {} remapped but not carved", b);
                    prop_assert_eq!(carve.read_block(b).unwrap(), dense.read_block(nb).unwrap());
                }
                None => prop_assert!(!resident, "carved block {} has no dense address", b),
            }
        }
        prop_assert_eq!(carve.counters(), dense.counters());

        // Random reads and writes behave identically through both views.
        for (block, fill) in ops {
            let Some(nb) = dense.remap(block) else {
                prop_assert!(carve.read_block(block).is_err());
                continue;
            };
            if fill % 2 == 0 {
                let data = vec![fill; carve.block_size()];
                carve.write_block(block, &data).unwrap();
                dense.write_block(nb, &data).unwrap();
            } else {
                prop_assert_eq!(carve.read_block(block).unwrap(), dense.read_block(nb).unwrap());
            }
        }
        prop_assert_eq!(carve.counters(), dense.counters());
        // Per-shard endurance saw exactly the shard's writes.
        prop_assert_eq!(
            dense.endurance().bytes_written(),
            dense.counters().bytes_written
        );
    }

}
