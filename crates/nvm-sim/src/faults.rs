//! Fault injection for block devices — failure testing for the layers
//! above.
//!
//! Production NVM fails: reads surface uncorrectable errors, writes fail
//! past the endurance budget (§2.2 bounds retraining frequency for exactly
//! this reason), and specific blocks go bad. [`FaultInjector`] wraps any
//! [`BlockDevice`] and injects these failures deterministically, so tests
//! can assert that the store (a) propagates errors instead of serving
//! garbage, (b) keeps serving cached vectors when the device misbehaves,
//! and (c) refuses writes on a worn-out device.
//!
//! # Example
//!
//! ```
//! use nvm_sim::{BlockDevice, FaultInjector, FaultPlan, NvmConfig, NvmDevice};
//!
//! let inner = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(8));
//! let plan = FaultPlan::new(7).with_read_error_rate(1.0);
//! let mut dev = FaultInjector::new(inner, plan);
//! assert!(dev.read_block(0).is_err());
//! assert_eq!(dev.faults_injected(), 1);
//! ```

use crate::device::{BlockDevice, IoCounters};
use crate::error::NvmError;
use std::collections::HashSet;

/// 64-bit mix used to derive per-operation fault decisions from the seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// What to inject, and when. Deterministic in the seed: the n-th operation
/// on a given plan always behaves the same way.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    read_error_rate: f64,
    write_error_rate: f64,
    bad_blocks: HashSet<u64>,
    /// Fail writes once the wrapped device has written this many bytes.
    wear_out_after_bytes: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (until configured otherwise).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            bad_blocks: HashSet::new(),
            wear_out_after_bytes: None,
        }
    }

    /// Fails this fraction of reads (uniformly, deterministically).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn with_read_error_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1], got {rate}");
        self.read_error_rate = rate;
        self
    }

    /// Fails this fraction of writes.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn with_write_error_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1], got {rate}");
        self.write_error_rate = rate;
        self
    }

    /// Marks a block as bad: every read or write of it fails.
    pub fn with_bad_block(mut self, block: u64) -> Self {
        self.bad_blocks.insert(block);
        self
    }

    /// Fails all writes after the device has absorbed this many bytes —
    /// simulates endurance exhaustion ([`NvmError::WornOut`]).
    pub fn with_wear_out_after_bytes(mut self, bytes: u64) -> Self {
        self.wear_out_after_bytes = Some(bytes);
        self
    }
}

/// A [`BlockDevice`] wrapper that injects faults per a [`FaultPlan`].
///
/// Injected failures do **not** reach the wrapped device, so its I/O
/// counters reflect only the operations that really happened.
#[derive(Debug)]
pub struct FaultInjector<D> {
    inner: D,
    plan: FaultPlan,
    op_counter: u64,
    faults_injected: u64,
    bytes_written: u64,
}

impl<D: BlockDevice> FaultInjector<D> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultInjector { inner, plan, op_counter: 0, faults_injected: 0, bytes_written: 0 }
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the fault layer.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Deterministic Bernoulli draw for the current operation.
    fn draw(&mut self, rate: f64) -> bool {
        self.op_counter += 1;
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let u = mix64(self.plan.seed ^ self.op_counter) as f64 / u64::MAX as f64;
        u < rate
    }

    fn check_read(&mut self, block: u64) -> Result<(), NvmError> {
        if self.plan.bad_blocks.contains(&block) || self.draw(self.plan.read_error_rate) {
            self.faults_injected += 1;
            return Err(NvmError::InjectedFault { block, op: "read" });
        }
        Ok(())
    }

    fn check_write(&mut self, block: u64, len: usize) -> Result<(), NvmError> {
        if let Some(limit) = self.plan.wear_out_after_bytes {
            if self.bytes_written + len as u64 > limit {
                self.faults_injected += 1;
                let capacity = self.inner.capacity_blocks() * self.inner.block_size() as u64;
                return Err(NvmError::WornOut {
                    drive_writes: self.bytes_written as f64 / capacity.max(1) as f64,
                    budget: limit as f64 / capacity.max(1) as f64,
                });
            }
        }
        if self.plan.bad_blocks.contains(&block) || self.draw(self.plan.write_error_rate) {
            self.faults_injected += 1;
            return Err(NvmError::InjectedFault { block, op: "write" });
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for FaultInjector<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError> {
        self.check_read(block)?;
        self.inner.read_block(block)
    }

    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        self.check_read(block)?;
        self.inner.read_block_into(block, buf)
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError> {
        self.check_write(block, data.len())?;
        self.inner.write_block(block, data)?;
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{NvmConfig, NvmDevice};

    fn small_device() -> NvmDevice {
        NvmDevice::new(NvmConfig::optane_375gb().with_block_size(256).with_capacity_blocks(16))
    }

    #[test]
    fn no_faults_passes_through() {
        let mut dev = FaultInjector::new(small_device(), FaultPlan::new(1));
        let block = vec![9u8; 256];
        dev.write_block(2, &block).expect("write");
        assert_eq!(dev.read_block(2).expect("read"), block);
        assert_eq!(dev.faults_injected(), 0);
        assert_eq!(dev.counters().reads, 1);
    }

    #[test]
    fn full_read_error_rate_fails_every_read() {
        let mut dev =
            FaultInjector::new(small_device(), FaultPlan::new(2).with_read_error_rate(1.0));
        for b in 0..4 {
            assert!(matches!(
                dev.read_block(b).unwrap_err(),
                NvmError::InjectedFault { op: "read", .. }
            ));
        }
        assert_eq!(dev.faults_injected(), 4);
        // Nothing reached the real device.
        assert_eq!(dev.counters().reads, 0);
    }

    #[test]
    fn partial_rate_is_deterministic_and_partial() {
        let run = || {
            let mut dev =
                FaultInjector::new(small_device(), FaultPlan::new(3).with_read_error_rate(0.3));
            (0..200).map(|b| dev.read_block(b % 16).is_err()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault pattern must be deterministic in the seed");
        let failures = a.iter().filter(|&&f| f).count();
        assert!((30..=90).contains(&failures), "≈30% of 200 reads should fail, got {failures}");
    }

    #[test]
    fn bad_block_always_fails_others_succeed() {
        let mut dev = FaultInjector::new(small_device(), FaultPlan::new(4).with_bad_block(5));
        assert!(dev.read_block(5).is_err());
        assert!(dev.write_block(5, &vec![0u8; 256]).is_err());
        assert!(dev.read_block(6).is_ok());
    }

    #[test]
    fn wear_out_fails_writes_after_budget() {
        let plan = FaultPlan::new(5).with_wear_out_after_bytes(512); // two blocks
        let mut dev = FaultInjector::new(small_device(), plan);
        dev.write_block(0, &vec![1u8; 256]).expect("first write");
        dev.write_block(1, &vec![1u8; 256]).expect("second write");
        let err = dev.write_block(2, &vec![1u8; 256]).unwrap_err();
        assert!(matches!(err, NvmError::WornOut { .. }));
        // Reads still work on a worn-out device.
        assert!(dev.read_block(0).is_ok());
    }

    #[test]
    fn into_inner_recovers_device() {
        let mut dev = FaultInjector::new(small_device(), FaultPlan::new(6));
        dev.write_block(1, &vec![7u8; 256]).expect("write");
        let mut inner = dev.into_inner();
        assert_eq!(inner.read_block(1).expect("read")[0], 7);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_rejected() {
        let _ = FaultPlan::new(0).with_read_error_rate(1.5);
    }
}
