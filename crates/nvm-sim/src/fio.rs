//! Fio-style workload descriptions.
//!
//! The paper benchmarks the device with Fio 2.19 (libaio engine, 4 jobs,
//! varying iodepth, 4 KB random reads). [`FioJob`] captures that
//! configuration and runs it against the simulator, producing the rows of
//! Figure 2; sweeping offered load instead reproduces Figure 5's reference
//! ("100% effective bandwidth") curve.

use crate::queue::QueueModel;
use crate::sim::{closed_loop_sim, OpenLoopSim, SimReport};
use serde::{Deserialize, Serialize};

/// A random-read benchmark job, mirroring the Fio configuration in §2.2.
///
/// # Example
///
/// ```
/// use nvm_sim::{FioJob, QueueModel};
///
/// let report = FioJob::new(QueueModel::optane())
///     .queue_depth(8)
///     .requests(20_000)
///     .run();
/// assert!(report.bandwidth_gbps() > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct FioJob {
    model: QueueModel,
    queue_depth: u32,
    requests: u64,
    seed: u64,
}

impl FioJob {
    /// Creates a job against the given device model with defaults matching
    /// the paper (queue depth 1, 100 k requests).
    pub fn new(model: QueueModel) -> Self {
        FioJob { model, queue_depth: 1, requests: 100_000, seed: 0xF10 }
    }

    /// Sets the I/O queue depth (the paper sweeps 1, 2, 4, 8).
    pub fn queue_depth(mut self, qd: u32) -> Self {
        self.queue_depth = qd;
        self
    }

    /// Sets the number of requests to simulate.
    pub fn requests(mut self, n: u64) -> Self {
        self.requests = n;
        self
    }

    /// Sets the RNG seed for reproducibility.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the closed-loop benchmark and returns a report.
    pub fn run(&self) -> FioReport {
        let sim = closed_loop_sim(&self.model, self.queue_depth, self.requests, self.seed);
        FioReport { queue_depth: self.queue_depth, sim }
    }

    /// Runs an open-loop sweep at the given offered *device* throughputs
    /// (bytes/s), returning one report per load level. This is the engine
    /// behind Figure 5.
    pub fn run_open_loop_sweep(&self, offered_bps: &[f64]) -> Vec<FioReport> {
        offered_bps
            .iter()
            .map(|&bps| {
                let sim = OpenLoopSim::new(self.model, self.seed).run(bps, self.requests);
                FioReport { queue_depth: 0, sim }
            })
            .collect()
    }
}

/// The result of one Fio job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FioReport {
    /// Queue depth used (0 for open-loop runs).
    pub queue_depth: u32,
    /// Raw simulation report.
    pub sim: SimReport,
}

impl FioReport {
    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.sim.mean_latency_s * 1e6
    }

    /// P99 latency in microseconds.
    pub fn p99_latency_us(&self) -> f64 {
        self.sim.p99_latency_s * 1e6
    }

    /// Achieved bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.sim.bandwidth_bytes_per_sec / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_latency_and_bandwidth_grow_with_qd() {
        let mut prev_bw = 0.0;
        let mut prev_lat = 0.0;
        for qd in [1u32, 2, 4, 8] {
            let r = FioJob::new(QueueModel::optane()).queue_depth(qd).requests(20_000).run();
            assert!(r.bandwidth_gbps() >= prev_bw, "bandwidth dropped at qd {qd}");
            assert!(r.mean_latency_us() + 0.5 >= prev_lat, "latency dropped at qd {qd}");
            assert!(r.p99_latency_us() > r.mean_latency_us());
            prev_bw = r.bandwidth_gbps();
            prev_lat = r.mean_latency_us();
        }
        // The sweep should span the paper's range: 0.4 -> 2.3 GB/s.
        assert!(prev_bw > 2.0, "QD8 bandwidth {prev_bw} GB/s");
    }

    #[test]
    fn open_loop_sweep_returns_one_report_per_load() {
        let model = QueueModel::optane();
        let loads = [0.2e9, 1.0e9, 2.0e9];
        let reports = FioJob::new(model).requests(20_000).run_open_loop_sweep(&loads);
        assert_eq!(reports.len(), 3);
        assert!(reports[2].mean_latency_us() > reports[0].mean_latency_us());
    }

    #[test]
    fn builder_is_chainable_and_deterministic() {
        let a = FioJob::new(QueueModel::optane()).queue_depth(4).requests(5_000).seed(1).run();
        let b = FioJob::new(QueueModel::optane()).queue_depth(4).requests(5_000).seed(1).run();
        assert_eq!(a.mean_latency_us(), b.mean_latency_us());
    }
}
