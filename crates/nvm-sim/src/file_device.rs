//! A file-backed block device — the closest laptop-scale stand-in for a
//! real block-mode NVM drive.
//!
//! The in-memory [`crate::NvmDevice`] counts I/O and moves bytes, but every
//! access costs a DRAM copy; nothing actually leaves the process. This
//! device persists blocks in a regular file, issuing real `pread`/`pwrite`
//! system calls per block, so the full Bandana data path (table build →
//! block write → prefetch read) can be exercised against a storage medium
//! with OS-visible 4 KB granularity. It deliberately keeps no user-space
//! block cache: the point is that the *caller* (Bandana's DRAM cache)
//! decides what stays in memory.
//!
//! # Example
//!
//! ```no_run
//! use nvm_sim::{BlockDevice, FileNvmDevice};
//!
//! # fn main() -> Result<(), nvm_sim::NvmError> {
//! let mut dev = FileNvmDevice::create("/tmp/bandana.blocks", 4096, 1024)?;
//! let block = vec![42u8; dev.block_size()];
//! dev.write_block(17, &block)?;
//! assert_eq!(dev.read_block(17)?, block);
//! # Ok(())
//! # }
//! ```

use crate::device::{BlockDevice, IoCounters};
use crate::endurance::EnduranceMeter;
use crate::error::NvmError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default endurance bound, matching [`crate::NvmConfig::optane_375gb`]
/// (§2.2: "typical NVM devices can be re-written 30 times a day").
const DEFAULT_DWPD_LIMIT: f64 = 30.0;

/// A block device stored in a regular file.
///
/// All I/O is positioned (seek + read/write of exactly one block), so the
/// access pattern the OS sees matches what a block NVM device would see.
#[derive(Debug)]
pub struct FileNvmDevice {
    file: File,
    path: PathBuf,
    block_size: usize,
    capacity_blocks: u64,
    counters: IoCounters,
    endurance: EnduranceMeter,
}

impl FileNvmDevice {
    /// Creates (or truncates) the backing file and sizes it to
    /// `block_size * capacity_blocks` zero bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::InvalidConfig`] for a zero block size or
    /// capacity and [`NvmError::Io`] for OS failures.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        capacity_blocks: u64,
    ) -> Result<Self, NvmError> {
        if block_size == 0 {
            return Err(NvmError::InvalidConfig("block size must be non-zero"));
        }
        if capacity_blocks == 0 {
            return Err(NvmError::InvalidConfig("capacity must be non-zero"));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())
            .map_err(|e| NvmError::Io { op: "create", message: e.to_string() })?;
        let bytes = block_size as u64 * capacity_blocks;
        file.set_len(bytes).map_err(|e| NvmError::Io { op: "create", message: e.to_string() })?;
        Ok(FileNvmDevice {
            file,
            path: path.as_ref().to_path_buf(),
            block_size,
            capacity_blocks,
            counters: IoCounters::default(),
            endurance: EnduranceMeter::new(bytes, DEFAULT_DWPD_LIMIT),
        })
    }

    /// Opens an existing backing file, inferring the capacity from its
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::InvalidConfig`] if the file length is not a
    /// multiple of `block_size` or is empty, and [`NvmError::Io`] for OS
    /// failures.
    pub fn open<P: AsRef<Path>>(path: P, block_size: usize) -> Result<Self, NvmError> {
        if block_size == 0 {
            return Err(NvmError::InvalidConfig("block size must be non-zero"));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())
            .map_err(|e| NvmError::Io { op: "open", message: e.to_string() })?;
        let bytes =
            file.metadata().map_err(|e| NvmError::Io { op: "open", message: e.to_string() })?.len();
        if bytes == 0 || bytes % block_size as u64 != 0 {
            return Err(NvmError::InvalidConfig("file length is not a whole number of blocks"));
        }
        Ok(FileNvmDevice {
            file,
            path: path.as_ref().to_path_buf(),
            block_size,
            capacity_blocks: bytes / block_size as u64,
            counters: IoCounters::default(),
            endurance: EnduranceMeter::new(bytes, DEFAULT_DWPD_LIMIT),
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Endurance accounting (writes observed through this handle).
    pub fn endurance(&self) -> &EnduranceMeter {
        &self.endurance
    }

    /// Flushes OS buffers to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::Io`] if `fsync` fails.
    pub fn sync(&mut self) -> Result<(), NvmError> {
        self.file.sync_data().map_err(|e| NvmError::Io { op: "sync", message: e.to_string() })
    }

    fn offset_of(&self, block: u64) -> Result<u64, NvmError> {
        if block >= self.capacity_blocks {
            return Err(NvmError::BlockOutOfRange { block, capacity: self.capacity_blocks });
        }
        Ok(block * self.block_size as u64)
    }
}

impl BlockDevice for FileNvmDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError> {
        let mut buf = vec![0u8; self.block_size];
        self.read_block_into(block, &mut buf)?;
        Ok(buf)
    }

    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        if buf.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: buf.len(), expected: self.block_size });
        }
        let off = self.offset_of(block)?;
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| NvmError::Io { op: "read", message: e.to_string() })?;
        self.file
            .read_exact(buf)
            .map_err(|e| NvmError::Io { op: "read", message: e.to_string() })?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.block_size as u64;
        Ok(())
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError> {
        if data.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: data.len(), expected: self.block_size });
        }
        let off = self.offset_of(block)?;
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| NvmError::Io { op: "write", message: e.to_string() })?;
        self.file
            .write_all(data)
            .map_err(|e| NvmError::Io { op: "write", message: e.to_string() })?;
        self.counters.writes += 1;
        self.counters.bytes_written += self.block_size as u64;
        self.endurance.record_write(self.block_size as u64);
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nvm-sim-test-{}-{name}", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn round_trips_blocks() {
        let path = temp_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let mut dev = FileNvmDevice::create(&path, 512, 16).expect("create");
        let a = vec![0xAB; 512];
        let b = vec![0xCD; 512];
        dev.write_block(0, &a).expect("write 0");
        dev.write_block(15, &b).expect("write 15");
        assert_eq!(dev.read_block(0).expect("read 0"), a);
        assert_eq!(dev.read_block(15).expect("read 15"), b);
        let c = dev.counters();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 2);
        assert_eq!(c.bytes_written, 1024);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let path = temp_path("zeros");
        let _cleanup = Cleanup(path.clone());
        let mut dev = FileNvmDevice::create(&path, 256, 4).expect("create");
        assert_eq!(dev.read_block(3).expect("read"), vec![0u8; 256]);
    }

    #[test]
    fn out_of_range_rejected() {
        let path = temp_path("range");
        let _cleanup = Cleanup(path.clone());
        let mut dev = FileNvmDevice::create(&path, 256, 4).expect("create");
        let err = dev.read_block(4).unwrap_err();
        assert!(matches!(err, NvmError::BlockOutOfRange { block: 4, capacity: 4 }));
        let err = dev.write_block(9, &vec![0u8; 256]).unwrap_err();
        assert!(matches!(err, NvmError::BlockOutOfRange { block: 9, .. }));
    }

    #[test]
    fn bad_sizes_rejected() {
        let path = temp_path("sizes");
        let _cleanup = Cleanup(path.clone());
        let mut dev = FileNvmDevice::create(&path, 256, 4).expect("create");
        assert!(matches!(
            dev.write_block(0, &[1, 2, 3]).unwrap_err(),
            NvmError::BadWriteSize { got: 3, expected: 256 }
        ));
        let mut small = vec![0u8; 17];
        assert!(matches!(
            dev.read_block_into(0, &mut small).unwrap_err(),
            NvmError::BadWriteSize { got: 17, expected: 256 }
        ));
    }

    #[test]
    fn reopen_preserves_contents() {
        let path = temp_path("reopen");
        let _cleanup = Cleanup(path.clone());
        let payload = vec![0x5A; 128];
        {
            let mut dev = FileNvmDevice::create(&path, 128, 8).expect("create");
            dev.write_block(5, &payload).expect("write");
            dev.sync().expect("sync");
        }
        let mut dev = FileNvmDevice::open(&path, 128).expect("open");
        assert_eq!(dev.capacity_blocks(), 8);
        assert_eq!(dev.read_block(5).expect("read"), payload);
    }

    #[test]
    fn open_rejects_misaligned_file() {
        let path = temp_path("misaligned");
        let _cleanup = Cleanup(path.clone());
        std::fs::write(&path, vec![0u8; 100]).expect("write file");
        let err = FileNvmDevice::open(&path, 64).unwrap_err();
        assert!(matches!(err, NvmError::InvalidConfig(_)));
    }

    #[test]
    fn zero_config_rejected() {
        assert!(matches!(
            FileNvmDevice::create("/tmp/unused", 0, 4).unwrap_err(),
            NvmError::InvalidConfig(_)
        ));
        assert!(matches!(
            FileNvmDevice::create("/tmp/unused", 512, 0).unwrap_err(),
            NvmError::InvalidConfig(_)
        ));
    }

    #[test]
    fn endurance_tracks_writes() {
        let path = temp_path("endurance");
        let _cleanup = Cleanup(path.clone());
        let mut dev = FileNvmDevice::create(&path, 512, 4).expect("create");
        for b in 0..4 {
            dev.write_block(b, &vec![1u8; 512]).expect("write");
        }
        // 4 blocks × 512 B = one full drive write.
        assert!((dev.endurance().drive_writes() - 1.0).abs() < 1e-9);
    }
}
