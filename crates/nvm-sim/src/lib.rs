//! # nvm-sim — a simulated block-addressable NVM device
//!
//! The Bandana paper (Eisenman et al., MLSys 2019) evaluates an NVM device in
//! its block form factor: reads are served at 4 KB granularity, bandwidth
//! saturates around 2.3 GB/s, and latency grows with queue depth (paper
//! Figure 2). Production NVM hardware is not available in this environment,
//! so this crate provides an event-driven simulator calibrated to the
//! measurements reported in the paper:
//!
//! * a [`QueueModel`] mapping queue depth to mean/P99 latency and bandwidth,
//! * an [`NvmDevice`] that stores real bytes at block granularity and counts
//!   reads, writes, and wear ([`endurance`]),
//! * a closed-loop and open-loop [`sim`] engine reproducing Figures 2 and 5,
//! * a [`fio`]-style random-read workload generator.
//!
//! All results in the paper are ratios over counted block reads; the latency
//! model only rescales those counts into seconds, so the simulator preserves
//! the paper's conclusions even though the absolute constants are synthetic.
//!
//! ## Example
//!
//! ```
//! use nvm_sim::{BlockDevice, NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), nvm_sim::NvmError> {
//! let config = NvmConfig::optane_375gb().with_capacity_blocks(1024);
//! let mut device = NvmDevice::new(config);
//! device.write_block(7, &vec![0xAB; device.block_size()])?;
//! let block = device.read_block(7)?;
//! assert_eq!(block[0], 0xAB);
//! assert_eq!(device.counters().reads, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod device;
pub mod endurance;
pub mod error;
pub mod faults;
pub mod file_device;
pub mod fio;
pub mod pool;
pub mod queue;
pub mod sim;
pub mod sparse;
pub mod stats;

pub use dense::{BlockRemap, RebasedDevice};
pub use device::{BlockDevice, IoCounters, NvmConfig, NvmDevice};
pub use endurance::EnduranceMeter;
pub use error::NvmError;
pub use faults::{FaultInjector, FaultPlan};
pub use file_device::FileNvmDevice;
pub use fio::{FioJob, FioReport};
pub use pool::{BlockBufPool, PoolStats, PooledBlock};
pub use queue::{DepthStats, QueueDepthTracker, QueueModel};
pub use sim::{OpenLoopSim, SimReport};
pub use sparse::SparseDevice;
pub use stats::{Histogram, OnlineStats};
