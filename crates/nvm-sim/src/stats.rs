//! Streaming statistics: online mean/variance and a log-bucketed histogram
//! with percentile queries.
//!
//! The simulation engines record per-request latencies into a [`Histogram`]
//! so that mean and tail (P99) latencies — the quantities plotted in the
//! paper's Figures 2 and 5 — can be extracted without storing every sample.

use serde::{Deserialize, Serialize};

/// Welford-style online mean and variance accumulator.
///
/// # Example
///
/// ```
/// use nvm_sim::OnlineStats;
///
/// let mut stats = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     stats.record(x);
/// }
/// assert_eq!(stats.mean(), 2.0);
/// assert_eq!(stats.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the samples; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest recorded sample; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest recorded sample; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Number of linear sub-buckets per power-of-two bucket.
const SUBBUCKETS: usize = 32;

/// A log-linear histogram over non-negative `f64` samples, supporting
/// approximate percentile queries with bounded relative error (~3%).
///
/// Samples are assigned to a power-of-two bucket by exponent and to one of
/// `SUBBUCKETS` linear sub-buckets inside it, mirroring the layout used by
/// HdrHistogram-style recorders.
///
/// # Example
///
/// ```
/// use nvm_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// counts[exp][sub] where exp indexes the binary exponent (offset by 64).
    counts: Vec<u64>,
    total: u64,
    stats: OnlineStats,
}

impl Default for Histogram {
    /// Same as [`Histogram::new`] (a derived `Default` would leave the
    /// bucket vector empty and make `record` panic).
    fn default() -> Self {
        Histogram::new()
    }
}

/// Exponent range: 2^-32 .. 2^96 covers any latency in seconds or nanoseconds.
const MIN_EXP: i32 = -32;
const MAX_EXP: i32 = 96;
const NUM_EXP: usize = (MAX_EXP - MIN_EXP) as usize;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NUM_EXP * SUBBUCKETS], total: 0, stats: OnlineStats::new() }
    }

    fn bucket_index(x: f64) -> usize {
        debug_assert!(x >= 0.0, "histogram samples must be non-negative");
        if x <= 0.0 {
            return 0;
        }
        let exp = x.log2().floor() as i32;
        let exp = exp.clamp(MIN_EXP, MAX_EXP - 1);
        let base = 2f64.powi(exp);
        let frac = ((x - base) / base * SUBBUCKETS as f64) as usize;
        let frac = frac.min(SUBBUCKETS - 1);
        (exp - MIN_EXP) as usize * SUBBUCKETS + frac
    }

    fn bucket_value(index: usize) -> f64 {
        let exp = (index / SUBBUCKETS) as i32 + MIN_EXP;
        let sub = index % SUBBUCKETS;
        let base = 2f64.powi(exp);
        // Midpoint of the sub-bucket.
        base + base * (sub as f64 + 0.5) / SUBBUCKETS as f64
    }

    /// Records one non-negative sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is negative or NaN.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "histogram samples must not be NaN");
        self.counts[Self::bucket_index(x)] += 1;
        self.total += 1;
        self.stats.record(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Approximate `p`-th percentile (`0.0 ..= 100.0`) of the samples.
    ///
    /// Returns `0.0` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100], got {p}");
        if self.total == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i);
            }
        }
        self.stats.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin().abs() * 10.0 + 1.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000u32 {
            h.record(i as f64);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0] {
            let expected = p / 100.0 * 10_000.0;
            let got = h.percentile(p);
            assert!(
                (got - expected).abs() / expected < 0.06,
                "p{p}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn histogram_handles_tiny_and_zero_values() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(5e-6);
        assert_eq!(h.count(), 3);
        // Median should be around 1e-9 (the middle sample).
        let p50 = h.percentile(50.0);
        assert!(p50 < 1e-6, "p50 {p50} should be tiny");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=500 {
            a.record(i as f64);
        }
        for i in 501..=1000 {
            b.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.percentile(50.0);
        assert!((p50 - 500.0).abs() / 500.0 < 0.06, "p50 {p50}");
    }

    #[test]
    fn histogram_p0_and_p100() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(1000.0);
        assert!(h.percentile(0.0) > 0.0);
        assert!(h.percentile(100.0) >= 1000.0 * 0.97);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn histogram_rejects_bad_percentile() {
        let h = Histogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.mean(), 1.5);
    }
}
