//! A device replica carved down to the block ranges one owner needs.
//!
//! A sharded serving engine used to hand every shard a full clone of the
//! simulated device — correct, but each clone copies the entire byte
//! arena even though a shard only ever touches its own tables' blocks.
//! [`SparseDevice`] copies just the requested block ranges while keeping
//! the parent's block addressing, so existing per-table block offsets stay
//! valid and per-shard I/O counters stay honest, at a fraction of the
//! memory.

use crate::dense::{BlockRemap, RebasedDevice};
use crate::device::{BlockDevice, IoCounters, NvmDevice};
use crate::error::NvmError;
use crate::queue::QueueModel;

/// One resident extent: `len_blocks` blocks starting at `start_block`,
/// with its bytes at `byte_offset` inside the shared arena.
#[derive(Debug, Clone)]
struct Extent {
    start_block: u64,
    len_blocks: u64,
    byte_offset: usize,
}

/// A partial replica of an [`NvmDevice`]: only the carved block ranges are
/// resident, but blocks keep their parent addresses.
///
/// # Example
///
/// ```
/// use nvm_sim::{BlockDevice, NvmConfig, NvmDevice, SparseDevice};
///
/// # fn main() -> Result<(), nvm_sim::NvmError> {
/// let mut parent = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(64));
/// parent.write_block(40, &vec![7u8; parent.block_size()])?;
///
/// // Carve blocks 8..16 and 40..44; everything else stays behind.
/// let mut shard = SparseDevice::carve(&parent, &[(8, 8), (40, 4)])?;
/// assert_eq!(shard.read_block(40)?[0], 7);
/// assert_eq!(shard.resident_blocks(), 12);
/// assert!(shard.read_block(0).is_err(), "block 0 was not carved");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseDevice {
    block_size: usize,
    capacity_blocks: u64,
    queue_model: QueueModel,
    /// Drive-writes-per-day budget inherited from the parent, carried so
    /// [`SparseDevice::rebase`] can size a per-shard endurance meter.
    dwpd_limit: f64,
    /// Sorted, non-overlapping extents.
    extents: Vec<Extent>,
    storage: Vec<u8>,
    counters: IoCounters,
}

impl SparseDevice {
    /// Copies the given `(start_block, len_blocks)` ranges out of `parent`.
    /// Empty ranges are dropped; the rest are sorted and must not overlap.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::BlockOutOfRange`] when a range exceeds the
    /// parent capacity and [`NvmError::InvalidConfig`] when ranges overlap.
    pub fn carve(parent: &NvmDevice, ranges: &[(u64, u64)]) -> Result<Self, NvmError> {
        let block_size = parent.block_size();
        let capacity = parent.capacity_blocks();
        let mut sorted: Vec<(u64, u64)> =
            ranges.iter().copied().filter(|&(_, len)| len > 0).collect();
        sorted.sort_unstable();
        let mut extents = Vec::with_capacity(sorted.len());
        let mut total_blocks = 0u64;
        let mut prev_end = 0u64;
        for (i, &(start, len)) in sorted.iter().enumerate() {
            let end = start
                .checked_add(len)
                .ok_or(NvmError::BlockOutOfRange { block: u64::MAX, capacity })?;
            if end > capacity {
                return Err(NvmError::BlockOutOfRange { block: end - 1, capacity });
            }
            if i > 0 && start < prev_end {
                return Err(NvmError::InvalidConfig("carved block ranges overlap"));
            }
            prev_end = end;
            extents.push(Extent {
                start_block: start,
                len_blocks: len,
                byte_offset: usize::try_from(total_blocks).expect("resident set fits memory")
                    * block_size,
            });
            total_blocks += len;
        }
        let bytes = usize::try_from(total_blocks).expect("resident set fits memory") * block_size;
        let mut storage = vec![0u8; bytes];
        for e in &extents {
            for b in 0..e.len_blocks {
                let off =
                    e.byte_offset + usize::try_from(b).expect("extent fits memory") * block_size;
                parent.copy_block_into(e.start_block + b, &mut storage[off..off + block_size])?;
            }
        }
        Ok(SparseDevice {
            block_size,
            capacity_blocks: capacity,
            queue_model: *parent.queue_model(),
            dwpd_limit: parent.config().drive_writes_per_day_limit,
            extents,
            storage,
            counters: IoCounters::default(),
        })
    }

    /// Packs the carved extents into a dense zero-based [`RebasedDevice`]
    /// with its own per-shard capacity and endurance accounting.
    ///
    /// The storage is reinterpreted, not copied: carved extents are
    /// already laid out densely in ascending parent-address order, so the
    /// rebase only assigns each extent a new dense base address. Use
    /// [`RebasedDevice::remap`] to translate the owner's block offsets
    /// (e.g. a table's `base_block`) into the new address space.
    pub fn rebase(self) -> RebasedDevice {
        let remap: Vec<BlockRemap> = self
            .extents
            .iter()
            .map(|e| BlockRemap {
                old_start: e.start_block,
                new_start: (e.byte_offset / self.block_size) as u64,
                len: e.len_blocks,
            })
            .collect();
        RebasedDevice::from_packed(
            self.block_size,
            self.queue_model,
            self.dwpd_limit,
            remap,
            self.storage,
        )
    }

    /// The latency/bandwidth model inherited from the parent device.
    pub fn queue_model(&self) -> &QueueModel {
        &self.queue_model
    }

    /// Number of resident (carved) blocks.
    pub fn resident_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len_blocks).sum()
    }

    /// Bytes of storage this replica actually holds.
    pub fn resident_bytes(&self) -> usize {
        self.storage.len()
    }

    /// Resolves a block to its byte offset in the resident arena.
    fn resolve(&self, block: u64) -> Result<usize, NvmError> {
        if block >= self.capacity_blocks {
            return Err(NvmError::BlockOutOfRange { block, capacity: self.capacity_blocks });
        }
        // Last extent starting at or before `block`.
        let idx = self.extents.partition_point(|e| e.start_block <= block);
        if idx == 0 {
            return Err(NvmError::BlockNotResident { block });
        }
        let e = &self.extents[idx - 1];
        if block >= e.start_block + e.len_blocks {
            return Err(NvmError::BlockNotResident { block });
        }
        let within = usize::try_from(block - e.start_block).expect("extent fits memory");
        Ok(e.byte_offset + within * self.block_size)
    }
}

impl BlockDevice for SparseDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError> {
        let off = self.resolve(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.block_size as u64;
        Ok(self.storage[off..off + self.block_size].to_vec())
    }

    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        if buf.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: buf.len(), expected: self.block_size });
        }
        let off = self.resolve(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.block_size as u64;
        buf.copy_from_slice(&self.storage[off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError> {
        if data.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: data.len(), expected: self.block_size });
        }
        let off = self.resolve(block)?;
        self.counters.writes += 1;
        self.counters.bytes_written += self.block_size as u64;
        self.storage[off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NvmConfig;

    fn parent() -> NvmDevice {
        let mut dev = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(32));
        for b in 0..32u64 {
            let fill = vec![b as u8; dev.block_size()];
            dev.write_block(b, &fill).unwrap();
        }
        dev
    }

    #[test]
    fn carved_blocks_round_trip_with_parent_addresses() {
        let p = parent();
        let mut s = SparseDevice::carve(&p, &[(4, 4), (20, 2)]).unwrap();
        for b in [4u64, 7, 20, 21] {
            assert_eq!(s.read_block(b).unwrap()[0], b as u8, "block {b}");
        }
        assert_eq!(s.resident_blocks(), 6);
        assert_eq!(s.resident_bytes(), 6 * p.block_size());
        assert_eq!(s.capacity_blocks(), 32);
    }

    #[test]
    fn non_resident_blocks_are_rejected_without_counting() {
        let mut s = SparseDevice::carve(&parent(), &[(4, 4)]).unwrap();
        for b in [0u64, 3, 8, 31] {
            assert_eq!(s.read_block(b).unwrap_err(), NvmError::BlockNotResident { block: b });
        }
        assert_eq!(
            s.read_block(40).unwrap_err(),
            NvmError::BlockOutOfRange { block: 40, capacity: 32 }
        );
        assert_eq!(s.counters().reads, 0);
    }

    #[test]
    fn writes_stay_local_to_the_replica() {
        let mut p = parent();
        let mut s = SparseDevice::carve(&p, &[(0, 8)]).unwrap();
        s.write_block(2, &vec![99u8; s.block_size()]).unwrap();
        assert_eq!(s.read_block(2).unwrap()[0], 99);
        assert_eq!(p.read_block(2).unwrap()[0], 2, "parent untouched");
        assert_eq!(s.counters().writes, 1);
    }

    #[test]
    fn overlapping_or_oversized_ranges_are_rejected() {
        let p = parent();
        assert!(matches!(
            SparseDevice::carve(&p, &[(0, 8), (4, 2)]),
            Err(NvmError::InvalidConfig(_))
        ));
        assert!(matches!(
            SparseDevice::carve(&p, &[(30, 4)]),
            Err(NvmError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_ranges_and_unsorted_input_are_fine() {
        let p = parent();
        let mut s = SparseDevice::carve(&p, &[(20, 2), (0, 0), (4, 1)]).unwrap();
        assert_eq!(s.resident_blocks(), 3);
        assert_eq!(s.read_block(4).unwrap()[0], 4);
        assert_eq!(s.read_block(21).unwrap()[0], 21);
    }

    #[test]
    fn bad_buffer_sizes_rejected() {
        let mut s = SparseDevice::carve(&parent(), &[(0, 2)]).unwrap();
        assert!(matches!(s.write_block(0, &[1, 2, 3]), Err(NvmError::BadWriteSize { .. })));
        let mut short = vec![0u8; 3];
        assert!(matches!(s.read_block_into(0, &mut short), Err(NvmError::BadWriteSize { .. })));
    }
}
