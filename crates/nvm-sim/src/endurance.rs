//! Write-endurance accounting.
//!
//! NVM wears out as a function of total writes: the paper notes that typical
//! devices tolerate about 30 full drive writes per day, while Facebook's
//! embedding retraining rewrites the tables 10–20 times a day — safely under
//! the limit (§2.2). [`EnduranceMeter`] tracks cumulative writes so the
//! Bandana store can verify that a retraining schedule stays within budget.

use serde::{Deserialize, Serialize};

/// Tracks cumulative bytes written against a drive-writes-per-day budget.
///
/// # Example
///
/// ```
/// use nvm_sim::EnduranceMeter;
///
/// // A 1 MB device limited to 30 drive writes per day.
/// let mut meter = EnduranceMeter::new(1 << 20, 30.0);
/// meter.record_write(1 << 19); // half the device
/// assert_eq!(meter.drive_writes(), 0.5);
/// assert!(meter.within_budget(1.0)); // 0.5 DW in one day < 30
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceMeter {
    capacity_bytes: u64,
    bytes_written: u64,
    dwpd_limit: f64,
}

impl EnduranceMeter {
    /// Creates a meter for a device of `capacity_bytes` with the given
    /// drive-writes-per-day limit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero or the limit is not positive.
    pub fn new(capacity_bytes: u64, dwpd_limit: f64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert!(dwpd_limit > 0.0, "drive-writes-per-day limit must be positive");
        EnduranceMeter { capacity_bytes, bytes_written: 0, dwpd_limit }
    }

    /// Records `bytes` written to the device.
    pub fn record_write(&mut self, bytes: u64) {
        self.bytes_written = self.bytes_written.saturating_add(bytes);
    }

    /// Restores the cumulative write counter from persisted state (warm
    /// restart): the meter continues counting from `bytes_written` as if
    /// the process had never died, so drive-write budgets survive a
    /// recovery instead of silently resetting to zero.
    pub fn restore(&mut self, bytes_written: u64) {
        self.bytes_written = bytes_written;
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative full drive writes (bytes written / capacity).
    pub fn drive_writes(&self) -> f64 {
        self.bytes_written as f64 / self.capacity_bytes as f64
    }

    /// The configured drive-writes-per-day limit.
    pub fn dwpd_limit(&self) -> f64 {
        self.dwpd_limit
    }

    /// Whether the writes recorded so far, spread over `days` of operation,
    /// stay within the drive-writes-per-day limit.
    ///
    /// # Panics
    ///
    /// Panics if `days` is not positive.
    pub fn within_budget(&self, days: f64) -> bool {
        assert!(days > 0.0, "days must be positive");
        self.drive_writes() / days <= self.dwpd_limit
    }

    /// Drive writes per day given `days` of operation.
    pub fn dwpd(&self, days: f64) -> f64 {
        assert!(days > 0.0, "days must be positive");
        self.drive_writes() / days
    }

    /// How many retrainings per day a table of `table_bytes` can sustain on
    /// this device before hitting the endurance limit.
    ///
    /// This answers the paper's §2.2 question directly: with 30 DWPD and
    /// tables rewritten 10–20×/day, is the device safe?
    pub fn max_retrainings_per_day(&self, table_bytes: u64) -> f64 {
        if table_bytes == 0 {
            return f64::INFINITY;
        }
        self.dwpd_limit * self.capacity_bytes as f64 / table_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_writes_accumulate() {
        let mut m = EnduranceMeter::new(1000, 30.0);
        m.record_write(500);
        m.record_write(1500);
        assert_eq!(m.bytes_written(), 2000);
        assert!((m.drive_writes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn budget_check_matches_paper_scenario() {
        // Device fully rewritten 15 times in one day: paper says this is the
        // typical retraining rate and is under the 30 DWPD limit.
        let mut m = EnduranceMeter::new(1 << 30, 30.0);
        m.record_write(15 * (1u64 << 30));
        assert!(m.within_budget(1.0));
        assert!((m.dwpd(1.0) - 15.0).abs() < 1e-9);
        // 40 rewrites/day would violate it.
        let mut m2 = EnduranceMeter::new(1 << 30, 30.0);
        m2.record_write(40 * (1u64 << 30));
        assert!(!m2.within_budget(1.0));
    }

    #[test]
    fn max_retrainings_scales_with_table_size() {
        let m = EnduranceMeter::new(100 * (1 << 20), 30.0);
        // A table occupying the whole device: exactly the DWPD limit.
        assert!((m.max_retrainings_per_day(100 * (1 << 20)) - 30.0).abs() < 1e-9);
        // A table occupying a tenth of the device: 10x more retrainings.
        assert!((m.max_retrainings_per_day(10 * (1 << 20)) - 300.0).abs() < 1e-9);
        assert!(m.max_retrainings_per_day(0).is_infinite());
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let mut m = EnduranceMeter::new(1, 30.0);
        m.record_write(u64::MAX);
        m.record_write(u64::MAX);
        assert_eq!(m.bytes_written(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        EnduranceMeter::new(0, 30.0);
    }

    #[test]
    #[should_panic(expected = "days must be positive")]
    fn zero_days_rejected() {
        EnduranceMeter::new(1, 30.0).within_budget(0.0);
    }
}
