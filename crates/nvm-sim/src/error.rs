//! Error types for the NVM simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::NvmDevice`] and the simulation engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NvmError {
    /// A block index was outside the device capacity.
    BlockOutOfRange {
        /// The requested block index.
        block: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A write buffer did not match the device block size.
    BadWriteSize {
        /// Length of the buffer handed to the device.
        got: usize,
        /// The device block size.
        expected: usize,
    },
    /// The device configuration was invalid (zero capacity or block size).
    InvalidConfig(&'static str),
    /// The device wore out: cumulative writes exceeded its endurance budget.
    WornOut {
        /// Total drive writes performed.
        drive_writes: f64,
        /// The configured lifetime budget in drive writes.
        budget: f64,
    },
    /// An operating-system I/O failure from a file-backed device.
    Io {
        /// The failing operation (`"read"`, `"write"`, `"create"`, ...).
        op: &'static str,
        /// The OS error, stringified ([`std::io::Error`] is not `Clone`).
        message: String,
    },
    /// A fault injected by [`crate::FaultInjector`] for failure testing.
    InjectedFault {
        /// The block the faulted operation addressed.
        block: u64,
        /// The faulted operation (`"read"` or `"write"`).
        op: &'static str,
    },
    /// A block inside the device capacity but outside the ranges a
    /// [`crate::SparseDevice`] was carved with.
    BlockNotResident {
        /// The requested block index.
        block: u64,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::BlockOutOfRange { block, capacity } => {
                write!(f, "block {block} out of range for device with {capacity} blocks")
            }
            NvmError::BadWriteSize { got, expected } => {
                write!(f, "write buffer of {got} bytes does not match block size {expected}")
            }
            NvmError::InvalidConfig(msg) => write!(f, "invalid device configuration: {msg}"),
            NvmError::WornOut { drive_writes, budget } => write!(
                f,
                "device worn out: {drive_writes:.2} drive writes exceeds budget of {budget:.2}"
            ),
            NvmError::Io { op, message } => write!(f, "i/o failure during {op}: {message}"),
            NvmError::InjectedFault { block, op } => {
                write!(f, "injected {op} fault at block {block}")
            }
            NvmError::BlockNotResident { block } => {
                write!(f, "block {block} is not resident on this sparse device")
            }
        }
    }
}

impl Error for NvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = NvmError::BlockOutOfRange { block: 9, capacity: 4 };
        let msg = err.to_string();
        assert!(msg.contains("block 9"));
        assert!(msg.contains("4 blocks"));

        let err = NvmError::BadWriteSize { got: 100, expected: 4096 };
        assert!(err.to_string().contains("4096"));

        let err = NvmError::InvalidConfig("zero capacity");
        assert!(err.to_string().contains("zero capacity"));

        let err = NvmError::WornOut { drive_writes: 31.0, budget: 30.0 };
        assert!(err.to_string().contains("worn out"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NvmError>();
    }
}
