//! A freelist of block-sized read buffers for an allocation-free miss path.
//!
//! Bandana's hot loop is the NVM miss read: fetch one 4 KB block, slice the
//! requested vectors out of it, and park the slices in the DRAM cache. The
//! naive implementation heap-allocates a fresh `Vec<u8>` per read. A
//! [`BlockBufPool`] recycles those buffers instead: every buffer it hands
//! out is an `Arc<Vec<u8>>`, the pool keeps one reference of its own, and a
//! buffer becomes reusable the moment every outside reference (cache
//! entries, in-flight payload slices) has been dropped — which the pool
//! detects by the refcount returning to one. Steady-state reads then cycle
//! through a handful of retained buffers and never touch the allocator.
//!
//! # Ownership rules
//!
//! * [`BlockBufPool::acquire`] returns a [`PooledBlock`] with *exclusive*
//!   ownership: `as_mut_slice` is always available and the caller may fill
//!   the buffer (e.g. via
//!   [`BlockDevice::read_block_into`](crate::BlockDevice::read_block_into)).
//! * [`PooledBlock::freeze`] ends the exclusive phase: the pool retains one
//!   reference for future reuse and the caller gets the shared
//!   `Arc<Vec<u8>>` back (typically wrapped in a `bytes::Bytes` view).
//!   From that point the contents are immutable by convention — the pool
//!   will not touch the bytes again until it can prove exclusivity.
//! * A [`PooledBlock`] that is dropped without `freeze` returns to the pool
//!   on the next `acquire` scan only if its buffer was retained earlier; a
//!   never-frozen buffer is simply freed. Don't rely on drop-reclaim; call
//!   `freeze` (or [`PooledBlock::recycle`]) on every acquired buffer.
//!
//! The pool is deliberately not thread-safe: each shard worker (or each
//! lock-guarded device) owns its own pool, mirroring how per-core io_uring
//! buffer rings work.

use std::collections::VecDeque;
use std::sync::Arc;

/// Default number of retired buffers a pool keeps around for reuse.
///
/// Big enough to cover the blocks pinned by in-flight payloads plus the
/// cache-resident generation in typical configurations; 32 × 4 KB = 128 KB
/// per pool. Callers fronting a DRAM cache should size the pool to the
/// cache instead ([`BlockBufPool::for_cache`]).
pub const DEFAULT_RETAINED: usize = 32;

/// Retention cap for [`BlockBufPool::for_cache`] (16 MB of 4 KB buffers).
const MAX_CACHE_RETAINED: usize = 4096;

/// Reuse accounting for one [`BlockBufPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Buffers handed out by [`BlockBufPool::acquire`].
    pub acquires: u64,
    /// Acquires served by recycling a retained buffer (no allocation).
    pub reuses: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub allocs: u64,
    /// Buffers currently retained by the pool (reusable or still pinned by
    /// outside references).
    pub retained: u64,
}

impl PoolStats {
    /// Fraction of acquires served without allocating (`0.0` before the
    /// first acquire).
    pub fn reuse_rate(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.reuses as f64 / self.acquires as f64
        }
    }

    /// Folds another pool's counters into this one (`retained` adds; use
    /// for cross-shard aggregation).
    pub fn merge(&mut self, other: &PoolStats) {
        self.acquires += other.acquires;
        self.reuses += other.reuses;
        self.allocs += other.allocs;
        self.retained += other.retained;
    }
}

/// A recycling pool of block-sized `Arc<Vec<u8>>` read buffers.
///
/// # Example
///
/// ```
/// use nvm_sim::{BlockBufPool, BlockDevice, NvmConfig, NvmDevice};
///
/// # fn main() -> Result<(), nvm_sim::NvmError> {
/// let mut dev = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(4));
/// let mut pool = BlockBufPool::default();
///
/// let mut buf = pool.acquire(dev.block_size());
/// dev.read_block_into(2, buf.as_mut_slice())?;
/// let shared = buf.freeze(&mut pool); // pool retains a reference
/// drop(shared); // ...last outside reference gone: the buffer is reusable
///
/// let _again = pool.acquire(dev.block_size());
/// assert_eq!(pool.stats().reuses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BlockBufPool {
    /// Retired buffers, oldest first. Oldest buffers are the most likely to
    /// have churned out of the caches holding slices into them, so reuse
    /// scans run front-to-back.
    retained: VecDeque<Arc<Vec<u8>>>,
    max_retained: usize,
    stats: PoolStats,
}

impl BlockBufPool {
    /// Creates a pool that retains at most `max_retained` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `max_retained` is zero (a pool that can retain nothing can
    /// never reuse anything).
    pub fn new(max_retained: usize) -> Self {
        assert!(max_retained > 0, "pool must retain at least one buffer");
        BlockBufPool { retained: VecDeque::new(), max_retained, stats: PoolStats::default() }
    }

    /// A pool sized for the read path of a DRAM cache holding `entries`
    /// payload slices: in the worst case every cached entry pins a
    /// distinct block buffer, so retention must exceed `entries` buffers
    /// (plus headroom for buffers in flight between eviction and reuse) or
    /// the reusable generation is dropped before the cache releases it.
    /// Clamped to `[DEFAULT_RETAINED, 4096]` (at most 16 MB of 4 KB
    /// buffers; beyond the cap the pool degrades gracefully to allocating
    /// for the overflow share).
    pub fn for_cache(entries: usize) -> Self {
        let retained = entries + entries / 2 + DEFAULT_RETAINED;
        BlockBufPool::new(retained.clamp(DEFAULT_RETAINED, MAX_CACHE_RETAINED))
    }

    /// Acquire/reuse/allocation counters and the current retained size.
    pub fn stats(&self) -> PoolStats {
        let mut s = self.stats;
        s.retained = self.retained.len() as u64;
        s
    }

    /// Hands out an exclusively-owned buffer of exactly `block_size` bytes,
    /// recycling the oldest retained buffer whose outside references have
    /// all been dropped, or allocating a fresh one.
    ///
    /// The contents are unspecified (stale bytes from an earlier read);
    /// callers overwrite the whole buffer before freezing it.
    pub fn acquire(&mut self, block_size: usize) -> PooledBlock {
        self.stats.acquires += 1;
        // Round-robin sweep: still-pinned buffers cycle to the back (so a
        // buffer pinned long-term — e.g. by a hot cache entry that never
        // churns — is inspected once per full cycle, not on every
        // acquire) and the first free buffer wins. One full cycle without
        // a hit proves nothing is free; then, and only then, allocate.
        for _ in 0..self.retained.len() {
            // `get_mut` succeeds only at refcount one: every cache slice
            // into the buffer is gone and nothing observes a resize.
            match Arc::get_mut(&mut self.retained[0]) {
                Some(buf) => {
                    if buf.len() != block_size {
                        buf.clear();
                        buf.resize(block_size, 0);
                    }
                    let arc = self.retained.pop_front().expect("scanned buffer exists");
                    self.stats.reuses += 1;
                    return PooledBlock { buf: arc };
                }
                None => self.retained.rotate_left(1),
            }
        }
        self.stats.allocs += 1;
        PooledBlock { buf: Arc::new(vec![0u8; block_size]) }
    }

    /// Retains `buf` for future reuse, evicting the oldest retained buffer
    /// when full (the pool reference is dropped; the memory itself lives
    /// until its outside references go).
    fn retire(&mut self, buf: Arc<Vec<u8>>) {
        if self.retained.len() >= self.max_retained {
            self.retained.pop_front();
        }
        self.retained.push_back(buf);
    }
}

impl Default for BlockBufPool {
    fn default() -> Self {
        BlockBufPool::new(DEFAULT_RETAINED)
    }
}

/// An exclusively-owned block buffer checked out of a [`BlockBufPool`].
///
/// See the [module docs](self) for the ownership rules.
#[derive(Debug)]
pub struct PooledBlock {
    buf: Arc<Vec<u8>>,
}

impl PooledBlock {
    /// The buffer, for filling (exactly one block long).
    ///
    /// # Panics
    ///
    /// Never panics in practice: exclusivity is an invariant of
    /// [`BlockBufPool::acquire`].
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf).expect("pooled block is exclusively owned").as_mut_slice()
    }

    /// Read access to the filled buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Ends the exclusive phase: the pool retains one reference for future
    /// recycling and the shared buffer is returned to the caller, ready to
    /// be wrapped in zero-copy `Bytes` views.
    pub fn freeze(self, pool: &mut BlockBufPool) -> Arc<Vec<u8>> {
        pool.retire(Arc::clone(&self.buf));
        self.buf
    }

    /// Returns the buffer to the pool unused (e.g. after a failed device
    /// read) so the next acquire can recycle it immediately.
    pub fn recycle(self, pool: &mut BlockBufPool) {
        pool.retire(self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_then_drop_enables_reuse() {
        let mut pool = BlockBufPool::new(4);
        let mut b = pool.acquire(64);
        b.as_mut_slice()[0] = 9;
        let shared = b.freeze(&mut pool);
        assert_eq!(shared[0], 9);
        // Still pinned by `shared`: the next acquire must allocate.
        let b2 = pool.acquire(64);
        assert_eq!(pool.stats().allocs, 2);
        drop(shared);
        // Unpinned now: reuse, and the old contents are still there until
        // overwritten.
        let b3 = pool.acquire(64);
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(b3.as_slice()[0], 9, "reused buffer keeps stale bytes");
        drop((b2, b3));
    }

    #[test]
    fn size_changes_are_handled_on_reuse() {
        let mut pool = BlockBufPool::new(2);
        pool.acquire(16).freeze(&mut pool);
        let mut b = pool.acquire(32);
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(b.as_mut_slice().len(), 32);
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool = BlockBufPool::new(2);
        let held: Vec<_> = (0..5).map(|_| pool.acquire(8).freeze(&mut pool)).collect();
        assert_eq!(pool.stats().retained, 2);
        drop(held);
        assert_eq!(pool.acquire(8).as_slice().len(), 8);
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn recycle_returns_buffer_without_freeze() {
        let mut pool = BlockBufPool::new(2);
        pool.acquire(8).recycle(&mut pool);
        pool.acquire(8);
        let s = pool.stats();
        assert_eq!((s.acquires, s.reuses, s.allocs), (2, 1, 1));
    }

    #[test]
    fn stats_merge_and_rate() {
        let mut a = PoolStats { acquires: 4, reuses: 3, allocs: 1, retained: 2 };
        let b = PoolStats { acquires: 6, reuses: 0, allocs: 6, retained: 1 };
        a.merge(&b);
        assert_eq!(a, PoolStats { acquires: 10, reuses: 3, allocs: 7, retained: 3 });
        assert!((a.reuse_rate() - 0.3).abs() < 1e-12);
        assert_eq!(PoolStats::default().reuse_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "retain at least one")]
    fn zero_retention_rejected() {
        let _ = BlockBufPool::new(0);
    }
}
