//! Analytic queue model of the NVM device, calibrated to the paper's
//! Figure 2 measurements (4 KB random reads at queue depths 1–8 on a 375 GB
//! device).
//!
//! The paper reports, for queue depth (QD) 1 through 8:
//!
//! | QD | mean latency | P99 latency | bandwidth |
//! |----|--------------|-------------|-----------|
//! | 1  | ~10 µs       | ~20 µs      | ~0.4 GB/s |
//! | 2  | ~11 µs       | ~30 µs      | ~0.75 GB/s|
//! | 4  | ~13 µs       | ~45 µs      | ~1.25 GB/s|
//! | 8  | ~14 µs       | ~75 µs      | ~2.3 GB/s |
//!
//! Two regimes govern the closed-loop behaviour: below saturation latency is
//! dominated by a base service time plus a small per-outstanding-request
//! contention term; at saturation Little's law pins latency to
//! `qd * block_size / max_bandwidth`.

use serde::{Deserialize, Serialize};

/// Closed-loop latency/bandwidth model for a block NVM device.
///
/// # Example
///
/// ```
/// use nvm_sim::QueueModel;
///
/// let model = QueueModel::optane();
/// let qd8 = model.closed_loop(8);
/// // Bandwidth saturates near 2.3 GB/s as measured in the paper.
/// assert!((qd8.bandwidth_bytes_per_sec / 1e9 - 2.3).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueModel {
    /// Service time of a single 4 KB read with no contention, in seconds.
    pub base_latency_s: f64,
    /// Additional mean latency per extra outstanding request, in seconds.
    pub contention_s: f64,
    /// Device read bandwidth ceiling in bytes per second.
    pub max_bandwidth_bps: f64,
    /// Block size in bytes.
    pub block_size: usize,
    /// P99/mean latency ratio at queue depth 1.
    pub tail_base: f64,
    /// Additional P99/mean ratio per extra outstanding request.
    pub tail_slope: f64,
}

/// One point of the closed-loop model: the steady-state behaviour at a fixed
/// queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopPoint {
    /// Queue depth that produced this point.
    pub queue_depth: u32,
    /// Mean request latency in seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile request latency in seconds.
    pub p99_latency_s: f64,
    /// Sustained device read bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl QueueModel {
    /// Model calibrated to the 375 GB device measured in the paper (§2.2).
    pub fn optane() -> Self {
        QueueModel {
            base_latency_s: 10e-6,
            contention_s: 0.5e-6,
            max_bandwidth_bps: 2.3e9,
            block_size: 4096,
            tail_base: 2.0,
            tail_slope: 0.45,
        }
    }

    /// Mean latency at a given closed-loop queue depth, in seconds.
    ///
    /// Takes the max of the contention regime and the Little's-law bound at
    /// the bandwidth ceiling.
    pub fn mean_latency(&self, queue_depth: u32) -> f64 {
        assert!(queue_depth >= 1, "queue depth must be at least 1");
        let qd = queue_depth as f64;
        let contended = self.base_latency_s + self.contention_s * (qd - 1.0);
        let littles = qd * self.block_size as f64 / self.max_bandwidth_bps;
        contended.max(littles)
    }

    /// P99 latency at a given closed-loop queue depth, in seconds.
    pub fn p99_latency(&self, queue_depth: u32) -> f64 {
        let qd = queue_depth as f64;
        self.mean_latency(queue_depth) * (self.tail_base + self.tail_slope * (qd - 1.0))
    }

    /// Sustained bandwidth at a given closed-loop queue depth (Little's law).
    pub fn bandwidth(&self, queue_depth: u32) -> f64 {
        let qd = queue_depth as f64;
        (qd * self.block_size as f64 / self.mean_latency(queue_depth)).min(self.max_bandwidth_bps)
    }

    /// The full closed-loop operating point at a queue depth.
    pub fn closed_loop(&self, queue_depth: u32) -> ClosedLoopPoint {
        ClosedLoopPoint {
            queue_depth,
            mean_latency_s: self.mean_latency(queue_depth),
            p99_latency_s: self.p99_latency(queue_depth),
            bandwidth_bytes_per_sec: self.bandwidth(queue_depth),
        }
    }

    /// Mean latency under *open-loop* (arrival-rate-driven) load, in seconds.
    ///
    /// `offered_bps` is the offered device throughput in bytes/second. As
    /// utilization approaches 1 the queueing term diverges, reproducing the
    /// latency spike of the paper's Figure 5; beyond saturation the model
    /// returns an effectively unbounded latency (clamped at `cap` below).
    pub fn open_loop_mean_latency(&self, offered_bps: f64) -> f64 {
        assert!(offered_bps >= 0.0, "offered load must be non-negative");
        let rho = (offered_bps / self.max_bandwidth_bps).min(0.999);
        // M/D/1-flavoured waiting time: service/2 * rho/(1-rho), plus service.
        let service = self.base_latency_s;
        let wait = service / 2.0 * rho / (1.0 - rho);
        let cap = 100.0 * self.base_latency_s;
        (service + wait).min(cap)
    }

    /// P99 latency under open-loop load, in seconds.
    pub fn open_loop_p99_latency(&self, offered_bps: f64) -> f64 {
        let rho = (offered_bps / self.max_bandwidth_bps).min(0.999);
        // Tail amplification grows faster than the mean near saturation.
        let amplification = self.tail_base + 6.0 * rho * rho;
        let cap = 400.0 * self.base_latency_s;
        (self.open_loop_mean_latency(offered_bps) * amplification).min(cap)
    }

    /// Number of service channels implied by the model: how many requests the
    /// device can serve concurrently at the bandwidth ceiling.
    pub fn implied_channels(&self) -> f64 {
        self.max_bandwidth_bps * self.base_latency_s / self.block_size as f64
    }
}

impl Default for QueueModel {
    fn default() -> Self {
        QueueModel::optane()
    }
}

/// Cumulative accounting exposed by a [`QueueDepthTracker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DepthStats {
    /// Reads submitted to the device.
    pub submitted: u64,
    /// Reads completed by the device.
    pub completed: u64,
    /// Highest queue depth ever observed.
    pub peak_depth: u32,
    /// Sum over completed reads of the depth they completed at (divide by
    /// `completed` for the mean depth a read experienced).
    pub depth_weight: u64,
    /// Total simulated device-busy time in seconds.
    pub busy_s: f64,
}

impl DepthStats {
    /// Mean queue depth experienced by completed reads (`0.0` when none).
    pub fn mean_depth(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.depth_weight as f64 / self.completed as f64
        }
    }

    /// Folds another tracker's accounting into this one (peak takes the
    /// max, everything else adds).
    pub fn merge(&mut self, other: &DepthStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.depth_weight += other.depth_weight;
        self.busy_s += other.busy_s;
    }
}

/// Stateful io_uring-style submission accounting over a [`QueueModel`].
///
/// A serving shard submits block reads in batches with a bounded number in
/// flight; the tracker advances a virtual device clock as reads complete,
/// charging each completion `mean_latency(d) / d` seconds at the live
/// outstanding depth `d` (Little's-law throughput at that depth, including
/// the bandwidth ceiling). The depth can never go negative: completions on
/// an idle device are ignored.
///
/// # Example
///
/// ```
/// use nvm_sim::{QueueDepthTracker, QueueModel};
///
/// let mut t = QueueDepthTracker::new(QueueModel::optane(), 4);
/// // One isolated read costs exactly the QD1 service time.
/// let s = t.charge_batch(1);
/// assert!((s - 10e-6).abs() < 1e-9);
/// // A deep batch is served faster per read than QD1...
/// let batch = t.charge_batch(64);
/// assert!(batch < 64.0 * s);
/// assert_eq!(t.depth(), 0);
/// assert_eq!(t.stats().peak_depth, 4);
/// ```
#[derive(Debug, Clone)]
pub struct QueueDepthTracker {
    model: QueueModel,
    max_inflight: u32,
    inflight: u32,
    stats: DepthStats,
}

impl QueueDepthTracker {
    /// Creates a tracker bounding the device at `max_inflight` outstanding
    /// reads.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight` is zero.
    pub fn new(model: QueueModel, max_inflight: u32) -> Self {
        assert!(max_inflight >= 1, "need at least one in-flight slot");
        QueueDepthTracker { model, max_inflight, inflight: 0, stats: DepthStats::default() }
    }

    /// The model the tracker charges through.
    pub fn model(&self) -> &QueueModel {
        &self.model
    }

    /// The in-flight bound.
    pub fn max_inflight(&self) -> u32 {
        self.max_inflight
    }

    /// Current outstanding-read depth (never negative, never above the
    /// bound).
    pub fn depth(&self) -> u32 {
        self.inflight
    }

    /// Cumulative accounting since creation.
    pub fn stats(&self) -> DepthStats {
        self.stats
    }

    /// Submits one read, first completing the oldest outstanding read if
    /// the device is at its in-flight bound. Returns the simulated seconds
    /// spent waiting for that forced completion (zero when a slot was
    /// free).
    pub fn submit(&mut self) -> f64 {
        let mut waited = 0.0;
        if self.inflight >= self.max_inflight {
            waited = self.complete();
        }
        self.inflight += 1;
        self.stats.submitted += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.inflight);
        waited
    }

    /// Completes the oldest outstanding read, returning the simulated
    /// seconds it occupied the device at the current depth. A completion
    /// with nothing outstanding is a no-op returning `0.0` — the depth
    /// saturates at zero instead of going negative.
    pub fn complete(&mut self) -> f64 {
        if self.inflight == 0 {
            return 0.0;
        }
        let d = self.inflight;
        // At steady depth d the device retires one read every
        // mean_latency(d)/d seconds (Little's law; the mean latency already
        // folds in the bandwidth ceiling).
        let step = self.model.mean_latency(d) / f64::from(d);
        self.inflight -= 1;
        self.stats.completed += 1;
        self.stats.depth_weight += u64::from(d);
        self.stats.busy_s += step;
        step
    }

    /// Completes every outstanding read, returning the simulated seconds.
    pub fn drain(&mut self) -> f64 {
        let mut total = 0.0;
        while self.inflight > 0 {
            total += self.complete();
        }
        total
    }

    /// Charges a whole batch of reads synchronously: submits each read
    /// (completing the oldest when the in-flight bound is hit) and then
    /// drains, returning the total simulated device seconds the batch took.
    pub fn charge_batch(&mut self, reads: u64) -> f64 {
        let mut total = 0.0;
        for _ in 0..reads {
            total += self.submit();
        }
        total + self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_figure2() {
        let m = QueueModel::optane();
        // QD1: ~10 µs, ~0.4 GB/s.
        let p1 = m.closed_loop(1);
        assert!((p1.mean_latency_s * 1e6 - 10.0).abs() < 0.5, "{:?}", p1);
        assert!((p1.bandwidth_bytes_per_sec / 1e9 - 0.41).abs() < 0.05, "{:?}", p1);
        // QD8: bandwidth saturates near 2.3 GB/s.
        let p8 = m.closed_loop(8);
        assert!((p8.bandwidth_bytes_per_sec / 1e9 - 2.3).abs() < 0.05, "{:?}", p8);
        assert!(p8.mean_latency_s > p1.mean_latency_s);
        // P99 at QD8 lands in the 60-90 µs band of the figure.
        assert!(p8.p99_latency_s * 1e6 > 60.0 && p8.p99_latency_s * 1e6 < 90.0, "{:?}", p8);
    }

    #[test]
    fn latency_monotone_in_queue_depth() {
        let m = QueueModel::optane();
        let mut prev = 0.0;
        for qd in 1..=64 {
            let lat = m.mean_latency(qd);
            assert!(lat >= prev, "latency decreased at qd {qd}");
            prev = lat;
        }
    }

    #[test]
    fn bandwidth_monotone_and_bounded() {
        let m = QueueModel::optane();
        let mut prev = 0.0;
        for qd in 1..=64 {
            let bw = m.bandwidth(qd);
            assert!(bw + 1e-6 >= prev, "bandwidth decreased at qd {qd}");
            assert!(bw <= m.max_bandwidth_bps + 1e-6);
            prev = bw;
        }
    }

    #[test]
    fn open_loop_latency_spikes_near_saturation() {
        let m = QueueModel::optane();
        let low = m.open_loop_mean_latency(0.1 * m.max_bandwidth_bps);
        let high = m.open_loop_mean_latency(0.99 * m.max_bandwidth_bps);
        assert!(high > 3.0 * low, "expected spike: low={low}, high={high}");
        // Past saturation the latency is clamped, not NaN/negative.
        let over = m.open_loop_mean_latency(2.0 * m.max_bandwidth_bps);
        assert!(over.is_finite() && over >= high);
    }

    #[test]
    fn p99_exceeds_mean_everywhere() {
        let m = QueueModel::optane();
        for qd in 1..=16 {
            assert!(m.p99_latency(qd) > m.mean_latency(qd));
        }
        for frac in [0.1, 0.5, 0.9] {
            let offered = frac * m.max_bandwidth_bps;
            assert!(m.open_loop_p99_latency(offered) > m.open_loop_mean_latency(offered));
        }
    }

    #[test]
    #[should_panic(expected = "queue depth must be at least 1")]
    fn zero_queue_depth_rejected() {
        QueueModel::optane().mean_latency(0);
    }

    #[test]
    fn implied_channels_reasonable() {
        // 2.3 GB/s * 10 µs / 4 KB ≈ 5.6 concurrent requests.
        let c = QueueModel::optane().implied_channels();
        assert!(c > 4.0 && c < 8.0, "channels {c}");
    }

    #[test]
    fn tracker_depth_is_bounded_and_never_negative() {
        let mut t = QueueDepthTracker::new(QueueModel::optane(), 3);
        // Completions on an idle device are no-ops.
        assert_eq!(t.complete(), 0.0);
        assert_eq!(t.depth(), 0);
        for _ in 0..10 {
            t.submit();
            assert!(t.depth() <= 3, "depth {} exceeded the bound", t.depth());
        }
        t.drain();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.complete(), 0.0);
        let s = t.stats();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.peak_depth, 3);
    }

    #[test]
    fn tracker_depth1_charges_exactly_the_qd1_latency() {
        let m = QueueModel::optane();
        let mut t = QueueDepthTracker::new(m, 1);
        let total = t.charge_batch(7);
        assert!((total - 7.0 * m.mean_latency(1)).abs() < 1e-12, "total {total}");
        assert_eq!(t.stats().peak_depth, 1);
        assert!((t.stats().mean_depth() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_bound_serves_batches_faster_until_saturation() {
        let m = QueueModel::optane();
        let mut prev = f64::INFINITY;
        for bound in [1u32, 2, 4, 8] {
            let mut t = QueueDepthTracker::new(m, bound);
            let total = t.charge_batch(256);
            assert!(
                total <= prev + 1e-12,
                "batch time grew from {prev} to {total} at bound {bound}"
            );
            prev = total;
        }
        // But never faster than the bandwidth ceiling allows.
        let floor = 256.0 * m.block_size as f64 / m.max_bandwidth_bps;
        assert!(prev >= floor - 1e-12, "batch beat the bandwidth ceiling: {prev} < {floor}");
    }

    #[test]
    fn tracker_stats_merge_adds_and_maxes() {
        let m = QueueModel::optane();
        let mut a = QueueDepthTracker::new(m, 2);
        let mut b = QueueDepthTracker::new(m, 8);
        a.charge_batch(10);
        b.charge_batch(20);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.submitted, 30);
        assert_eq!(merged.completed, 30);
        assert_eq!(merged.peak_depth, 8);
        assert!((merged.busy_s - (a.stats().busy_s + b.stats().busy_s)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one in-flight slot")]
    fn tracker_rejects_zero_bound() {
        QueueDepthTracker::new(QueueModel::optane(), 0);
    }
}
