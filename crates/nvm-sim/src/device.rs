//! The simulated NVM block device: real byte storage at block granularity,
//! read/write counters, and endurance accounting.

use crate::endurance::EnduranceMeter;
use crate::error::NvmError;
use crate::queue::QueueModel;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated NVM device.
///
/// Use [`NvmConfig::optane_375gb`] for the device measured in the paper and
/// scale it down with [`NvmConfig::with_capacity_blocks`] for tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Block size in bytes (the paper's device reads at 4 KB granularity).
    pub block_size: usize,
    /// Device capacity in blocks.
    pub capacity_blocks: u64,
    /// Latency/bandwidth model.
    pub queue_model: QueueModel,
    /// Endurance budget in drive-writes-per-day times lifetime days.
    ///
    /// The paper notes typical devices tolerate 30 full drive writes per day
    /// (§2.2); we expose the budget as total drive writes for one simulated
    /// day so callers can check `writes/day < 30`.
    pub drive_writes_per_day_limit: f64,
}

impl NvmConfig {
    /// The 375 GB device benchmarked in the paper (§2.2, Figure 2).
    pub fn optane_375gb() -> Self {
        NvmConfig {
            block_size: 4096,
            capacity_blocks: 375 * 1000 * 1000 * 1000 / 4096,
            queue_model: QueueModel::optane(),
            drive_writes_per_day_limit: 30.0,
        }
    }

    /// Returns the same device scaled to `blocks` blocks (for tests/benches).
    pub fn with_capacity_blocks(mut self, blocks: u64) -> Self {
        self.capacity_blocks = blocks;
        self
    }

    /// Returns the same device with a different block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self.queue_model.block_size = block_size;
        self
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks * self.block_size as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::InvalidConfig`] if the block size or capacity is
    /// zero.
    pub fn validate(&self) -> Result<(), NvmError> {
        if self.block_size == 0 {
            return Err(NvmError::InvalidConfig("block size must be non-zero"));
        }
        if self.capacity_blocks == 0 {
            return Err(NvmError::InvalidConfig("capacity must be non-zero"));
        }
        Ok(())
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig::optane_375gb()
    }
}

/// Monotonic I/O counters maintained by a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCounters {
    /// Number of block reads served.
    pub reads: u64,
    /// Number of block writes served.
    pub writes: u64,
    /// Total bytes read (reads × block size).
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

/// Abstraction over block storage so higher layers can swap the simulated
/// device for an in-memory stub or (outside this reproduction) real hardware.
///
/// The trait is object-safe; `BandanaStore` holds a `Box<dyn BlockDevice>`.
pub trait BlockDevice: Send {
    /// Block size in bytes.
    fn block_size(&self) -> usize;

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Reads one block into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::BlockOutOfRange`] if `block` exceeds the capacity.
    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError>;

    /// Reads one block into `buf` (must be exactly one block long).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::BlockOutOfRange`] or [`NvmError::BadWriteSize`].
    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError>;

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::BlockOutOfRange`] if `block` exceeds the capacity
    /// or [`NvmError::BadWriteSize`] if `data` is not exactly one block.
    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError>;

    /// Snapshot of the I/O counters.
    fn counters(&self) -> IoCounters;

    /// Resets the I/O counters to zero (storage contents are untouched).
    fn reset_counters(&mut self);
}

/// The simulated NVM device: a flat byte arena plus counters, an endurance
/// meter, and the calibrated latency model.
///
/// Reads and writes move real bytes so that higher layers (the Bandana store)
/// serve actual embedding values rather than pretending.
///
/// # Example
///
/// ```
/// use nvm_sim::{BlockDevice, NvmConfig, NvmDevice};
///
/// # fn main() -> Result<(), nvm_sim::NvmError> {
/// let mut dev = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(8));
/// let block = vec![7u8; dev.block_size()];
/// dev.write_block(3, &block)?;
/// assert_eq!(dev.read_block(3)?, block);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    config: NvmConfig,
    storage: Vec<u8>,
    counters: IoCounters,
    endurance: EnduranceMeter,
}

impl NvmDevice {
    /// Creates a zero-filled device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero block size or capacity)
    /// or if the capacity does not fit in host memory.
    pub fn new(config: NvmConfig) -> Self {
        config.validate().expect("invalid NVM configuration");
        let bytes = usize::try_from(config.capacity_bytes()).expect("device too large to simulate");
        let endurance =
            EnduranceMeter::new(config.capacity_bytes(), config.drive_writes_per_day_limit);
        NvmDevice { storage: vec![0; bytes], config, counters: IoCounters::default(), endurance }
    }

    /// The device configuration.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// The latency/bandwidth model for this device.
    pub fn queue_model(&self) -> &QueueModel {
        &self.config.queue_model
    }

    /// Endurance accounting for this device.
    pub fn endurance(&self) -> &EnduranceMeter {
        &self.endurance
    }

    /// Mean latency in seconds for the reads counted so far if they were
    /// issued at the given closed-loop queue depth.
    pub fn estimated_read_time(&self, queue_depth: u32) -> f64 {
        self.counters.reads as f64 * self.config.queue_model.mean_latency(queue_depth)
            / queue_depth as f64
    }

    /// Copies one block's bytes into `buf` without touching the I/O
    /// counters — replication (e.g. [`crate::SparseDevice::carve`]) is not
    /// served traffic.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::BlockOutOfRange`] or [`NvmError::BadWriteSize`].
    pub fn copy_block_into(&self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        if buf.len() != self.config.block_size {
            return Err(NvmError::BadWriteSize {
                got: buf.len(),
                expected: self.config.block_size,
            });
        }
        let off = self.check_block(block)?;
        buf.copy_from_slice(&self.storage[off..off + self.config.block_size]);
        Ok(())
    }

    fn check_block(&self, block: u64) -> Result<usize, NvmError> {
        if block >= self.config.capacity_blocks {
            return Err(NvmError::BlockOutOfRange { block, capacity: self.config.capacity_blocks });
        }
        Ok(block as usize * self.config.block_size)
    }
}

impl BlockDevice for NvmDevice {
    fn block_size(&self) -> usize {
        self.config.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.config.capacity_blocks
    }

    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError> {
        let off = self.check_block(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.config.block_size as u64;
        Ok(self.storage[off..off + self.config.block_size].to_vec())
    }

    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        if buf.len() != self.config.block_size {
            return Err(NvmError::BadWriteSize {
                got: buf.len(),
                expected: self.config.block_size,
            });
        }
        let off = self.check_block(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.config.block_size as u64;
        buf.copy_from_slice(&self.storage[off..off + self.config.block_size]);
        Ok(())
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError> {
        if data.len() != self.config.block_size {
            return Err(NvmError::BadWriteSize {
                got: data.len(),
                expected: self.config.block_size,
            });
        }
        let off = self.check_block(block)?;
        self.counters.writes += 1;
        self.counters.bytes_written += self.config.block_size as u64;
        self.endurance.record_write(self.config.block_size as u64);
        self.storage[off..off + self.config.block_size].copy_from_slice(data);
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device() -> NvmDevice {
        NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(16))
    }

    #[test]
    fn read_write_round_trip() {
        let mut dev = small_device();
        let data: Vec<u8> = (0..dev.block_size()).map(|i| (i % 251) as u8).collect();
        dev.write_block(5, &data).unwrap();
        assert_eq!(dev.read_block(5).unwrap(), data);
        // Other blocks stay zeroed.
        assert!(dev.read_block(4).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn counters_track_io() {
        let mut dev = small_device();
        let block = vec![1u8; dev.block_size()];
        dev.write_block(0, &block).unwrap();
        dev.write_block(1, &block).unwrap();
        let _ = dev.read_block(0).unwrap();
        let c = dev.counters();
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 2);
        assert_eq!(c.bytes_read, 4096);
        assert_eq!(c.bytes_written, 8192);
        dev.reset_counters();
        assert_eq!(dev.counters(), IoCounters::default());
        // Storage survives a counter reset.
        assert_eq!(dev.read_block(0).unwrap(), block);
    }

    #[test]
    fn out_of_range_read_rejected() {
        let mut dev = small_device();
        let err = dev.read_block(16).unwrap_err();
        assert_eq!(err, NvmError::BlockOutOfRange { block: 16, capacity: 16 });
        // Failed ops must not bump counters.
        assert_eq!(dev.counters().reads, 0);
    }

    #[test]
    fn bad_write_size_rejected() {
        let mut dev = small_device();
        let err = dev.write_block(0, &[0u8; 100]).unwrap_err();
        assert_eq!(err, NvmError::BadWriteSize { got: 100, expected: 4096 });
    }

    #[test]
    fn read_block_into_validates_buffer() {
        let mut dev = small_device();
        let mut short = vec![0u8; 10];
        assert!(dev.read_block_into(0, &mut short).is_err());
        let mut buf = vec![0u8; dev.block_size()];
        dev.write_block(2, &vec![9u8; 4096]).unwrap();
        dev.read_block_into(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9));
    }

    #[test]
    fn custom_block_size() {
        let cfg = NvmConfig::optane_375gb().with_capacity_blocks(4).with_block_size(512);
        let mut dev = NvmDevice::new(cfg);
        assert_eq!(dev.block_size(), 512);
        dev.write_block(3, &vec![1u8; 512]).unwrap();
        assert_eq!(dev.read_block(3).unwrap().len(), 512);
    }

    #[test]
    fn endurance_accumulates_on_writes() {
        let mut dev = small_device();
        let block = vec![0u8; dev.block_size()];
        for b in 0..16 {
            dev.write_block(b, &block).unwrap();
        }
        // Wrote the whole (tiny) device once => 1.0 drive writes.
        assert!((dev.endurance().drive_writes() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_zero_sizes() {
        assert!(NvmConfig::optane_375gb().with_capacity_blocks(0).validate().is_err());
        let mut cfg = NvmConfig::optane_375gb();
        cfg.block_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn device_is_usable_as_trait_object() {
        let mut boxed: Box<dyn BlockDevice> = Box::new(small_device());
        boxed.write_block(0, &vec![3u8; 4096]).unwrap();
        assert_eq!(boxed.read_block(0).unwrap()[0], 3);
    }
}
