//! A shard-local device with a dense zero-based address space.
//!
//! [`SparseDevice::carve`](crate::SparseDevice::carve) gives a shard only
//! its own tables' blocks but keeps the *parent's* addressing, so
//! capacity and endurance can only be accounted against the whole parent
//! device. [`SparseDevice::rebase`](crate::SparseDevice::rebase) finishes
//! the job: the carved extents are packed into a [`RebasedDevice`] whose
//! blocks run `0..resident_blocks`, with its own capacity, I/O counters,
//! and [`EnduranceMeter`] sized to exactly the shard's share — per-shard
//! drive-writes-per-day checks and occupancy reporting become exact
//! instead of diluted by the other shards' blocks.
//!
//! The rebase is free: the sparse replica already stores its extents
//! densely packed in address order, so the storage is reinterpreted, not
//! copied. [`RebasedDevice::remap`] translates old parent addresses so
//! the owner can rebase its tables' base blocks in the same step.

use crate::device::{BlockDevice, IoCounters};
use crate::endurance::EnduranceMeter;
use crate::error::NvmError;
use crate::queue::QueueModel;

/// One contiguous run of blocks carried over from the parent address
/// space: `len` blocks that lived at `old_start` now live at `new_start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRemap {
    /// First block of the run in the parent (carve) address space.
    pub old_start: u64,
    /// First block of the run in the dense rebased address space.
    pub new_start: u64,
    /// Blocks in the run.
    pub len: u64,
}

/// A dense zero-based shard device produced by
/// [`SparseDevice::rebase`](crate::SparseDevice::rebase).
///
/// Capacity equals the resident block count, every block is valid, and
/// writes are charged to a per-shard [`EnduranceMeter`].
///
/// # Example
///
/// ```
/// use nvm_sim::{BlockDevice, NvmConfig, NvmDevice, SparseDevice};
///
/// # fn main() -> Result<(), nvm_sim::NvmError> {
/// let mut parent = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(64));
/// parent.write_block(40, &vec![7u8; parent.block_size()])?;
///
/// let shard = SparseDevice::carve(&parent, &[(8, 8), (40, 4)])?;
/// let mut dense = shard.rebase();
/// // Twelve resident blocks now live at addresses 0..12.
/// assert_eq!(dense.capacity_blocks(), 12);
/// let new = dense.remap(40).unwrap();
/// assert_eq!(new, 8);
/// assert_eq!(dense.read_block(new)?[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RebasedDevice {
    block_size: usize,
    queue_model: QueueModel,
    /// Remap runs sorted by `old_start` (equivalently by `new_start`).
    remap: Vec<BlockRemap>,
    storage: Vec<u8>,
    counters: IoCounters,
    endurance: EnduranceMeter,
}

impl RebasedDevice {
    /// Assembles the dense device from already-packed extent storage.
    /// `remap` must be sorted by `old_start` with `new_start` assigned
    /// densely in that order; `storage` holds the blocks in `new_start`
    /// order.
    pub(crate) fn from_packed(
        block_size: usize,
        queue_model: QueueModel,
        dwpd_limit: f64,
        remap: Vec<BlockRemap>,
        storage: Vec<u8>,
    ) -> Self {
        debug_assert_eq!(
            storage.len(),
            remap.iter().map(|r| r.len).sum::<u64>() as usize * block_size,
            "storage must hold exactly the remapped blocks"
        );
        // EnduranceMeter rejects zero capacity; an empty shard gets a
        // one-block meter it can never meaningfully write to.
        let capacity_bytes = (storage.len() as u64).max(block_size as u64);
        RebasedDevice {
            block_size,
            queue_model,
            remap,
            storage,
            counters: IoCounters::default(),
            endurance: EnduranceMeter::new(capacity_bytes, dwpd_limit),
        }
    }

    /// The latency/bandwidth model inherited from the parent device.
    pub fn queue_model(&self) -> &QueueModel {
        &self.queue_model
    }

    /// Per-shard write-endurance accounting, sized to this device's own
    /// capacity: `drive_writes()` is full rewrites *of the shard*, not of
    /// the parent.
    pub fn endurance(&self) -> &EnduranceMeter {
        &self.endurance
    }

    /// Restores the endurance counter from persisted state (warm
    /// restart): the device is rebuilt fresh on recovery, so the bytes
    /// written before the crash are re-imported here to keep drive-write
    /// accounting continuous across restarts.
    pub fn restore_endurance(&mut self, bytes_written: u64) {
        self.endurance.restore(bytes_written);
    }

    /// Translates a parent-space block address into this device's dense
    /// address space (`None` for blocks that were not carved).
    pub fn remap(&self, old_block: u64) -> Option<u64> {
        let idx = self.remap.partition_point(|r| r.old_start <= old_block);
        let r = self.remap.get(idx.checked_sub(1)?)?;
        (old_block < r.old_start + r.len).then(|| r.new_start + (old_block - r.old_start))
    }

    /// The remap runs, sorted by parent address.
    pub fn remap_table(&self) -> &[BlockRemap] {
        &self.remap
    }

    fn check_block(&self, block: u64) -> Result<usize, NvmError> {
        if block >= self.capacity_blocks() {
            return Err(NvmError::BlockOutOfRange { block, capacity: self.capacity_blocks() });
        }
        Ok(block as usize * self.block_size)
    }
}

impl BlockDevice for RebasedDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        (self.storage.len() / self.block_size.max(1)) as u64
    }

    fn read_block(&mut self, block: u64) -> Result<Vec<u8>, NvmError> {
        let off = self.check_block(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.block_size as u64;
        Ok(self.storage[off..off + self.block_size].to_vec())
    }

    fn read_block_into(&mut self, block: u64, buf: &mut [u8]) -> Result<(), NvmError> {
        if buf.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: buf.len(), expected: self.block_size });
        }
        let off = self.check_block(block)?;
        self.counters.reads += 1;
        self.counters.bytes_read += self.block_size as u64;
        buf.copy_from_slice(&self.storage[off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&mut self, block: u64, data: &[u8]) -> Result<(), NvmError> {
        if data.len() != self.block_size {
            return Err(NvmError::BadWriteSize { got: data.len(), expected: self.block_size });
        }
        let off = self.check_block(block)?;
        self.counters.writes += 1;
        self.counters.bytes_written += self.block_size as u64;
        self.endurance.record_write(self.block_size as u64);
        self.storage[off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = IoCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{NvmConfig, NvmDevice};
    use crate::sparse::SparseDevice;

    fn parent() -> NvmDevice {
        let mut dev = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(32));
        for b in 0..32u64 {
            dev.write_block(b, &vec![b as u8; dev.block_size()]).unwrap();
        }
        dev
    }

    #[test]
    fn rebase_packs_extents_densely_in_address_order() {
        let dense = SparseDevice::carve(&parent(), &[(20, 2), (4, 4)]).unwrap().rebase();
        assert_eq!(dense.capacity_blocks(), 6);
        assert_eq!(
            dense.remap_table(),
            &[
                BlockRemap { old_start: 4, new_start: 0, len: 4 },
                BlockRemap { old_start: 20, new_start: 4, len: 2 },
            ]
        );
        let mut dense = dense;
        for (old, new) in [(4u64, 0u64), (7, 3), (20, 4), (21, 5)] {
            assert_eq!(dense.remap(old), Some(new), "old block {old}");
            assert_eq!(dense.read_block(new).unwrap()[0], old as u8);
        }
        for missing in [0u64, 3, 8, 19, 22, 31, 1000] {
            assert_eq!(dense.remap(missing), None, "block {missing} was not carved");
        }
    }

    #[test]
    fn out_of_range_dense_blocks_are_rejected() {
        let mut dense = SparseDevice::carve(&parent(), &[(4, 4)]).unwrap().rebase();
        assert_eq!(
            dense.read_block(4).unwrap_err(),
            NvmError::BlockOutOfRange { block: 4, capacity: 4 }
        );
        assert_eq!(dense.counters().reads, 0);
    }

    #[test]
    fn per_shard_endurance_counts_shard_drive_writes() {
        let mut dense = SparseDevice::carve(&parent(), &[(0, 4)]).unwrap().rebase();
        let block = vec![1u8; dense.block_size()];
        for b in 0..4 {
            dense.write_block(b, &block).unwrap();
        }
        // Rewrote the whole 4-block shard once => exactly 1.0 shard drive
        // writes, regardless of the 32-block parent.
        assert!((dense.endurance().drive_writes() - 1.0).abs() < 1e-9);
        assert_eq!(dense.endurance().bytes_written(), 4 * dense.block_size() as u64);
        assert_eq!(dense.counters().writes, 4);
    }

    #[test]
    fn empty_carve_rebases_to_an_empty_device() {
        let mut dense = SparseDevice::carve(&parent(), &[]).unwrap().rebase();
        assert_eq!(dense.capacity_blocks(), 0);
        assert!(dense.read_block(0).is_err());
        assert_eq!(dense.remap(0), None);
    }

    #[test]
    fn reads_and_writes_round_trip_with_counters() {
        let mut dense = SparseDevice::carve(&parent(), &[(8, 2)]).unwrap().rebase();
        let data = vec![0xEEu8; dense.block_size()];
        dense.write_block(1, &data).unwrap();
        assert_eq!(dense.read_block(1).unwrap(), data);
        let mut buf = vec![0u8; dense.block_size()];
        dense.read_block_into(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
        let c = dense.counters();
        assert_eq!((c.reads, c.writes), (2, 1));
        assert!(matches!(dense.write_block(0, &[1]), Err(NvmError::BadWriteSize { .. })));
    }
}
