//! Event-driven simulation of the device under closed- and open-loop load.
//!
//! The analytic [`QueueModel`] gives the expected operating
//! point; this module actually *runs* a request stream through a pipelined
//! server to produce latency distributions, which is what the paper's Fio
//! benchmarks do on real hardware (Figures 2 and 5).
//!
//! The device is modelled as a pipeline: every request takes at least the
//! base service time end-to-end, and completions are spaced at least
//! `block_size / max_bandwidth` apart. This two-parameter model reproduces
//! both ends of Figure 2 — latency-bound behaviour at queue depth 1 and
//! bandwidth-bound behaviour at queue depth 8 — and the saturation spike of
//! Figure 5.

use crate::queue::QueueModel;
use crate::stats::Histogram;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a simulation run: the latency distribution and achieved
/// bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Number of requests completed.
    pub completed: u64,
    /// Wall-clock span of the simulation in seconds.
    pub duration_s: f64,
    /// Mean request latency in seconds.
    pub mean_latency_s: f64,
    /// P99 request latency in seconds.
    pub p99_latency_s: f64,
    /// Achieved device bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

/// Ordered-float wrapper so completion times can live in a binary heap.
#[derive(PartialEq, PartialOrd)]
struct Time(f64);

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("simulation times are never NaN")
    }
}

/// Draws a service time with mean exactly `base_latency`: a deterministic
/// floor plus an exponential tail that reproduces the P99/mean gap seen on
/// the real device (P99 ≈ 0.8·base + 4.6·0.2·base ≈ 1.7× the mean).
fn service_time(model: &QueueModel, rng: &mut ChaCha12Rng) -> f64 {
    let base = model.base_latency_s;
    let u: f64 = rng.gen::<f64>().max(1e-12);
    0.8 * base + (-u.ln()) * 0.2 * base
}

/// Simulates a *closed-loop* workload: `queue_depth` workers each issue a new
/// request as soon as their previous one completes (Fio with libaio and a
/// fixed iodepth — the paper's Figure 2 setup).
///
/// # Example
///
/// ```
/// use nvm_sim::{QueueModel, sim::closed_loop_sim};
///
/// let report = closed_loop_sim(&QueueModel::optane(), 8, 20_000, 42);
/// assert!(report.bandwidth_bytes_per_sec > 2.0e9);
/// ```
///
/// # Panics
///
/// Panics if `queue_depth` is zero or `requests` is zero.
pub fn closed_loop_sim(
    model: &QueueModel,
    queue_depth: u32,
    requests: u64,
    seed: u64,
) -> SimReport {
    assert!(queue_depth >= 1, "queue depth must be at least 1");
    assert!(requests > 0, "must simulate at least one request");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let spacing = model.block_size as f64 / model.max_bandwidth_bps;

    // Heap of (completion time) for outstanding requests; the pipeline cursor
    // tracks the earliest slot for the next completion.
    let mut outstanding: BinaryHeap<Reverse<Time>> = BinaryHeap::new();
    let mut pipe = 0.0f64;
    let mut hist = Histogram::new();
    let mut completed = 0u64;
    let mut last_completion = 0.0f64;

    // `pipe` tracks pipeline slots: completions are spaced at least
    // `spacing` apart, but a long service time does not stall the pipeline
    // (the device serves requests concurrently), so throughput saturates at
    // the bandwidth ceiling while latency keeps its service-time tail.
    let issue = |start: f64, pipe: &mut f64, rng: &mut ChaCha12Rng, hist: &mut Histogram| {
        let slot = (*pipe + spacing).max(start);
        *pipe = slot;
        let completion = slot.max(start + service_time(model, rng));
        hist.record(completion - start);
        Reverse(Time(completion))
    };

    for _ in 0..queue_depth {
        let ev = issue(0.0, &mut pipe, &mut rng, &mut hist);
        outstanding.push(ev);
    }

    while completed < requests {
        let Reverse(Time(now)) = outstanding.pop().expect("closed loop always has work");
        completed += 1;
        last_completion = now;
        if completed + (outstanding.len() as u64) < requests {
            let ev = issue(now, &mut pipe, &mut rng, &mut hist);
            outstanding.push(ev);
        }
    }

    let duration = last_completion.max(f64::MIN_POSITIVE);
    SimReport {
        completed,
        duration_s: duration,
        mean_latency_s: hist.mean(),
        p99_latency_s: hist.percentile(99.0),
        bandwidth_bytes_per_sec: completed as f64 * model.block_size as f64 / duration,
    }
}

/// An *open-loop* simulator: requests arrive by a Poisson process at a target
/// rate regardless of completions (the paper's Figure 5 setup, where latency
/// is measured as a function of offered application throughput).
#[derive(Debug)]
pub struct OpenLoopSim {
    model: QueueModel,
    rng: ChaCha12Rng,
}

impl OpenLoopSim {
    /// Creates a simulator over the given device model.
    pub fn new(model: QueueModel, seed: u64) -> Self {
        OpenLoopSim { model, rng: ChaCha12Rng::seed_from_u64(seed) }
    }

    /// Runs `requests` block reads arriving at `offered_bps` bytes/second of
    /// *device* throughput and reports the latency distribution.
    ///
    /// Offered loads at or beyond the bandwidth ceiling produce an unbounded
    /// queue; latencies then grow with the trace length, mirroring the spike
    /// in Figure 5.
    ///
    /// # Panics
    ///
    /// Panics if `offered_bps` is not positive or `requests` is zero.
    pub fn run(&mut self, offered_bps: f64, requests: u64) -> SimReport {
        assert!(offered_bps > 0.0, "offered load must be positive");
        assert!(requests > 0, "must simulate at least one request");
        let arrival_rate = offered_bps / self.model.block_size as f64; // req/s
        let spacing = self.model.block_size as f64 / self.model.max_bandwidth_bps;

        // Lindley-style recursion over arrivals in order: each request
        // occupies the next pipeline slot (at least `spacing` after the
        // previous slot, no earlier than its arrival) and completes no
        // earlier than one full service time after arriving.
        let mut hist = Histogram::new();
        let mut arrival = 0.0f64;
        let mut pipe = 0.0f64;
        let mut last_completion = 0.0f64;
        for _ in 0..requests {
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            arrival += -u.ln() / arrival_rate;
            let svc = service_time(&self.model, &mut self.rng);
            let slot = (pipe + spacing).max(arrival);
            pipe = slot;
            let completion = slot.max(arrival + svc);
            last_completion = last_completion.max(completion);
            hist.record(completion - arrival);
        }

        let duration = last_completion.max(f64::MIN_POSITIVE);
        SimReport {
            completed: requests,
            duration_s: duration,
            mean_latency_s: hist.mean(),
            p99_latency_s: hist.percentile(99.0),
            bandwidth_bytes_per_sec: requests as f64 * self.model.block_size as f64 / duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_qd1_matches_base_latency() {
        let m = QueueModel::optane();
        let r = closed_loop_sim(&m, 1, 20_000, 1);
        // Mean ≈ base latency (plus small tail mass).
        assert!(
            (r.mean_latency_s - m.base_latency_s).abs() / m.base_latency_s < 0.4,
            "mean {} vs base {}",
            r.mean_latency_s,
            m.base_latency_s
        );
        assert!(r.p99_latency_s > r.mean_latency_s);
    }

    #[test]
    fn closed_loop_bandwidth_scales_with_qd_then_saturates() {
        let m = QueueModel::optane();
        let bw1 = closed_loop_sim(&m, 1, 20_000, 2).bandwidth_bytes_per_sec;
        let bw4 = closed_loop_sim(&m, 4, 20_000, 2).bandwidth_bytes_per_sec;
        let bw8 = closed_loop_sim(&m, 8, 20_000, 2).bandwidth_bytes_per_sec;
        let bw16 = closed_loop_sim(&m, 16, 20_000, 2).bandwidth_bytes_per_sec;
        assert!(bw4 > 2.0 * bw1, "bw1={bw1}, bw4={bw4}");
        assert!(bw8 > bw4);
        // Saturation: QD16 adds little over QD8.
        assert!(bw16 < 1.15 * bw8, "bw8={bw8}, bw16={bw16}");
        // Ceiling respected within tolerance.
        assert!(bw16 < 1.02 * m.max_bandwidth_bps);
        // QD8 reaches the paper's ~2.3 GB/s.
        assert!(bw8 > 2.0e9, "bw8={bw8}");
    }

    #[test]
    fn closed_loop_deterministic_per_seed() {
        let m = QueueModel::optane();
        let a = closed_loop_sim(&m, 4, 5_000, 99);
        let b = closed_loop_sim(&m, 4, 5_000, 99);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.p99_latency_s, b.p99_latency_s);
    }

    #[test]
    fn open_loop_latency_spikes_near_saturation() {
        let m = QueueModel::optane();
        let low = OpenLoopSim::new(m, 7).run(0.2 * m.max_bandwidth_bps, 30_000);
        let high = OpenLoopSim::new(m, 7).run(0.98 * m.max_bandwidth_bps, 30_000);
        assert!(
            high.mean_latency_s > 1.5 * low.mean_latency_s,
            "low {} high {}",
            low.mean_latency_s,
            high.mean_latency_s
        );
        assert!(high.p99_latency_s > high.mean_latency_s);
    }

    #[test]
    fn open_loop_achieves_offered_bandwidth_below_saturation() {
        let m = QueueModel::optane();
        let offered = 0.5 * m.max_bandwidth_bps;
        let r = OpenLoopSim::new(m, 3).run(offered, 50_000);
        assert!(
            (r.bandwidth_bytes_per_sec - offered).abs() / offered < 0.1,
            "offered {offered}, achieved {}",
            r.bandwidth_bytes_per_sec
        );
    }

    #[test]
    fn oversaturated_open_loop_is_finite_but_slow() {
        let m = QueueModel::optane();
        let r = OpenLoopSim::new(m, 11).run(2.0 * m.max_bandwidth_bps, 10_000);
        assert!(r.mean_latency_s.is_finite());
        // Queue grows without bound: mean latency far above base.
        assert!(r.mean_latency_s > 10.0 * m.base_latency_s);
        // Device runs at its ceiling.
        assert!(
            (r.bandwidth_bytes_per_sec - m.max_bandwidth_bps).abs() / m.max_bandwidth_bps < 0.05
        );
    }

    #[test]
    #[should_panic(expected = "queue depth must be at least 1")]
    fn closed_loop_rejects_zero_qd() {
        closed_loop_sim(&QueueModel::optane(), 0, 10, 0);
    }
}
