//! Property-based tests for the Bandana store's online re-layout.

use bandana_cache::AdmissionPolicy;
use bandana_core::TableStore;
use bandana_partition::{AccessFrequency, BlockLayout};
use bandana_trace::{spec::TableSpec, EmbeddingTable, TopicModel};
use nvm_sim::{BlockDevice, NvmConfig, NvmDevice};
use proptest::prelude::*;

const VECTORS: u32 = 96;
const DIM: usize = 8; // 32 B vectors
const PER_BLOCK: usize = 8;

fn store() -> (TableStore, NvmDevice, EmbeddingTable) {
    let spec = TableSpec::test_small(VECTORS);
    let topics = TopicModel::new(&spec, 1);
    let emb = EmbeddingTable::synthesize(VECTORS, DIM, &topics, 7);
    let layout = BlockLayout::identity(VECTORS, PER_BLOCK);
    let mut device =
        NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64));
    let mut table = TableStore::new(
        0,
        layout,
        AccessFrequency::zeros(VECTORS),
        AdmissionPolicy::None,
        16,
        1.5,
        0,
        DIM * 4,
    );
    table.write_embeddings(&mut device, &emb).unwrap();
    device.reset_counters();
    (table, device, emb)
}

/// Derives a permutation of `0..VECTORS` from random draws (Fisher–Yates
/// over the identity order).
fn permutation(swaps: &[(u32, u32)]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..VECTORS).collect();
    for &(a, b) in swaps {
        order.swap(a as usize % VECTORS as usize, b as usize % VECTORS as usize);
    }
    order
}

proptest! {
    /// `apply_layout` under arbitrary remap sequences preserves read
    /// correctness — every key returns identical bytes before and after,
    /// with lookups interleaved between applies — and leaves the layout
    /// dense: the block count never grows.
    #[test]
    fn arbitrary_remap_sequences_preserve_reads_and_density(
        remaps in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), any::<u32>()), 0..24),
            1..6,
        ),
        probes in proptest::collection::vec(0u32..VECTORS, 4..16),
    ) {
        let (mut table, mut device, emb) = store();
        let blocks_before = table.layout().num_blocks();

        for swaps in &remaps {
            // Lookups interleaved with the remap sequence: some before...
            for &v in &probes[..probes.len() / 2] {
                let got = table.lookup(&mut device, v).unwrap();
                prop_assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice());
            }

            let new = BlockLayout::from_order(permutation(swaps), PER_BLOCK);
            table.apply_layout(&mut device, new).unwrap();

            // ...and some immediately after each apply.
            for &v in &probes[probes.len() / 2..] {
                let got = table.lookup(&mut device, v).unwrap();
                prop_assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice());
            }

            prop_assert_eq!(table.layout().num_blocks(), blocks_before, "block count grew");
            prop_assert_eq!(table.layout().num_vectors(), VECTORS);
        }

        // Full sweep at the end: every key intact under the final layout.
        for v in 0..VECTORS {
            let got = table.lookup(&mut device, v).unwrap();
            prop_assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice(), "vector {}", v);
        }
    }

    /// A remap is invisible to the cache: whatever was cached before the
    /// apply still hits afterwards without touching the device.
    #[test]
    fn cached_entries_survive_any_remap(
        swaps in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..32),
        cached in proptest::collection::vec(0u32..VECTORS, 1..8),
    ) {
        let (mut table, mut device, emb) = store();
        for &v in &cached {
            table.lookup(&mut device, v).unwrap();
        }
        let new = BlockLayout::from_order(permutation(&swaps), PER_BLOCK);
        table.apply_layout(&mut device, new).unwrap();
        let reads = device.counters().reads;
        for &v in &cached {
            let got = table.lookup(&mut device, v).unwrap();
            prop_assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice());
        }
        prop_assert_eq!(device.counters().reads, reads, "cached keys must not re-read NVM");
    }
}
