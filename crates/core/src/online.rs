//! Online threshold re-tuning.
//!
//! The paper runs the miniature caches *in real time* against production
//! traffic and periodically adopts the best threshold per table (§4.3.3).
//! [`OnlineTuner`] implements that loop for one table: it shadows the live
//! lookup stream through a [`MiniatureCacheSet`] and, every `epoch_lookups`
//! observed lookups, re-evaluates the candidates and reports the winner.
//! The Bandana store applies the winner via
//! [`TableStore::set_policy`](crate::TableStore::set_policy).
//!
//! Workloads drift (users' interests shift between retrainings), so the
//! simulators are restarted each epoch: stale hit statistics from an old
//! traffic mix would otherwise dominate the choice forever.

use bandana_cache::{AdmissionPolicy, MiniatureCacheSet};
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};

/// Configuration of an [`OnlineTuner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTunerConfig {
    /// Production cache size being tuned for, in vectors.
    pub cache_capacity: usize,
    /// Miniature-cache sampling rate.
    pub sampling_rate: f64,
    /// Candidate thresholds.
    pub candidate_thresholds: Vec<u32>,
    /// Observed lookups per tuning epoch.
    pub epoch_lookups: u64,
    /// Hash salt.
    pub salt: u64,
}

impl Default for OnlineTunerConfig {
    fn default() -> Self {
        OnlineTunerConfig {
            cache_capacity: 4096,
            sampling_rate: 0.1,
            candidate_thresholds: vec![5, 10, 15, 20],
            epoch_lookups: 100_000,
            salt: 0,
        }
    }
}

/// A decision emitted at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningDecision {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// The winning threshold.
    pub threshold: u32,
    /// Its estimated effective-bandwidth gain over the no-prefetch mini
    /// baseline.
    pub estimated_gain: f64,
}

/// Periodically re-tunes one table's admission threshold from live traffic.
///
/// # Example
///
/// ```
/// use bandana_core::online::{OnlineTuner, OnlineTunerConfig};
/// use bandana_partition::{AccessFrequency, BlockLayout};
///
/// let layout = BlockLayout::identity(512, 32);
/// let freq = AccessFrequency::zeros(512);
/// let config = OnlineTunerConfig {
///     cache_capacity: 64,
///     sampling_rate: 1.0,
///     candidate_thresholds: vec![2, 5],
///     epoch_lookups: 100,
///     salt: 1,
/// };
/// let mut tuner = OnlineTuner::new(&layout, &freq, config);
/// let mut decisions = 0;
/// for i in 0..250u32 {
///     if tuner.observe(i % 512).is_some() {
///         decisions += 1;
///     }
/// }
/// assert_eq!(decisions, 2); // epochs complete at lookups 100 and 200
/// ```
#[derive(Debug)]
pub struct OnlineTuner<'a> {
    layout: &'a BlockLayout,
    freq: &'a AccessFrequency,
    config: OnlineTunerConfig,
    minis: MiniatureCacheSet<'a>,
    epoch: u64,
    seen_this_epoch: u64,
    current: Option<TuningDecision>,
}

impl<'a> OnlineTuner<'a> {
    /// Creates the tuner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no candidates, zero epoch
    /// length or capacity, sampling rate outside `(0, 1]`).
    pub fn new(
        layout: &'a BlockLayout,
        freq: &'a AccessFrequency,
        config: OnlineTunerConfig,
    ) -> Self {
        assert!(config.epoch_lookups > 0, "epoch must be non-empty");
        assert!(!config.candidate_thresholds.is_empty(), "need candidate thresholds");
        let minis = MiniatureCacheSet::new(
            layout,
            freq,
            config.cache_capacity,
            config.sampling_rate,
            &config.candidate_thresholds,
            config.salt,
        );
        OnlineTuner { layout, freq, config, minis, epoch: 0, seen_this_epoch: 0, current: None }
    }

    /// Observes one live lookup. Returns a decision at each epoch boundary.
    pub fn observe(&mut self, v: u32) -> Option<TuningDecision> {
        self.minis.observe(v);
        self.seen_this_epoch += 1;
        if self.seen_this_epoch < self.config.epoch_lookups {
            return None;
        }
        self.epoch += 1;
        self.seen_this_epoch = 0;
        let threshold = self.minis.best_threshold();
        let estimated_gain = self
            .minis
            .estimated_gains()
            .into_iter()
            .find(|&(t, _)| t == threshold)
            .map(|(_, g)| g)
            .unwrap_or(0.0);
        let decision = TuningDecision { epoch: self.epoch, threshold, estimated_gain };
        self.current = Some(decision);
        // Restart the simulators so the next epoch reflects fresh traffic.
        self.minis = MiniatureCacheSet::new(
            self.layout,
            self.freq,
            self.config.cache_capacity,
            self.config.sampling_rate,
            &self.config.candidate_thresholds,
            self.config.salt.wrapping_add(self.epoch),
        );
        Some(decision)
    }

    /// The policy implied by the latest decision, if an epoch has completed.
    pub fn current_policy(&self) -> Option<AdmissionPolicy> {
        self.current.map(|d| AdmissionPolicy::Threshold { t: d.threshold })
    }

    /// Number of completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (BlockLayout, AccessFrequency) {
        let n = 512u32;
        let layout = BlockLayout::identity(n, 32);
        // Hot first block in training.
        let train: Vec<Vec<u32>> = (0..100).map(|_| (0..16u32).collect()).collect();
        let freq = AccessFrequency::from_queries(n, train.iter().map(|q| q.as_slice()));
        (layout, freq)
    }

    #[test]
    fn emits_decision_per_epoch() {
        let (layout, freq) = fixture();
        let config = OnlineTunerConfig {
            cache_capacity: 64,
            sampling_rate: 1.0,
            candidate_thresholds: vec![2, 1_000],
            epoch_lookups: 50,
            salt: 1,
        };
        let mut tuner = OnlineTuner::new(&layout, &freq, config);
        let mut decisions = Vec::new();
        for i in 0..200u32 {
            if let Some(d) = tuner.observe(i % 16) {
                decisions.push(d);
            }
        }
        assert_eq!(decisions.len(), 4);
        assert_eq!(tuner.epochs(), 4);
        assert_eq!(decisions[0].epoch, 1);
        assert_eq!(decisions[3].epoch, 4);
        // The hot-scan workload favours admitting (t=2 over t=1000).
        assert_eq!(decisions.last().unwrap().threshold, 2);
        assert_eq!(tuner.current_policy(), Some(AdmissionPolicy::Threshold { t: 2 }));
    }

    #[test]
    fn no_decision_before_first_epoch() {
        let (layout, freq) = fixture();
        let config = OnlineTunerConfig {
            cache_capacity: 64,
            sampling_rate: 1.0,
            candidate_thresholds: vec![5],
            epoch_lookups: 1_000,
            salt: 2,
        };
        let mut tuner = OnlineTuner::new(&layout, &freq, config);
        for i in 0..999u32 {
            assert!(tuner.observe(i % 512).is_none());
        }
        assert!(tuner.current_policy().is_none());
        assert!(tuner.observe(0).is_some());
    }

    #[test]
    fn adapts_when_workload_shifts() {
        // Epoch 1: pure cold scan over the whole table (prefetching cold
        // vectors is useless because nothing repeats). Epoch 2: hot-block
        // scan (prefetching pays). The tuner should prefer a blocking
        // threshold first and an admitting one after the shift.
        let n = 512u32;
        let layout = BlockLayout::identity(n, 32);
        let train: Vec<Vec<u32>> = (0..100).map(|_| (0..32u32).collect()).collect();
        let freq = AccessFrequency::from_queries(n, train.iter().map(|q| q.as_slice()));
        let config = OnlineTunerConfig {
            cache_capacity: 48,
            sampling_rate: 1.0,
            candidate_thresholds: vec![2, 1_000_000],
            epoch_lookups: 512,
            salt: 3,
        };
        let mut tuner = OnlineTuner::new(&layout, &freq, config);
        // Epoch 1: sequential cold scan.
        let mut first = None;
        for v in 0..512u32 {
            if let Some(d) = tuner.observe(v) {
                first = Some(d);
            }
        }
        // Epoch 2: repeated hot-block scan.
        let mut second = None;
        for i in 0..512u32 {
            if let Some(d) = tuner.observe(i % 32) {
                second = Some(d);
            }
        }
        let second = second.expect("second epoch completes");
        assert_eq!(second.threshold, 2, "hot epoch should admit prefetches: {first:?} {second:?}");
        assert!(second.estimated_gain > 0.0);
    }

    #[test]
    #[should_panic(expected = "epoch must be non-empty")]
    fn zero_epoch_rejected() {
        let (layout, freq) = fixture();
        let config = OnlineTunerConfig { epoch_lookups: 0, ..Default::default() };
        let _ = OnlineTuner::new(&layout, &freq, config);
    }
}
