//! Effective-bandwidth evaluation: policy vs baseline on the same trace.
//!
//! All the paper's limited-cache experiments (Figures 10–16, Table 2) report
//! the *effective bandwidth increase* of a configuration over the baseline
//! policy that caches one vector per block read. This module runs both
//! simulations side by side and reports the per-table gains.

use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
use bandana_partition::{AccessFrequency, BlockLayout};
use bandana_trace::Trace;
use serde::{Deserialize, Serialize};

/// One table's effective-bandwidth result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableGain {
    /// Table index.
    pub table: usize,
    /// Block reads under the evaluated policy.
    pub policy_block_reads: u64,
    /// Block reads under the single-vector baseline with the same cache
    /// size.
    pub baseline_block_reads: u64,
    /// Policy hit rate.
    pub hit_rate: f64,
    /// Effective-bandwidth increase (`baseline / policy − 1`).
    pub gain: f64,
}

/// Evaluates an admission policy per table against the baseline, on one
/// evaluation trace.
///
/// `layouts`, `freqs`, `capacities`, and `policies` are per-table (same
/// length); the baseline runs with the same layout and capacity but no
/// prefetching.
///
/// # Example
///
/// ```
/// use bandana_cache::AdmissionPolicy;
/// use bandana_core::effective_bandwidth_sweep;
/// use bandana_partition::{AccessFrequency, BlockLayout};
/// use bandana_trace::{ModelSpec, TraceGenerator};
///
/// let spec = ModelSpec::test_small();
/// let trace = TraceGenerator::new(&spec, 1).generate_requests(100);
/// let layouts: Vec<BlockLayout> = spec.tables.iter()
///     .map(|t| BlockLayout::identity(t.num_vectors, 32)).collect();
/// let freqs: Vec<AccessFrequency> = spec.tables.iter()
///     .map(|t| AccessFrequency::zeros(t.num_vectors)).collect();
/// let gains = effective_bandwidth_sweep(
///     &trace,
///     &layouts,
///     &freqs,
///     &[128, 128],
///     &[AdmissionPolicy::None, AdmissionPolicy::None],
///     1.5,
/// );
/// assert_eq!(gains.len(), 2);
/// // The None policy IS the baseline: zero gain by construction.
/// assert!(gains.iter().all(|g| g.gain.abs() < 1e-12));
/// ```
///
/// # Panics
///
/// Panics if the per-table slices disagree in length.
pub fn effective_bandwidth_sweep(
    eval: &Trace,
    layouts: &[BlockLayout],
    freqs: &[AccessFrequency],
    capacities: &[usize],
    policies: &[AdmissionPolicy],
    shadow_multiplier: f64,
) -> Vec<TableGain> {
    assert_eq!(layouts.len(), freqs.len(), "layouts/freqs length mismatch");
    assert_eq!(layouts.len(), capacities.len(), "layouts/capacities length mismatch");
    assert_eq!(layouts.len(), policies.len(), "layouts/policies length mismatch");

    (0..layouts.len())
        .map(|t| {
            let stream = eval.table_stream(t);
            let mut policy_sim = PrefetchCacheSim::with_shadow_multiplier(
                &layouts[t],
                capacities[t],
                policies[t],
                freqs[t].clone(),
                shadow_multiplier,
            );
            let mut baseline_sim = PrefetchCacheSim::new(
                &layouts[t],
                capacities[t],
                AdmissionPolicy::None,
                freqs[t].clone(),
            );
            for &v in &stream {
                policy_sim.lookup(v);
                baseline_sim.lookup(v);
            }
            let policy_reads = policy_sim.metrics().block_reads;
            let baseline_reads = baseline_sim.metrics().block_reads;
            TableGain {
                table: t,
                policy_block_reads: policy_reads,
                baseline_block_reads: baseline_reads,
                hit_rate: policy_sim.metrics().hit_rate(),
                gain: policy_sim.metrics().effective_bandwidth_increase(baseline_reads),
            }
        })
        .collect()
}

/// Lookup-weighted mean gain across tables (the paper's headline numbers).
pub fn overall_gain(gains: &[TableGain]) -> f64 {
    let policy: u64 = gains.iter().map(|g| g.policy_block_reads).sum();
    let baseline: u64 = gains.iter().map(|g| g.baseline_block_reads).sum();
    if policy == 0 {
        0.0
    } else {
        baseline as f64 / policy as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bandana_trace::{ModelSpec, TraceGenerator};

    fn fixtures() -> (Trace, Vec<BlockLayout>, Vec<AccessFrequency>) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, 7);
        let train = generator.generate_requests(300);
        let eval = generator.generate_requests(150);
        let layouts: Vec<BlockLayout> = spec
            .tables
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                let cfg = bandana_partition::ShpConfig {
                    block_capacity: 32,
                    iterations: 6,
                    seed: t as u64,
                    parallel_depth: 0,
                };
                let order = bandana_partition::social_hash_partition(
                    ts.num_vectors,
                    train.table_queries(t),
                    &cfg,
                );
                BlockLayout::from_order(order, 32)
            })
            .collect();
        let freqs: Vec<AccessFrequency> = spec
            .tables
            .iter()
            .enumerate()
            .map(|(t, ts)| AccessFrequency::from_queries(ts.num_vectors, train.table_queries(t)))
            .collect();
        (eval, layouts, freqs)
    }

    #[test]
    fn threshold_policy_beats_baseline_on_shp_layout() {
        let (eval, layouts, freqs) = fixtures();
        let gains = effective_bandwidth_sweep(
            &eval,
            &layouts,
            &freqs,
            &[256, 256],
            &[AdmissionPolicy::Threshold { t: 2 }, AdmissionPolicy::Threshold { t: 2 }],
            1.5,
        );
        let overall = overall_gain(&gains);
        assert!(overall > 0.0, "expected positive gain, got {overall} ({gains:?})");
    }

    #[test]
    fn baseline_policy_has_zero_gain() {
        let (eval, layouts, freqs) = fixtures();
        let gains = effective_bandwidth_sweep(
            &eval,
            &layouts,
            &freqs,
            &[128, 128],
            &[AdmissionPolicy::None, AdmissionPolicy::None],
            1.5,
        );
        for g in &gains {
            assert_eq!(g.policy_block_reads, g.baseline_block_reads);
            assert!(g.gain.abs() < 1e-12);
        }
        assert!(overall_gain(&gains).abs() < 1e-12);
    }

    #[test]
    fn overall_gain_weights_by_reads() {
        let gains = vec![
            TableGain {
                table: 0,
                policy_block_reads: 100,
                baseline_block_reads: 200,
                hit_rate: 0.5,
                gain: 1.0,
            },
            TableGain {
                table: 1,
                policy_block_reads: 900,
                baseline_block_reads: 900,
                hit_rate: 0.5,
                gain: 0.0,
            },
        ];
        // (200+900)/(100+900) - 1 = 0.1
        assert!((overall_gain(&gains) - 0.1).abs() < 1e-12);
        assert_eq!(overall_gain(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_rejected() {
        let (eval, layouts, freqs) = fixtures();
        let _ = effective_bandwidth_sweep(&eval, &layouts, &freqs, &[128], &[], 1.5);
    }
}
