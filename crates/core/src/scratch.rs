//! Reusable scratch state for the batched lookup hot path.
//!
//! Every [`TableStore::lookup_batch`](crate::TableStore::lookup_batch)
//! needs a miss plan (which positions missed into which block), per-id
//! output slots, and a requested-slot set for the prefetch sweep. Building
//! those from scratch per call puts the allocator on the hottest path in
//! the system; a [`BatchScratch`] owns them instead, so after the first
//! few calls at a given batch shape every structure is at capacity and a
//! steady-state batch allocates nothing.
//!
//! # Ownership rules
//!
//! * A scratch is **exclusive to one call at a time** and carries no state
//!   between calls beyond capacity: every
//!   [`lookup_batch_with`](crate::TableStore::lookup_batch_with) resets it
//!   before use. It may therefore be shared freely *across* tables —
//!   [`ConcurrentStore`](crate::ConcurrentStore) keeps one next to the
//!   device lock and each `bandana-serve` shard worker owns one for all
//!   its tables.
//! * [`BatchScratch::out`] borrows the results of the **most recent**
//!   call; copy or drop them before the next lookup reuses the buffers.
//!   Payload `Bytes` cloned out of the scratch stay valid independently
//!   (they share the underlying block buffers by refcount).
//! * Dropping a scratch is always safe; it owns no device or cache
//!   resources.

use bytes::Bytes;

/// Reusable working memory for [`TableStore::lookup_batch_with`](crate::TableStore::lookup_batch_with)
/// (miss plan, output slots, requested-slot bitset).
///
/// See the [module docs](self) for the ownership rules.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// The miss plan: one `(block, position-in-ids)` pair per missed
    /// lookup, sorted by block (then position) before the read phase.
    pub(crate) misses: Vec<(u32, u32)>,
    /// One slot per id in the batch, filled as hits and reads resolve.
    pub(crate) slots: Vec<Option<Bytes>>,
    /// The densely packed payloads of the last call, in `ids` order.
    pub(crate) out: Vec<Bytes>,
    /// Bitset over a block's vector slots marking which were demanded by
    /// the current batch, so the prefetch sweep skips them in O(1).
    pub(crate) requested_slots: Vec<u64>,
}

impl BatchScratch {
    /// Creates an empty scratch; buffers grow to the observed batch shape
    /// on first use and are reused afterwards.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// The payloads produced by the most recent successful
    /// [`lookup_batch_with`](crate::TableStore::lookup_batch_with), in the
    /// order of the `ids` it was called with. Overwritten by the next
    /// call.
    pub fn out(&self) -> &[Bytes] {
        &self.out
    }

    /// Moves the last call's payloads out as an owned `Vec` — the
    /// compatibility path behind
    /// [`TableStore::lookup_batch`](crate::TableStore::lookup_batch) and
    /// [`ConcurrentStore::lookup_batch`](crate::ConcurrentStore::lookup_batch),
    /// which must return owned results. The scratch's `out` buffer starts
    /// over empty, so the *next* call regrows it; steady-state callers
    /// read [`BatchScratch::out`] in place instead.
    pub fn take_out(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.out)
    }

    /// Resets the per-call state for a batch of `len` ids. Capacity is
    /// retained; only lengths move.
    pub(crate) fn begin(&mut self, len: usize) {
        self.misses.clear();
        self.slots.clear();
        self.slots.resize(len, None);
        self.out.clear();
    }

    /// Clears the requested-slot bitset for a block holding
    /// `vectors_per_block` slots, growing the word buffer on first use.
    pub(crate) fn reset_requested(&mut self, vectors_per_block: usize) {
        let words = vectors_per_block.div_ceil(64);
        if self.requested_slots.len() < words {
            self.requested_slots.resize(words, 0);
        }
        self.requested_slots[..words].iter_mut().for_each(|w| *w = 0);
    }

    /// Marks block slot `slot` as demanded by the current batch.
    pub(crate) fn mark_requested(&mut self, slot: usize) {
        self.requested_slots[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Whether block slot `slot` was demanded by the current batch.
    pub(crate) fn is_requested(&self, slot: usize) -> bool {
        self.requested_slots[slot / 64] & (1u64 << (slot % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_resets_lengths_but_keeps_capacity() {
        let mut s = BatchScratch::new();
        s.begin(8);
        s.misses.push((3, 1));
        s.out.push(Bytes::from(vec![1u8]));
        let slot_cap = s.slots.capacity();
        s.begin(4);
        assert_eq!(s.slots.len(), 4);
        assert!(s.misses.is_empty());
        assert!(s.out().is_empty());
        assert!(s.slots.capacity() >= slot_cap.min(8));
    }

    #[test]
    fn requested_bitset_tracks_slots_across_resets() {
        let mut s = BatchScratch::new();
        s.reset_requested(130);
        s.mark_requested(0);
        s.mark_requested(63);
        s.mark_requested(64);
        s.mark_requested(129);
        for slot in [0usize, 63, 64, 129] {
            assert!(s.is_requested(slot), "slot {slot}");
        }
        assert!(!s.is_requested(1));
        s.reset_requested(130);
        for slot in [0usize, 63, 64, 129] {
            assert!(!s.is_requested(slot), "slot {slot} survived reset");
        }
    }

    #[test]
    fn take_out_leaves_an_empty_scratch() {
        let mut s = BatchScratch::new();
        s.out.push(Bytes::from(vec![9u8]));
        let taken = s.take_out();
        assert_eq!(taken.len(), 1);
        assert!(s.out().is_empty());
    }
}
