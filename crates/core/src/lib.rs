//! # bandana-core — NVM storage for deep-learning embedding tables
//!
//! This crate is the reproduction of **Bandana** (Eisenman et al., MLSys
//! 2019): a storage system that keeps recommender-system embedding tables on
//! block-addressable NVM with a small DRAM cache, recovering NVM's effective
//! read bandwidth through two mechanisms:
//!
//! 1. **Locality-aware placement** — embedding vectors that are accessed
//!    together are stored in the same 4 KB NVM block (via SHP hypergraph
//!    partitioning or K-means, from [`bandana_partition`]), so one block
//!    read prefetches useful neighbours;
//! 2. **Simulation-tuned caching** — prefetched vectors pass an admission
//!    policy whose threshold is chosen by sampled "miniature cache"
//!    simulations per table, and the DRAM budget is divided across tables
//!    by their hit-rate curves (from [`bandana_cache`]).
//!
//! The [`BandanaStore`] is the deployable artifact: it owns a simulated NVM
//! device ([`nvm_sim`]), stores real embedding bytes, and serves lookups.
//! The [`pipeline`] module packages the full train → place → tune → serve
//! loop used by the examples and by every experiment in the paper
//! reproduction.
//!
//! ## Quickstart
//!
//! ```
//! use bandana_core::pipeline::{run_pipeline, PipelineConfig};
//! use bandana_core::PartitionerKind;
//! use bandana_trace::ModelSpec;
//!
//! let report = run_pipeline(&PipelineConfig {
//!     spec: ModelSpec::test_small(),
//!     train_requests: 300,
//!     eval_requests: 150,
//!     partitioner: PartitionerKind::Shp { iterations: 8 },
//!     cache_vectors_total: 512,
//!     ..PipelineConfig::default()
//! });
//! assert_eq!(report.tables.len(), 2);
//! // SHP placement plus tuned caching beats the single-vector baseline.
//! assert!(report.overall_gain() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod concurrent;
pub mod config;
pub mod error;
pub mod online;
pub mod pipeline;
pub mod scratch;
pub mod store;
pub mod table;
pub mod tuner;

pub use bandwidth::{effective_bandwidth_sweep, TableGain};
pub use concurrent::{ConcurrentStore, ThroughputReport};
pub use config::{BandanaConfig, PartitionerKind};
pub use error::BandanaError;
pub use online::{OnlineTuner, OnlineTunerConfig, TuningDecision};
pub use scratch::BatchScratch;
pub use store::{BandanaStore, StoreParts};
pub use table::TableStore;
pub use tuner::{tune_thresholds, TunerConfig};
