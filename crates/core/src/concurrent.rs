//! A thread-safe, lock-sharded wrapper around the Bandana store.
//!
//! Production ranking servers serve many users concurrently; a single
//! `&mut self` store would serialize everything. [`ConcurrentStore`] puts
//! each table behind its own [`parking_lot::Mutex`] and the NVM device
//! behind another, with a fixed lock order (table → device) so lookups on
//! different tables proceed in parallel and only *misses* contend on the
//! device — mirroring how a real deployment contends on NVM bandwidth
//! rather than on DRAM.
//!
//! DRAM hits never touch the device lock thanks to the
//! [`TableStore::lookup_cached`] / miss split, so the hit path scales with
//! the number of tables.
//!
//! # Example
//!
//! ```
//! use bandana_core::{BandanaConfig, BandanaStore};
//! use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
//!
//! # fn main() -> Result<(), bandana_core::BandanaError> {
//! let spec = ModelSpec::test_small();
//! let mut generator = TraceGenerator::new(&spec, 1);
//! let training = generator.generate_requests(200);
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let store = BandanaStore::build(&spec, &embeddings, &training, BandanaConfig::default())?
//!     .into_concurrent();
//!
//! let serving = generator.generate_requests(100);
//! let report = store.serve_trace_parallel(&serving, 4)?;
//! assert_eq!(report.lookups, serving.total_lookups() as u64);
//! # Ok(())
//! # }
//! ```

use crate::config::BandanaConfig;
use crate::error::BandanaError;
use crate::scratch::BatchScratch;
use crate::store::BandanaStore;
use crate::table::TableStore;
use bandana_cache::CacheMetrics;
use bandana_trace::{Request, Trace};
use bytes::Bytes;
use nvm_sim::{BlockBufPool, BlockDevice, IoCounters, NvmDevice};
use parking_lot::Mutex;
use std::time::Instant;

/// Throughput observed by [`ConcurrentStore::serve_trace_parallel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Vector lookups served.
    pub lookups: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole trace.
    pub wall_seconds: f64,
}

impl ThroughputReport {
    /// Vector lookups per wall-clock second.
    pub fn lookups_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.lookups as f64 / self.wall_seconds
        }
    }
}

/// The device-side state of a miss: the device itself plus the buffer
/// pool and batch scratch every miss path reuses. One lock guards all
/// three — misses serialize on NVM bandwidth anyway, so sharing the
/// scratch costs no extra contention and keeps the steady-state miss path
/// allocation-free.
#[derive(Debug)]
struct MissPath {
    device: NvmDevice,
    pool: BlockBufPool,
    scratch: BatchScratch,
}

/// A [`BandanaStore`] sharded behind per-table locks; all methods take
/// `&self` and the store is `Send + Sync`.
#[derive(Debug)]
pub struct ConcurrentStore {
    device: Mutex<MissPath>,
    tables: Vec<Mutex<TableStore>>,
    config: BandanaConfig,
    vector_bytes: usize,
}

impl ConcurrentStore {
    /// Wraps a built store. Also available as
    /// [`BandanaStore::into_concurrent`].
    pub fn from_store(store: BandanaStore) -> Self {
        let (device, tables, config, vector_bytes) = store.into_parts();
        let cached_entries: usize = tables.iter().map(|t| t.cache_capacity()).sum();
        ConcurrentStore {
            device: Mutex::new(MissPath {
                device,
                pool: BlockBufPool::for_cache(cached_entries),
                scratch: BatchScratch::new(),
            }),
            tables: tables.into_iter().map(Mutex::new).collect(),
            config,
            vector_bytes,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Bytes per embedding vector.
    pub fn vector_bytes(&self) -> usize {
        self.vector_bytes
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &BandanaConfig {
        &self.config
    }

    /// Looks up one embedding vector; safe to call from many threads.
    ///
    /// Lock order is table → device, taken only on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] / [`BandanaError::NoSuchVector`]
    /// for bad indices and propagates device errors.
    pub fn lookup(&self, table: usize, v: u32) -> Result<Bytes, BandanaError> {
        let t = self
            .tables
            .get(table)
            .ok_or(BandanaError::NoSuchTable { table, tables: self.tables.len() })?;
        let mut guard = t.lock();
        if let Some(bytes) = guard.lookup_cached(v)? {
            return Ok(bytes);
        }
        let mut miss = self.device.lock();
        let MissPath { ref mut device, ref mut pool, .. } = *miss;
        guard.lookup_miss(device, v, pool)
    }

    /// Serves every lookup of one request, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first bad table/vector reference.
    pub fn serve_request(&self, request: &Request) -> Result<(), BandanaError> {
        for q in &request.queries {
            for &v in &q.ids {
                self.lookup(q.table, v)?;
            }
        }
        Ok(())
    }

    /// Looks up a whole query in one table with per-block read coalescing
    /// (see [`TableStore::lookup_batch`]). The device lock is held for the
    /// whole miss phase, so a query's blocks are read without interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] / [`BandanaError::NoSuchVector`]
    /// for bad indices and propagates device errors.
    pub fn lookup_batch(&self, table: usize, ids: &[u32]) -> Result<Vec<Bytes>, BandanaError> {
        let t = self
            .tables
            .get(table)
            .ok_or(BandanaError::NoSuchTable { table, tables: self.tables.len() })?;
        let mut guard = t.lock();
        let mut miss = self.device.lock();
        // The scratch and pool riding with the device lock keep the
        // internal miss structures reused across every table's batches;
        // the results are *moved* out so the global critical section ends
        // without a payload copy.
        let MissPath { ref mut device, ref mut pool, ref mut scratch } = *miss;
        guard.lookup_batch_with(device, ids, scratch, pool)?;
        Ok(scratch.take_out())
    }

    /// Serves a whole trace across `threads` worker threads, requests
    /// interleaved round-robin (request *i* goes to worker `i % threads`,
    /// approximating independent user sessions).
    ///
    /// # Errors
    ///
    /// Returns the first error any worker hit; remaining work on other
    /// workers may or may not have been served.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn serve_trace_parallel(
        &self,
        trace: &Trace,
        threads: usize,
    ) -> Result<ThroughputReport, BandanaError> {
        assert!(threads > 0, "need at least one worker thread");
        let start = Instant::now();
        let first_error: Mutex<Option<BandanaError>> = Mutex::new(None);
        crossbeam::thread::scope(|scope| {
            for worker in 0..threads {
                let first_error = &first_error;
                scope.spawn(move |_| {
                    for request in trace.requests.iter().skip(worker).step_by(threads) {
                        if first_error.lock().is_some() {
                            return;
                        }
                        if let Err(e) = self.serve_request(request) {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let wall_seconds = start.elapsed().as_secs_f64();
        Ok(ThroughputReport { lookups: trace.total_lookups() as u64, threads, wall_seconds })
    }

    /// Applies a new DRAM partition to one table's cache (see
    /// [`TableStore::set_cache_capacity`]). Only that table's lock is
    /// taken — never the device lock — so the table → device lock order is
    /// trivially preserved and in-flight lookups on other tables are
    /// unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] for a bad index.
    pub fn set_cache_capacity(&self, table: usize, entries: usize) -> Result<(), BandanaError> {
        let t = self
            .tables
            .get(table)
            .ok_or(BandanaError::NoSuchTable { table, tables: self.tables.len() })?;
        t.lock().set_cache_capacity(entries);
        Ok(())
    }

    /// Per-table DRAM cache capacities in vectors, in table order.
    pub fn cache_capacities(&self) -> Vec<usize> {
        self.tables.iter().map(|t| t.lock().cache_capacity()).collect()
    }

    /// Per-table metrics — the per-table hit/miss counters an online
    /// curve sampler diffs between control ticks.
    pub fn table_metrics(&self) -> Vec<CacheMetrics> {
        self.tables.iter().map(|t| *t.lock().metrics()).collect()
    }

    /// Aggregate metrics across tables.
    pub fn total_metrics(&self) -> CacheMetrics {
        let mut total = CacheMetrics::new();
        for t in &self.tables {
            total.merge(t.lock().metrics());
        }
        total
    }

    /// Resets all per-table counters and the device I/O counters.
    pub fn reset_metrics(&self) {
        for t in &self.tables {
            t.lock().reset_metrics();
        }
        self.device.lock().device.reset_counters();
    }

    /// Raw device I/O counters.
    pub fn device_counters(&self) -> IoCounters {
        self.device.lock().device.counters()
    }
}

impl From<BandanaStore> for ConcurrentStore {
    fn from(store: BandanaStore) -> Self {
        ConcurrentStore::from_store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandanaConfig;
    use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};

    fn build_concurrent(seed: u64) -> (ConcurrentStore, TraceGenerator, ModelSpec) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, seed);
        let training = generator.generate_requests(300);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let store = BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default().with_cache_vectors(256),
        )
        .expect("build store")
        .into_concurrent();
        (store, generator, spec)
    }

    #[test]
    fn concurrent_store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentStore>();
    }

    #[test]
    fn lookup_through_shared_reference() {
        let (store, _, spec) = build_concurrent(1);
        let payload = store.lookup(0, 3).expect("lookup");
        assert_eq!(payload.len(), spec.vector_bytes());
        // Second lookup is a hit.
        let before = store.device_counters().reads;
        store.lookup(0, 3).expect("lookup");
        assert_eq!(store.device_counters().reads, before);
    }

    #[test]
    fn parallel_serve_counts_all_lookups() {
        let (store, mut generator, _) = build_concurrent(2);
        let serving = generator.generate_requests(200);
        let report = store.serve_trace_parallel(&serving, 4).expect("serve");
        assert_eq!(report.lookups, serving.total_lookups() as u64);
        assert_eq!(store.total_metrics().lookups, serving.total_lookups() as u64);
        assert!(report.lookups_per_second() > 0.0);
    }

    #[test]
    fn parallel_matches_sequential_hit_counts_roughly() {
        // Interleaving changes per-thread cache timing slightly, but the
        // aggregate block-read count must stay in the same ballpark as the
        // sequential run (within 20%).
        let (store, mut generator, _) = build_concurrent(3);
        let serving = generator.generate_requests(400);
        store.serve_trace_parallel(&serving, 4).expect("serve");
        let parallel_reads = store.total_metrics().block_reads;

        let (store_seq, _, _) = build_concurrent(3);
        store_seq.serve_trace_parallel(&serving, 1).expect("serve");
        let sequential_reads = store_seq.total_metrics().block_reads;

        let hi = sequential_reads.max(parallel_reads) as f64;
        let lo = sequential_reads.min(parallel_reads) as f64;
        assert!(
            hi / lo < 1.2,
            "parallel reads {parallel_reads} diverge from sequential {sequential_reads}"
        );
    }

    #[test]
    fn set_cache_capacity_repartitions_live_store() {
        let (store, mut generator, _) = build_concurrent(6);
        let serving = generator.generate_requests(100);
        store.serve_trace_parallel(&serving, 2).expect("serve");
        let before = store.cache_capacities();
        assert!(before.len() >= 2);
        store.set_cache_capacity(0, before[0] / 2).expect("shrink table 0");
        store.set_cache_capacity(1, before[1] * 2).expect("grow table 1");
        let after = store.cache_capacities();
        assert!(after[0] < before[0]);
        assert_eq!(after[1], before[1] * 2);
        assert!(matches!(
            store.set_cache_capacity(99, 16).unwrap_err(),
            BandanaError::NoSuchTable { table: 99, .. }
        ));
        // The store still serves correctly after the repartition.
        let more = generator.generate_requests(50);
        store.serve_trace_parallel(&more, 2).expect("serve after repartition");
    }

    #[test]
    fn bad_indices_reported_from_any_thread() {
        let (store, _, _) = build_concurrent(4);
        assert!(matches!(
            store.lookup(99, 0).unwrap_err(),
            BandanaError::NoSuchTable { table: 99, .. }
        ));
        assert!(matches!(
            store.lookup(0, u32::MAX).unwrap_err(),
            BandanaError::NoSuchVector { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let (store, mut generator, _) = build_concurrent(5);
        let serving = generator.generate_requests(10);
        let _ = store.serve_trace_parallel(&serving, 0);
    }
}
