//! The multi-table Bandana store.

use crate::config::{BandanaConfig, PartitionerKind};
use crate::error::BandanaError;
use crate::table::TableStore;
use crate::tuner;
use bandana_cache::{allocate_dram, AdmissionPolicy, CacheMetrics, HitRateCurve};
use bandana_partition::{
    kmeans, order_from_assignments, social_hash_partition, two_stage_kmeans, AccessFrequency,
    BlockLayout, KMeansConfig, ShpConfig, TwoStageConfig,
};
use bandana_trace::{EmbeddingTable, ModelSpec, Request, StackDistances, Trace};
use bytes::Bytes;
use nvm_sim::{BlockDevice, EnduranceMeter, IoCounters, NvmConfig, NvmDevice};

/// The Bandana store: embedding tables on simulated NVM, DRAM-cached, with
/// locality-aware placement and tuned prefetch admission.
///
/// Build one with [`BandanaStore::build`], then serve lookups with
/// [`BandanaStore::lookup`] or whole requests with
/// [`BandanaStore::serve_request`].
///
/// # Example
///
/// ```
/// use bandana_core::{BandanaConfig, BandanaStore, PartitionerKind};
/// use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
///
/// # fn main() -> Result<(), bandana_core::BandanaError> {
/// let spec = ModelSpec::test_small();
/// let mut generator = TraceGenerator::new(&spec, 1);
/// let training = generator.generate_requests(200);
/// let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
///     .map(|t| EmbeddingTable::synthesize(
///         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
///     .collect();
/// let config = BandanaConfig::default().with_cache_vectors(256);
/// let mut store = BandanaStore::build(&spec, &embeddings, &training, config)?;
///
/// let payload = store.lookup(0, 42)?;
/// assert_eq!(payload.len(), spec.vector_bytes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BandanaStore {
    device: NvmDevice,
    tables: Vec<TableStore>,
    config: BandanaConfig,
    vector_bytes: usize,
}

impl BandanaStore {
    /// Builds the store: partitions every table, sizes the per-table DRAM
    /// caches, tunes admission thresholds, and writes all embeddings to the
    /// simulated NVM device.
    ///
    /// `training` drives the supervised parts: SHP placement, access
    /// frequencies, hit-rate curves, and miniature-cache tuning.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::Config`] for inconsistent inputs and
    /// propagates device errors.
    pub fn build(
        spec: &ModelSpec,
        embeddings: &[EmbeddingTable],
        training: &Trace,
        config: BandanaConfig,
    ) -> Result<Self, BandanaError> {
        config.validate().map_err(BandanaError::Config)?;
        spec.validate().map_err(BandanaError::Config)?;
        if embeddings.len() != spec.num_tables() {
            return Err(BandanaError::Config(format!(
                "{} embedding tables for {} spec tables",
                embeddings.len(),
                spec.num_tables()
            )));
        }
        let vector_bytes = spec.vector_bytes();
        let vectors_per_block = config.vectors_per_block(vector_bytes);

        // 1. Placement and training-time access frequencies.
        let (layouts, freqs) = build_layouts_and_freqs(
            spec,
            training,
            config.partitioner,
            vectors_per_block,
            embeddings,
            config.seed,
        );

        // 3. DRAM division across tables.
        let capacities = divide_cache(spec, training, &config);

        // 4. Per-table admission policies.
        let policies: Vec<AdmissionPolicy> = if config.tune_thresholds {
            (0..spec.num_tables())
                .map(|t| {
                    let chosen = tuner::tune_thresholds(
                        &layouts[t],
                        &freqs[t],
                        training.table_stream(t).as_slice(),
                        &tuner::TunerConfig {
                            cache_capacity: capacities[t],
                            sampling_rate: config.mini_sampling_rate,
                            candidate_thresholds: config.candidate_thresholds.clone(),
                            salt: config.seed.wrapping_add(t as u64),
                        },
                    );
                    AdmissionPolicy::Threshold { t: chosen }
                })
                .collect()
        } else {
            vec![config.admission; spec.num_tables()]
        };

        // 5. Device sizing and table construction.
        let total_blocks: u64 = layouts.iter().map(|l| l.num_blocks() as u64).sum();
        let mut device = NvmDevice::new(
            NvmConfig::optane_375gb()
                .with_block_size(config.block_size)
                .with_capacity_blocks(total_blocks.max(1)),
        );
        let mut tables = Vec::with_capacity(spec.num_tables());
        let mut base_block = 0u64;
        for (t, layout) in layouts.into_iter().enumerate() {
            let blocks = layout.num_blocks() as u64;
            let mut table = TableStore::new(
                t,
                layout,
                freqs[t].clone(),
                policies[t],
                capacities[t],
                config.shadow_multiplier,
                base_block,
                vector_bytes,
            );
            table.write_embeddings(&mut device, &embeddings[t])?;
            tables.push(table);
            base_block += blocks;
        }
        device.reset_counters();

        Ok(BandanaStore { device, tables, config, vector_bytes })
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Bytes per embedding vector.
    pub fn vector_bytes(&self) -> usize {
        self.vector_bytes
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &BandanaConfig {
        &self.config
    }

    /// Access to one table (layout, policy, metrics).
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] for out-of-range indices.
    pub fn table(&self, table: usize) -> Result<&TableStore, BandanaError> {
        self.tables.get(table).ok_or(BandanaError::NoSuchTable { table, tables: self.tables.len() })
    }

    /// Looks up one embedding vector, reading through to NVM on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] / [`BandanaError::NoSuchVector`]
    /// for bad indices and propagates device errors.
    pub fn lookup(&mut self, table: usize, v: u32) -> Result<Bytes, BandanaError> {
        let tables = self.tables.len();
        let t = self.tables.get_mut(table).ok_or(BandanaError::NoSuchTable { table, tables })?;
        t.lookup(&mut self.device, v)
    }

    /// Serves every lookup of one request, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first bad table/vector reference.
    pub fn serve_request(&mut self, request: &Request) -> Result<(), BandanaError> {
        for q in &request.queries {
            for &v in &q.ids {
                self.lookup(q.table, v)?;
            }
        }
        Ok(())
    }

    /// Looks up a whole query in one table, coalescing NVM reads per block
    /// (see [`TableStore::lookup_batch`]). Payloads come back in `ids`
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] / [`BandanaError::NoSuchVector`]
    /// for bad indices (checked before any I/O) and propagates device
    /// errors.
    pub fn lookup_batch(&mut self, table: usize, ids: &[u32]) -> Result<Vec<Bytes>, BandanaError> {
        let tables = self.tables.len();
        let t = self.tables.get_mut(table).ok_or(BandanaError::NoSuchTable { table, tables })?;
        t.lookup_batch(&mut self.device, ids)
    }

    /// Serves one request with per-table batching: each table query's
    /// misses are coalesced into one read per distinct block. Same cache
    /// effects as [`BandanaStore::serve_request`], fewer device reads when
    /// placement clusters a query's vectors.
    ///
    /// # Errors
    ///
    /// Fails on the first bad table/vector reference.
    pub fn serve_request_batched(&mut self, request: &Request) -> Result<(), BandanaError> {
        for q in &request.queries {
            self.lookup_batch(q.table, &q.ids)?;
        }
        Ok(())
    }

    /// Serves a whole trace.
    ///
    /// # Errors
    ///
    /// Fails on the first bad table/vector reference.
    pub fn serve_trace(&mut self, trace: &Trace) -> Result<(), BandanaError> {
        for r in &trace.requests {
            self.serve_request(r)?;
        }
        Ok(())
    }

    /// Retrains one table: overwrites its embeddings on NVM (the cache keeps
    /// serving stale values until they churn out, as in production §2.1).
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchTable`] or device errors.
    pub fn retrain(
        &mut self,
        table: usize,
        embeddings: &EmbeddingTable,
    ) -> Result<(), BandanaError> {
        let tables = self.tables.len();
        let t = self.tables.get_mut(table).ok_or(BandanaError::NoSuchTable { table, tables })?;
        t.write_embeddings(&mut self.device, embeddings)
    }

    /// Per-table metrics.
    pub fn table_metrics(&self) -> Vec<CacheMetrics> {
        self.tables.iter().map(|t| *t.metrics()).collect()
    }

    /// Aggregate metrics across tables.
    pub fn total_metrics(&self) -> CacheMetrics {
        let mut total = CacheMetrics::new();
        for t in &self.tables {
            total.merge(t.metrics());
        }
        total
    }

    /// Resets all per-table counters and the device I/O counters.
    pub fn reset_metrics(&mut self) {
        for t in &mut self.tables {
            t.reset_metrics();
        }
        self.device.reset_counters();
    }

    /// Raw device I/O counters.
    pub fn device_counters(&self) -> IoCounters {
        self.device.counters()
    }

    /// Device endurance accounting (drive writes; §2.2).
    pub fn endurance(&self) -> &EnduranceMeter {
        self.device.endurance()
    }

    /// Decomposes the store for the lock-sharded [`crate::ConcurrentStore`].
    pub(crate) fn into_parts(self) -> (NvmDevice, Vec<TableStore>, BandanaConfig, usize) {
        let StoreParts { device, tables, config, vector_bytes } = self.into_raw_parts();
        (device, tables, config, vector_bytes)
    }

    /// Decomposes the store into its raw parts so external serving layers
    /// (e.g. `bandana-serve`) can distribute tables across shard-owned
    /// workers. The tables keep their block offsets into `device`.
    pub fn into_raw_parts(self) -> StoreParts {
        StoreParts {
            device: self.device,
            tables: self.tables,
            config: self.config,
            vector_bytes: self.vector_bytes,
        }
    }

    /// Converts this store into a thread-safe [`crate::ConcurrentStore`].
    pub fn into_concurrent(self) -> crate::concurrent::ConcurrentStore {
        crate::concurrent::ConcurrentStore::from_store(self)
    }
}

/// The raw parts of a [`BandanaStore`], as returned by
/// [`BandanaStore::into_raw_parts`].
///
/// `tables[t].table_id() == t` and each table's blocks live at its
/// `base_block` offset inside `device`.
#[derive(Debug)]
pub struct StoreParts {
    /// The simulated NVM device holding every table's blocks.
    pub device: NvmDevice,
    /// Per-table stores, indexed by table id.
    pub tables: Vec<TableStore>,
    /// The configuration the store was built with.
    pub config: BandanaConfig,
    /// Bytes per embedding vector.
    pub vector_bytes: usize,
}

/// Builds every table's layout and training-time access frequencies.
///
/// `embeddings` is only consulted by the semantic (K-means) partitioners and
/// may be empty otherwise.
///
/// # Panics
///
/// Panics if a semantic partitioner is requested without embeddings.
pub fn build_layouts_and_freqs(
    spec: &ModelSpec,
    training: &Trace,
    partitioner: PartitionerKind,
    vectors_per_block: usize,
    embeddings: &[EmbeddingTable],
    seed: u64,
) -> (Vec<BlockLayout>, Vec<AccessFrequency>) {
    let semantic = matches!(
        partitioner,
        PartitionerKind::KMeans { .. } | PartitionerKind::TwoStageKMeans { .. }
    );
    if semantic {
        assert_eq!(
            embeddings.len(),
            spec.num_tables(),
            "semantic partitioning needs one embedding table per spec table"
        );
    }
    let layouts = spec
        .tables
        .iter()
        .enumerate()
        .map(|(t, tspec)| {
            let emb = if semantic { Some(&embeddings[t]) } else { None };
            build_layout(
                partitioner,
                tspec.num_vectors,
                vectors_per_block,
                training,
                t,
                emb,
                spec.dim,
                seed,
            )
        })
        .collect();
    let freqs = spec
        .tables
        .iter()
        .enumerate()
        .map(|(t, tspec)| {
            AccessFrequency::from_queries(tspec.num_vectors, training.table_queries(t))
        })
        .collect();
    (layouts, freqs)
}

/// Builds one table's physical layout with the chosen partitioner.
#[allow(clippy::too_many_arguments)]
fn build_layout(
    partitioner: PartitionerKind,
    num_vectors: u32,
    vectors_per_block: usize,
    training: &Trace,
    table: usize,
    embeddings: Option<&EmbeddingTable>,
    dim: usize,
    seed: u64,
) -> BlockLayout {
    match partitioner {
        PartitionerKind::Identity => BlockLayout::identity(num_vectors, vectors_per_block),
        PartitionerKind::Random => {
            BlockLayout::random(num_vectors, vectors_per_block, seed.wrapping_add(table as u64))
        }
        PartitionerKind::Shp { iterations } => {
            let cfg = ShpConfig {
                block_capacity: vectors_per_block,
                iterations,
                seed: seed.wrapping_add(table as u64),
                parallel_depth: 3,
            };
            let order = social_hash_partition(num_vectors, training.table_queries(table), &cfg);
            BlockLayout::from_order(order, vectors_per_block)
        }
        PartitionerKind::KMeans { k, iterations } => {
            let emb = embeddings.expect("K-means partitioning needs embeddings");
            let result = kmeans(
                emb.data(),
                dim,
                &KMeansConfig { k, iterations, seed: seed.wrapping_add(table as u64) },
            );
            BlockLayout::from_order(order_from_assignments(&result.assignments), vectors_per_block)
        }
        PartitionerKind::TwoStageKMeans { first_stage_k, total_subclusters, iterations } => {
            let emb = embeddings.expect("two-stage K-means partitioning needs embeddings");
            let order = two_stage_kmeans(
                emb.data(),
                dim,
                &TwoStageConfig {
                    first_stage_k,
                    total_subclusters,
                    iterations,
                    seed: seed.wrapping_add(table as u64),
                },
            );
            BlockLayout::from_order(order, vectors_per_block)
        }
    }
}

/// Divides the DRAM budget across tables: by hit-rate curves (Dynacache
/// style, §4.3.3) or proportionally to lookup share.
fn divide_cache(spec: &ModelSpec, training: &Trace, config: &BandanaConfig) -> Vec<usize> {
    let total = config.cache_vectors_total;
    let tables = spec.num_tables();
    let weights: Vec<f64> = (0..tables)
        .map(|t| training.table_lookups(t) as f64 / training.total_lookups().max(1) as f64)
        .collect();

    let capacities = if config.allocate_by_hit_rate_curves {
        let sizes: Vec<usize> =
            [64usize, 16, 8, 4, 2, 1].iter().map(|d| (total / d).max(1)).collect();
        let curves: Vec<HitRateCurve> = (0..tables)
            .map(|t| {
                let stream = training.table_stream(t);
                if stream.is_empty() {
                    return HitRateCurve::new(vec![(0, 0.0)]);
                }
                let mut sd = StackDistances::with_capacity(stream.len());
                sd.access_all(stream.iter().map(|&v| v as u64));
                HitRateCurve::new(sd.hit_rate_curve(&sizes))
            })
            .collect();
        let granularity = (total / 64).max(1);
        allocate_dram(total, &curves, &weights, granularity)
    } else {
        weights.iter().map(|w| (total as f64 * w) as usize).collect()
    };
    // Every table needs at least one cache slot.
    capacities.into_iter().map(|c| c.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bandana_trace::TraceGenerator;

    fn build_store(
        partitioner: PartitionerKind,
        cache: usize,
    ) -> (BandanaStore, Trace, Vec<EmbeddingTable>) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, 11);
        let training = generator.generate_requests(200);
        let eval = generator.generate_requests(100);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let config = BandanaConfig::default()
            .with_cache_vectors(cache)
            .with_partitioner(partitioner)
            .with_seed(5);
        let store = BandanaStore::build(&spec, &embeddings, &training, config).unwrap();
        (store, eval, embeddings)
    }

    #[test]
    fn lookups_return_exact_embedding_bytes() {
        let (mut store, _, embeddings) = build_store(PartitionerKind::Identity, 128);
        for (t, emb) in embeddings.iter().enumerate() {
            for v in [0u32, 7, emb.num_vectors() - 1] {
                let got = store.lookup(t, v).unwrap();
                assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice());
            }
        }
    }

    #[test]
    fn serve_trace_counts_every_lookup() {
        let (mut store, eval, _) = build_store(PartitionerKind::Shp { iterations: 4 }, 256);
        store.serve_trace(&eval).unwrap();
        let total = store.total_metrics();
        assert_eq!(total.lookups as usize, eval.total_lookups());
        assert_eq!(total.hits + total.misses, total.lookups);
        // Device reads match recorded block reads.
        assert_eq!(store.device_counters().reads, total.block_reads);
    }

    #[test]
    fn bad_indices_are_rejected() {
        let (mut store, _, _) = build_store(PartitionerKind::Identity, 64);
        assert!(matches!(store.lookup(9, 0), Err(BandanaError::NoSuchTable { .. })));
        assert!(matches!(store.lookup(0, u32::MAX), Err(BandanaError::NoSuchVector { .. })));
        assert!(store.table(9).is_err());
    }

    #[test]
    fn kmeans_partitioner_builds_valid_store() {
        let (mut store, eval, _) =
            build_store(PartitionerKind::KMeans { k: 8, iterations: 5 }, 128);
        store.serve_trace(&eval).unwrap();
        assert!(store.total_metrics().lookups > 0);
    }

    #[test]
    fn two_stage_partitioner_builds_valid_store() {
        let (mut store, eval, _) = build_store(
            PartitionerKind::TwoStageKMeans {
                first_stage_k: 4,
                total_subclusters: 16,
                iterations: 5,
            },
            128,
        );
        store.serve_trace(&eval).unwrap();
        assert!(store.total_metrics().lookups > 0);
    }

    #[test]
    fn tuned_policies_are_thresholds() {
        let (store, _, _) = build_store(PartitionerKind::Shp { iterations: 4 }, 256);
        for t in 0..store.num_tables() {
            let policy = store.table(t).unwrap().policy();
            assert!(
                matches!(policy, AdmissionPolicy::Threshold { .. }),
                "table {t} has untuned policy {policy:?}"
            );
        }
    }

    #[test]
    fn retrain_tracks_endurance() {
        let (mut store, _, embeddings) = build_store(PartitionerKind::Identity, 64);
        let before = store.endurance().bytes_written();
        store.retrain(0, &embeddings[0]).unwrap();
        assert!(store.endurance().bytes_written() > before);
        assert!(store.retrain(99, &embeddings[0]).is_err());
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let (mut store, eval, _) = build_store(PartitionerKind::Identity, 64);
        store.serve_trace(&eval).unwrap();
        store.reset_metrics();
        assert_eq!(store.total_metrics().lookups, 0);
        assert_eq!(store.device_counters().reads, 0);
    }

    #[test]
    fn cache_division_respects_budget() {
        let spec = ModelSpec::test_small();
        let training = TraceGenerator::new(&spec, 3).generate_requests(150);
        let config = BandanaConfig::default().with_cache_vectors(300);
        let caps = divide_cache(&spec, &training, &config);
        assert_eq!(caps.len(), 2);
        let sum: usize = caps.iter().sum();
        assert!(sum <= 300 + caps.len(), "allocated {sum} of 300");
        assert!(caps.iter().all(|&c| c >= 1));
    }

    #[test]
    fn share_proportional_division() {
        let spec = ModelSpec::test_small();
        let training = TraceGenerator::new(&spec, 3).generate_requests(150);
        let mut config = BandanaConfig::default().with_cache_vectors(300);
        config.allocate_by_hit_rate_curves = false;
        let caps = divide_cache(&spec, &training, &config);
        let sum: usize = caps.iter().sum();
        assert!(sum <= 301, "allocated {sum}");
    }

    #[test]
    fn mismatched_embeddings_rejected() {
        let spec = ModelSpec::test_small();
        let training = TraceGenerator::new(&spec, 3).generate_requests(10);
        let err = BandanaStore::build(&spec, &[], &training, BandanaConfig::default());
        assert!(matches!(err, Err(BandanaError::Config(_))));
    }
}
