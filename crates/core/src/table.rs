//! One embedding table: an NVM block region, a DRAM cache, and the prefetch
//! machinery.

use crate::error::BandanaError;
use crate::scratch::BatchScratch;
use bandana_cache::{AdmissionPolicy, CacheMetrics, SegmentedLru, ShadowCache};
use bandana_partition::{AccessFrequency, BlockLayout};
use bandana_trace::EmbeddingTable;
use bytes::Bytes;
use nvm_sim::{BlockBufPool, BlockDevice};
use std::collections::hash_map::{Entry, HashMap};

/// How many LRU segments the cache uses (position granularity 1/16).
const SEGMENTS: usize = 16;

/// Whether a cached entry arrived on demand or as a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Demand,
    Prefetch,
}

/// One embedding table stored on NVM with a DRAM cache in front.
///
/// Unlike [`bandana_cache::PrefetchCacheSim`], this stores and serves the
/// actual embedding bytes; it is the data path of the Bandana store.
#[derive(Debug)]
pub struct TableStore {
    table_id: usize,
    layout: BlockLayout,
    freq: AccessFrequency,
    policy: AdmissionPolicy,
    /// Shadow-cache size multiplier last applied (construction or
    /// [`TableStore::set_policy`]); captured by persistence snapshots.
    shadow_multiplier: f64,
    cache: SegmentedLru<(Origin, Bytes)>,
    shadow: Option<ShadowCache>,
    metrics: CacheMetrics,
    /// First device block of this table's region.
    base_block: u64,
    vector_bytes: usize,
    num_vectors: u32,
    /// How many online re-layouts have been applied; the build-time layout
    /// is epoch 0. Persistence uses this to skip journaling layouts the
    /// build can reproduce.
    layout_epoch: u64,
    /// Working memory for the convenience APIs ([`TableStore::lookup`],
    /// [`TableStore::lookup_batch`]); the `*_with` variants take external
    /// state instead so shard workers can share one per worker.
    scratch: BatchScratch,
    pool: BlockBufPool,
}

impl TableStore {
    /// Creates the table over a block region starting at `base_block`.
    ///
    /// # Panics
    ///
    /// Panics if the cache capacity is zero, the frequency table does not
    /// match the layout, or `vector_bytes` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table_id: usize,
        layout: BlockLayout,
        freq: AccessFrequency,
        policy: AdmissionPolicy,
        cache_capacity: usize,
        shadow_multiplier: f64,
        base_block: u64,
        vector_bytes: usize,
    ) -> Self {
        assert!(cache_capacity > 0, "cache capacity must be non-zero");
        assert!(vector_bytes > 0, "vector size must be non-zero");
        assert_eq!(
            freq.num_vectors(),
            layout.num_vectors(),
            "frequency table does not match layout"
        );
        let shadow =
            policy.needs_shadow().then(|| ShadowCache::new(cache_capacity, shadow_multiplier));
        TableStore {
            table_id,
            num_vectors: layout.num_vectors(),
            layout,
            freq,
            policy,
            shadow_multiplier,
            cache: SegmentedLru::new(cache_capacity, SEGMENTS.min(cache_capacity)),
            shadow,
            metrics: CacheMetrics::new(),
            base_block,
            vector_bytes,
            layout_epoch: 0,
            scratch: BatchScratch::new(),
            pool: BlockBufPool::for_cache(cache_capacity),
        }
    }

    /// The table's index in the store.
    pub fn table_id(&self) -> usize {
        self.table_id
    }

    /// Number of vectors in the table.
    pub fn num_vectors(&self) -> u32 {
        self.num_vectors
    }

    /// Number of NVM blocks the table occupies.
    pub fn num_blocks(&self) -> u64 {
        self.layout.num_blocks() as u64
    }

    /// First device block of this table's region; the table's blocks are
    /// `base_block .. base_block + num_blocks()`.
    pub fn base_block(&self) -> u64 {
        self.base_block
    }

    /// Moves the table's block region to `new_base_block` without touching
    /// cache contents or counters — the companion of
    /// [`nvm_sim::SparseDevice::rebase`], which packs a shard's carved
    /// blocks into a dense zero-based device and reports where each old
    /// range landed ([`nvm_sim::RebasedDevice::remap`]).
    pub fn rebase(&mut self, new_base_block: u64) {
        self.base_block = new_base_block;
    }

    /// The physical placement in force.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// How many online re-layouts ([`TableStore::apply_layout`] calls that
    /// rewrote at least one block) this table has absorbed. The build-time
    /// layout is epoch 0.
    pub fn layout_epoch(&self) -> u64 {
        self.layout_epoch
    }

    /// The admission policy in force.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The shadow-cache size multiplier last applied (construction or
    /// [`TableStore::set_policy`]).
    pub fn shadow_multiplier(&self) -> f64 {
        self.shadow_multiplier
    }

    /// Training-time access frequencies (used by online re-tuners that need
    /// the same inputs the build-time tuner saw).
    pub fn freq(&self) -> &AccessFrequency {
        &self.freq
    }

    /// DRAM cache capacity in vectors.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Replaces the admission policy (used by the tuner). The shadow cache
    /// is created or dropped as needed; cache contents are preserved.
    pub fn set_policy(&mut self, policy: AdmissionPolicy, shadow_multiplier: f64) {
        self.policy = policy;
        self.shadow_multiplier = shadow_multiplier;
        if policy.needs_shadow() {
            if self.shadow.is_none() {
                self.shadow = Some(ShadowCache::new(self.cache.capacity(), shadow_multiplier));
            }
        } else {
            self.shadow = None;
        }
    }

    /// Resizes the DRAM cache online (the budget controller's lever).
    ///
    /// Growing admits immediately; shrinking evicts coldest-first without
    /// touching the survivors (the shed entries count as evictions). The
    /// shadow cache, when present, is rebuilt at the new capacity — its
    /// admission history restarts, like a policy change. The buffer pool
    /// is deliberately left warm so steady-state lookups stay
    /// allocation-free across a resize. `entries` is clamped to at least
    /// the LRU's segment count.
    pub fn set_cache_capacity(&mut self, entries: usize) {
        let shed = self.cache.set_capacity(entries);
        self.metrics.evictions += shed.len() as u64;
        if self.shadow.is_some() {
            self.shadow = Some(ShadowCache::new(self.cache.capacity(), self.shadow_multiplier));
        }
    }

    /// The counters accumulated so far.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// Resets the counters (cache contents survive).
    pub fn reset_metrics(&mut self) {
        self.metrics = CacheMetrics::new();
    }

    /// Captures the DRAM cache contents for a persistence snapshot:
    /// `(vector id, demand-fetched?)` pairs in MRU→LRU order. Payload
    /// bytes are not captured — recovery re-reads them from the device,
    /// which is the durable copy.
    pub fn cache_snapshot(&self) -> Vec<(u32, bool)> {
        self.cache
            .entries_in_order()
            .into_iter()
            .map(|(k, v)| (k as u32, v.0 == Origin::Demand))
            .collect()
    }

    /// Restores cache contents captured by [`TableStore::cache_snapshot`],
    /// re-reading payloads from the device. `entries` is MRU→LRU as the
    /// snapshot recorded it; insertion runs LRU-first so the rebuilt cache
    /// reproduces the recorded eviction order. Ids the catalog no longer
    /// covers (a snapshot that outlived a schema change) are skipped.
    /// Cache counters are untouched: recovery reads are not traffic.
    ///
    /// Returns the number of entries restored.
    ///
    /// # Errors
    ///
    /// Propagates device read failures.
    pub fn rehydrate(
        &mut self,
        device: &mut dyn BlockDevice,
        entries: &[(u32, bool)],
    ) -> Result<usize, BandanaError> {
        let mut pool = std::mem::take(&mut self.pool);
        let result = self.rehydrate_with(device, entries, &mut pool);
        self.pool = pool;
        result
    }

    fn rehydrate_with(
        &mut self,
        device: &mut dyn BlockDevice,
        entries: &[(u32, bool)],
        pool: &mut BlockBufPool,
    ) -> Result<usize, BandanaError> {
        // Entries from the same block share one read; the map holds the
        // frozen block views the restored payload slices alias anyway.
        let mut blocks: HashMap<u32, Bytes> = HashMap::new();
        let mut restored = 0usize;
        for &(v, demand) in entries.iter().rev() {
            if v >= self.num_vectors {
                continue;
            }
            let block = self.layout.block_of(v);
            let raw = match blocks.entry(block) {
                Entry::Occupied(e) => e.get().clone(),
                Entry::Vacant(e) => {
                    let raw = self.read_block_pooled(device, pool, block)?;
                    e.insert(raw.clone());
                    raw
                }
            };
            let slot = self.layout.slot_of(v) as usize;
            let payload = raw.slice(slot * self.vector_bytes..(slot + 1) * self.vector_bytes);
            let origin = if demand { Origin::Demand } else { Origin::Prefetch };
            self.cache.insert(v as u64, (origin, payload), 0.0);
            restored += 1;
        }
        Ok(restored)
    }

    /// Writes the full embedding table to the device in layout order.
    ///
    /// Never-trained vectors (ids beyond `embeddings.num_vectors()`) are
    /// zero-filled. Used at build time and by retraining (§2.2 endurance).
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    pub fn write_embeddings(
        &mut self,
        device: &mut dyn BlockDevice,
        embeddings: &EmbeddingTable,
    ) -> Result<(), BandanaError> {
        let block_size = device.block_size();
        let vectors_per_block = self.layout.vectors_per_block();
        let mut buf = vec![0u8; block_size];
        for b in 0..self.layout.num_blocks() {
            buf.iter_mut().for_each(|x| *x = 0);
            for (slot, &v) in self.layout.vectors_in_block(b).iter().enumerate() {
                let off = slot * self.vector_bytes;
                if v < embeddings.num_vectors() {
                    let bytes = embeddings.vector_as_bytes(v);
                    let len = bytes.len().min(self.vector_bytes);
                    buf[off..off + len].copy_from_slice(&bytes[..len]);
                }
            }
            let _ = vectors_per_block;
            device.write_block(self.base_block + b as u64, &buf)?;
        }
        Ok(())
    }

    /// Atomically remaps the table onto `new_layout`, rewriting exactly the
    /// blocks whose slot contents change.
    ///
    /// This is the apply half of the online SHP loop: the refinement solver
    /// produces a new placement and this method realizes it on the device
    /// between micro-batches. Every source block is read **before** the
    /// first rewrite (a rewritten block may source another rewrite), each
    /// changed destination block is written once, and the in-memory layout
    /// is swapped only after the last write — so a lookup never observes a
    /// mix of old and new placement. Rewrites are real device writes,
    /// charged to the device's endurance meter like retraining.
    ///
    /// The DRAM cache is untouched: entries are keyed by vector id and hold
    /// position-independent payload bytes, so they stay valid under any
    /// remap. Cache counters do not move — a re-layout is not traffic.
    ///
    /// Returns the number of blocks rewritten (0 when `new_layout` places
    /// every vector where it already was).
    ///
    /// # Errors
    ///
    /// Propagates device failures. Like [`TableStore::write_embeddings`], a
    /// write error mid-apply leaves the device region partially rewritten
    /// while the in-memory layout still describes the old placement; the
    /// caller must treat the table as poisoned (re-write or discard it).
    ///
    /// # Panics
    ///
    /// Panics if `new_layout` disagrees with the current layout on vector
    /// count or vectors-per-block.
    pub fn apply_layout(
        &mut self,
        device: &mut dyn BlockDevice,
        new_layout: BlockLayout,
    ) -> Result<u64, BandanaError> {
        assert_eq!(
            new_layout.num_vectors(),
            self.layout.num_vectors(),
            "new layout changes the vector count"
        );
        assert_eq!(
            new_layout.vectors_per_block(),
            self.layout.vectors_per_block(),
            "new layout changes the block capacity"
        );

        let changed: Vec<u32> = (0..self.layout.num_blocks())
            .filter(|&b| self.layout.vectors_in_block(b) != new_layout.vectors_in_block(b))
            .collect();
        if changed.is_empty() {
            self.layout = new_layout;
            return Ok(0);
        }

        // Read phase: every block sourcing a changed destination, exactly
        // once, through the pooled read path. All reads precede all writes.
        let mut pool = std::mem::take(&mut self.pool);
        let mut sources: HashMap<u32, Bytes> = HashMap::new();
        let mut read =
            |this: &mut Self, pool: &mut BlockBufPool, sources: &mut HashMap<u32, Bytes>| {
                for &b in &changed {
                    for &v in new_layout.vectors_in_block(b) {
                        let src = this.layout.block_of(v);
                        if let Entry::Vacant(e) = sources.entry(src) {
                            e.insert(this.read_block_pooled(device, pool, src)?);
                        }
                    }
                }
                Ok::<(), BandanaError>(())
            };
        let read_result = read(self, &mut pool, &mut sources);
        self.pool = pool;
        read_result?;

        // Write phase: assemble each changed block from the old placement's
        // payloads and rewrite it (endurance-charged).
        let block_size = device.block_size();
        let mut buf = vec![0u8; block_size];
        for &b in &changed {
            buf.iter_mut().for_each(|x| *x = 0);
            for (slot, &v) in new_layout.vectors_in_block(b).iter().enumerate() {
                let src = &sources[&self.layout.block_of(v)];
                let old_slot = self.layout.slot_of(v) as usize;
                let off = slot * self.vector_bytes;
                buf[off..off + self.vector_bytes].copy_from_slice(
                    &src[old_slot * self.vector_bytes..(old_slot + 1) * self.vector_bytes],
                );
            }
            device.write_block(self.base_block + u64::from(b), &buf)?;
        }

        self.layout = new_layout;
        self.layout_epoch += 1;
        Ok(changed.len() as u64)
    }

    /// Looks up one vector, reading through to NVM on a miss.
    ///
    /// Returns the vector payload (cheaply cloneable).
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchVector`] for out-of-range ids and
    /// propagates device errors.
    pub fn lookup(&mut self, device: &mut dyn BlockDevice, v: u32) -> Result<Bytes, BandanaError> {
        match self.lookup_cached(v)? {
            Some(bytes) => Ok(bytes),
            None => {
                let mut pool = std::mem::take(&mut self.pool);
                let result = self.lookup_miss(device, v, &mut pool);
                self.pool = pool;
                result
            }
        }
    }

    /// The DRAM-only half of [`TableStore::lookup`]: validates `v`, records
    /// the lookup, and returns the payload if it is cached. On `Ok(None)`
    /// the caller must complete the lookup with the device-side half
    /// (`lookup_miss`); [`crate::ConcurrentStore`] uses this split to avoid
    /// taking the device lock on hits.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchVector`] for out-of-range ids.
    pub fn lookup_cached(&mut self, v: u32) -> Result<Option<Bytes>, BandanaError> {
        if v >= self.num_vectors {
            return Err(BandanaError::NoSuchVector {
                table: self.table_id,
                vector: v,
                vectors: self.num_vectors,
            });
        }
        self.metrics.lookups += 1;
        if let Some(shadow) = &mut self.shadow {
            shadow.record_read(v as u64);
        }
        if let Some((origin, bytes)) = self.cache.get_mut(v as u64) {
            // Promote a prefetched entry to demand-fetched in place: no
            // payload clone, no re-insert, no spurious eviction churn.
            if *origin == Origin::Prefetch {
                *origin = Origin::Demand;
                self.metrics.prefetch_hits += 1;
            }
            let bytes = bytes.clone();
            self.metrics.hits += 1;
            return Ok(Some(bytes));
        }
        Ok(None)
    }

    /// Reads one table block through the buffer pool: the block lands in a
    /// recycled buffer (`read_block_into`, no fresh `Vec` per read) and is
    /// frozen into a zero-copy [`Bytes`] view that payload slices share.
    fn read_block_pooled(
        &mut self,
        device: &mut dyn BlockDevice,
        pool: &mut BlockBufPool,
        block: u32,
    ) -> Result<Bytes, BandanaError> {
        let mut buf = pool.acquire(device.block_size());
        match device.read_block_into(self.base_block + u64::from(block), buf.as_mut_slice()) {
            Ok(()) => Ok(Bytes::from_owner(buf.freeze(pool))),
            Err(e) => {
                buf.recycle(pool);
                Err(e.into())
            }
        }
    }

    /// The device-side half of a lookup. Must only be called after
    /// [`TableStore::lookup_cached`] returned `Ok(None)` for the same `v`.
    /// The block is read into a buffer recycled from `pool`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub(crate) fn lookup_miss(
        &mut self,
        device: &mut dyn BlockDevice,
        v: u32,
        pool: &mut BlockBufPool,
    ) -> Result<Bytes, BandanaError> {
        // Miss: fetch the whole 4 KB block.
        self.metrics.misses += 1;
        self.metrics.block_reads += 1;
        let block = self.layout.block_of(v);
        let raw = self.read_block_pooled(device, pool, block)?;

        let slot = self.layout.slot_of(v) as usize;
        let payload = raw.slice(slot * self.vector_bytes..(slot + 1) * self.vector_bytes);
        if self.cache.insert(v as u64, (Origin::Demand, payload.clone()), 0.0).is_some() {
            self.metrics.evictions += 1;
        }

        if self.policy.prefetches() {
            for (uslot, &u) in self.layout.vectors_in_block(block).iter().enumerate() {
                if u == v || self.cache.contains(u as u64) {
                    continue;
                }
                let shadow_hit = self.shadow.as_ref().is_some_and(|s| s.contains(u as u64));
                if let Some(pos) = self.policy.admit(self.freq.count(u), shadow_hit) {
                    self.metrics.prefetches_admitted += 1;
                    let upayload =
                        raw.slice(uslot * self.vector_bytes..(uslot + 1) * self.vector_bytes);
                    if self.cache.insert(u as u64, (Origin::Prefetch, upayload), pos).is_some() {
                        self.metrics.evictions += 1;
                    }
                }
            }
        }
        Ok(payload)
    }

    /// Looks up a whole query at once, coalescing NVM reads: misses that
    /// land in the same 4 KB block cost **one** block read instead of one
    /// each. Production queries average 18–93 lookups per table (Table 1),
    /// so with SHP placement clustering co-accessed vectors this is the
    /// natural serving interface.
    ///
    /// Returns payloads in `ids` order. Metrics count every element of
    /// `ids` as a lookup; duplicate uncached ids within one batch each
    /// count as a miss but share the block read.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::NoSuchVector`] if *any* id is out of range —
    /// checked up front, before any counter moves or I/O is issued — and
    /// propagates device errors.
    pub fn lookup_batch(
        &mut self,
        device: &mut dyn BlockDevice,
        ids: &[u32],
    ) -> Result<Vec<Bytes>, BandanaError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut pool = std::mem::take(&mut self.pool);
        let result = self.lookup_batch_with(device, ids, &mut scratch, &mut pool);
        let out = result.map(|()| scratch.take_out());
        self.scratch = scratch;
        self.pool = pool;
        out
    }

    /// [`TableStore::lookup_batch`] with caller-owned working state: the
    /// miss plan, output slots, and requested-slot bitset live in
    /// `scratch`, block reads recycle buffers from `pool`, and the
    /// payloads land in [`BatchScratch::out`] (in `ids` order) instead of
    /// a freshly allocated `Vec`. After a few calls have warmed the
    /// scratch and pool to the workload's batch shape, a steady-state call
    /// performs **zero heap allocations** — the property the serving
    /// engine's shard workers (one scratch + pool per worker) rely on.
    ///
    /// # Errors
    ///
    /// As [`TableStore::lookup_batch`]; on error the scratch contents are
    /// unspecified but remain reusable.
    pub fn lookup_batch_with(
        &mut self,
        device: &mut dyn BlockDevice,
        ids: &[u32],
        scratch: &mut BatchScratch,
        pool: &mut BlockBufPool,
    ) -> Result<(), BandanaError> {
        for &v in ids {
            if v >= self.num_vectors {
                return Err(BandanaError::NoSuchVector {
                    table: self.table_id,
                    vector: v,
                    vectors: self.num_vectors,
                });
            }
        }

        scratch.begin(ids.len());
        for (i, &v) in ids.iter().enumerate() {
            match self.lookup_cached(v)? {
                Some(bytes) => scratch.slots[i] = Some(bytes),
                None => scratch.misses.push((self.layout.block_of(v), i as u32)),
            }
        }
        // The miss plan: sorting the (block, position) pairs groups misses
        // by block with ascending positions inside each group — the same
        // deterministic ascending-block read order the old per-call
        // `BTreeMap<u32, Vec<usize>>` produced, without its allocations.
        scratch.misses.sort_unstable();

        let vectors_per_block = self.layout.vectors_per_block();
        let mut group = 0;
        while group < scratch.misses.len() {
            let block = scratch.misses[group].0;
            let end =
                group + scratch.misses[group..].iter().take_while(|&&(b, _)| b == block).count();

            self.metrics.block_reads += 1;
            let raw = self.read_block_pooled(device, pool, block)?;
            scratch.reset_requested(vectors_per_block);
            for m in group..end {
                let pos = scratch.misses[m].1 as usize;
                let v = ids[pos];
                self.metrics.misses += 1;
                let slot = self.layout.slot_of(v) as usize;
                let payload = raw.slice(slot * self.vector_bytes..(slot + 1) * self.vector_bytes);
                if self.cache.insert(v as u64, (Origin::Demand, payload.clone()), 0.0).is_some() {
                    self.metrics.evictions += 1;
                }
                scratch.slots[pos] = Some(payload);
                scratch.mark_requested(slot);
            }

            if self.policy.prefetches() {
                for (uslot, &u) in self.layout.vectors_in_block(block).iter().enumerate() {
                    // The scratch bitset answers "was this slot demanded by
                    // the batch?" in O(1), replacing a linear scan over the
                    // requested ids.
                    if scratch.is_requested(uslot) || self.cache.contains(u as u64) {
                        continue;
                    }
                    let shadow_hit = self.shadow.as_ref().is_some_and(|s| s.contains(u as u64));
                    if let Some(pos) = self.policy.admit(self.freq.count(u), shadow_hit) {
                        self.metrics.prefetches_admitted += 1;
                        let upayload =
                            raw.slice(uslot * self.vector_bytes..(uslot + 1) * self.vector_bytes);
                        if self.cache.insert(u as u64, (Origin::Prefetch, upayload), pos).is_some()
                        {
                            self.metrics.evictions += 1;
                        }
                    }
                }
            }
            group = end;
        }

        let BatchScratch { ref mut slots, ref mut out, .. } = *scratch;
        out.extend(slots.drain(..).map(|slot| slot.expect("every position filled")));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bandana_trace::{spec::TableSpec, TopicModel};
    use nvm_sim::{NvmConfig, NvmDevice};

    fn setup(policy: AdmissionPolicy, cache: usize) -> (TableStore, NvmDevice, EmbeddingTable) {
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 1);
        let emb = EmbeddingTable::synthesize(64, 8, &topics, 2); // 32 B vectors
        let layout = BlockLayout::identity(64, 4096 / 32);
        let freq = AccessFrequency::zeros(64);
        let mut device = NvmDevice::new(
            NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64),
        );
        let mut table = TableStore::new(0, layout, freq, policy, cache, 1.5, 0, 32);
        table.write_embeddings(&mut device, &emb).unwrap();
        device.reset_counters();
        (table, device, emb)
    }

    #[test]
    fn lookup_returns_correct_bytes() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::None, 8);
        for v in [0u32, 17, 63] {
            let got = table.lookup(&mut device, v).unwrap();
            assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice(), "vector {v} corrupted");
        }
    }

    #[test]
    fn hit_skips_device() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        table.lookup(&mut device, 5).unwrap();
        let reads_after_miss = device.counters().reads;
        table.lookup(&mut device, 5).unwrap();
        assert_eq!(device.counters().reads, reads_after_miss);
        assert_eq!(table.metrics().hits, 1);
    }

    #[test]
    fn prefetch_serves_neighbours_without_new_reads() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::All { position: 0.0 }, 256);
        table.lookup(&mut device, 0).unwrap(); // block 0 holds vectors 0..128
        let reads = device.counters().reads;
        let got = table.lookup(&mut device, 1).unwrap();
        assert_eq!(device.counters().reads, reads, "prefetched vector should not hit NVM");
        assert_eq!(got.as_ref(), emb.vector_as_bytes(1).as_slice());
        assert_eq!(table.metrics().prefetch_hits, 1);
    }

    #[test]
    fn out_of_range_vector_rejected() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let err = table.lookup(&mut device, 64).unwrap_err();
        assert!(matches!(err, BandanaError::NoSuchVector { vector: 64, .. }));
        // Failed lookups do not contaminate the counters.
        assert_eq!(table.metrics().lookups, 0);
    }

    #[test]
    fn retraining_overwrites_values() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 9);
        let new_emb = EmbeddingTable::synthesize(64, 8, &topics, 99);
        table.write_embeddings(&mut device, &new_emb).unwrap();
        // Cache still holds old values until they churn out; read an
        // uncached vector and check it reflects the new training.
        let got = table.lookup(&mut device, 40).unwrap();
        assert_eq!(got.as_ref(), new_emb.vector_as_bytes(40).as_slice());
        // A full table rewrite recorded endurance writes.
        assert!(device.endurance().bytes_written() > 0);
    }

    #[test]
    fn set_policy_manages_shadow_cache() {
        let (mut table, _, _) = setup(AdmissionPolicy::None, 8);
        assert!(table.shadow.is_none());
        table.set_policy(AdmissionPolicy::Shadow, 1.5);
        assert!(table.shadow.is_some());
        table.set_policy(AdmissionPolicy::Threshold { t: 5 }, 1.5);
        assert!(table.shadow.is_none());
    }

    #[test]
    fn set_cache_capacity_resizes_without_flushing_hot_entries() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::None, 64);
        for v in 0..20u32 {
            table.lookup(&mut device, v).unwrap();
        }
        // Shrink to 16: the 16 most recent (4..20) survive in order.
        table.set_cache_capacity(16);
        assert_eq!(table.cache_capacity(), 16);
        assert_eq!(
            table.cache_snapshot().iter().map(|e| e.0).collect::<Vec<_>>(),
            (4..20u32).rev().collect::<Vec<_>>(),
            "shrink must keep the most recent entries in order"
        );
        let reads = device.counters().reads;
        let got = table.lookup(&mut device, 19).unwrap();
        assert_eq!(got.as_ref(), emb.vector_as_bytes(19).as_slice());
        assert_eq!(device.counters().reads, reads, "survivor must still hit in DRAM");
        // Grow back: admits immediately, survivors untouched.
        let evictions = table.metrics().evictions;
        table.set_cache_capacity(64);
        table.lookup(&mut device, 0).unwrap();
        assert_eq!(table.metrics().evictions, evictions, "grow must not evict");
        assert_eq!(table.cache_capacity(), 64);
    }

    #[test]
    fn set_cache_capacity_rebuilds_shadow_at_new_size() {
        let (mut table, _, _) = setup(AdmissionPolicy::Shadow, 64);
        assert!(table.shadow.is_some());
        table.set_cache_capacity(32);
        let shadow = table.shadow.as_ref().expect("shadow survives resize");
        assert_eq!(shadow.capacity(), (32.0 * 1.5) as usize);
    }

    #[test]
    fn cache_snapshot_round_trips_through_rehydrate() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::None, 8);
        for v in [0u32, 17, 63] {
            table.lookup(&mut device, v).unwrap();
        }
        let snap = table.cache_snapshot();
        assert_eq!(snap.iter().map(|e| e.0).collect::<Vec<_>>(), vec![63, 17, 0]);
        assert!(snap.iter().all(|e| e.1), "demand-fetched entries must be flagged demand");

        let (mut fresh, mut fresh_device, _) = setup(AdmissionPolicy::None, 8);
        let restored = fresh.rehydrate(&mut fresh_device, &snap).unwrap();
        assert_eq!(restored, 3);
        assert_eq!(fresh.cache_snapshot(), snap, "rehydrate must reproduce eviction order");
        assert_eq!(fresh.metrics().lookups, 0, "rehydration is not serving traffic");
        let reads = fresh_device.counters().reads;
        let got = fresh.lookup(&mut fresh_device, 63).unwrap();
        assert_eq!(got.as_ref(), emb.vector_as_bytes(63).as_slice());
        assert_eq!(fresh_device.counters().reads, reads, "rehydrated entry must hit in DRAM");
    }

    #[test]
    fn rehydrate_skips_ids_beyond_the_catalog_and_keeps_origin() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let restored = table.rehydrate(&mut device, &[(200, true), (3, false)]).unwrap();
        assert_eq!(restored, 1, "out-of-range id must be skipped, not fail recovery");
        assert_eq!(table.cache_snapshot(), vec![(3, false)]);
        assert_eq!(device.counters().writes, 0, "rehydration must never write the device");
    }

    #[test]
    fn batch_returns_same_bytes_as_sequential() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::None, 8);
        let ids = [0u32, 17, 63, 17, 5];
        let batch = table.lookup_batch(&mut device, &ids).unwrap();
        for (i, &v) in ids.iter().enumerate() {
            assert_eq!(batch[i].as_ref(), emb.vector_as_bytes(v).as_slice(), "id {v}");
        }
        assert_eq!(table.metrics().lookups, ids.len() as u64);
    }

    #[test]
    fn batch_coalesces_same_block_misses() {
        // Vectors 0..128 share block 0 in the identity layout (32 B
        // vectors, 4 KB blocks → 128 slots). Sequential lookups with no
        // prefetch pay one read each; the batch pays one read total.
        let (mut seq_table, mut seq_device, _) = setup(AdmissionPolicy::None, 8);
        let (mut batch_table, mut batch_device, _) = setup(AdmissionPolicy::None, 8);
        let ids = [0u32, 1, 2, 3];
        for &v in &ids {
            seq_table.lookup(&mut seq_device, v).unwrap();
        }
        batch_table.lookup_batch(&mut batch_device, &ids).unwrap();
        assert_eq!(seq_device.counters().reads, 4);
        assert_eq!(batch_device.counters().reads, 1, "batch must coalesce the block");
        assert_eq!(batch_table.metrics().misses, 4);
        assert_eq!(batch_table.metrics().block_reads, 1);
    }

    #[test]
    fn batch_respects_admission_policy() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::All { position: 0.0 }, 256);
        table.lookup_batch(&mut device, &[0, 1]).unwrap();
        // All 64 vectors fit one block (32 B vectors, 128 slots); the 62
        // non-requested ones are prefetch candidates and admit-all takes
        // every one.
        assert_eq!(table.metrics().prefetches_admitted, 62);
        // Everything now hits.
        table.lookup_batch(&mut device, &[40, 41]).unwrap();
        assert_eq!(table.metrics().hits, 2);
    }

    #[test]
    fn large_same_block_batch_prefetches_exactly_the_unrequested_vectors() {
        // All 64 vectors live in block 0 (identity layout, 128 slots). A
        // batch demanding 48 of them — with duplicates — must admit
        // prefetches for exactly the other 16: the requested-slot bitset
        // has to agree with the old linear `requested.contains` scan even
        // when the batch is large and repetitive.
        let (mut table, mut device, emb) = setup(AdmissionPolicy::All { position: 0.0 }, 256);
        let mut ids: Vec<u32> = (0..48u32).collect();
        ids.extend((0..48u32).map(|v| v / 2)); // 48 duplicate demands
        let out = table.lookup_batch(&mut device, &ids).unwrap();
        for (i, &v) in ids.iter().enumerate() {
            assert_eq!(out[i].as_ref(), emb.vector_as_bytes(v).as_slice(), "id {v}");
        }
        assert_eq!(table.metrics().prefetches_admitted, 64 - 48);
        assert_eq!(table.metrics().block_reads, 1);
        // The prefetched 16 now hit without further reads.
        let reads = device.counters().reads;
        table.lookup_batch(&mut device, &(48..64u32).collect::<Vec<_>>()).unwrap();
        assert_eq!(device.counters().reads, reads);
        assert_eq!(table.metrics().prefetch_hits, 16);
    }

    #[test]
    fn scratch_path_matches_convenience_path_and_reuses_buffers() {
        let (mut table, mut device, emb) = setup(AdmissionPolicy::None, 8);
        let mut scratch = BatchScratch::new();
        let mut pool = nvm_sim::BlockBufPool::default();
        let ids = [0u32, 17, 63, 17, 5];
        table.lookup_batch_with(&mut device, &ids, &mut scratch, &mut pool).unwrap();
        assert_eq!(scratch.out().len(), ids.len());
        for (i, &v) in ids.iter().enumerate() {
            assert_eq!(scratch.out()[i].as_ref(), emb.vector_as_bytes(v).as_slice(), "id {v}");
        }
    }

    #[test]
    fn pool_recycles_buffers_once_the_cache_churns() {
        // Eight vectors per block across eight blocks, cache of eight:
        // cycling through the blocks keeps missing while older blocks'
        // cached slices are evicted, releasing their buffers for reuse.
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 1);
        let emb = EmbeddingTable::synthesize(64, 8, &topics, 2); // 32 B vectors
        let layout = BlockLayout::identity(64, 8);
        let mut device = NvmDevice::new(
            NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64),
        );
        let mut table = TableStore::new(
            0,
            layout,
            AccessFrequency::zeros(64),
            AdmissionPolicy::None,
            8,
            1.5,
            0,
            32,
        );
        table.write_embeddings(&mut device, &emb).unwrap();
        let mut scratch = BatchScratch::new();
        let mut pool = nvm_sim::BlockBufPool::default();
        for round in 0..4u32 {
            for b in 0..8u32 {
                let ids = [b * 8, b * 8 + 1];
                table.lookup_batch_with(&mut device, &ids, &mut scratch, &mut pool).unwrap();
            }
            let _ = round;
        }
        let stats = pool.stats();
        assert!(stats.reuses > 0, "pool never recycled: {stats:?}");
        assert!(
            stats.allocs < stats.acquires,
            "steady-state misses must stop allocating: {stats:?}"
        );
        // Payloads still correct after heavy buffer recycling.
        table.lookup_batch_with(&mut device, &[9, 25], &mut scratch, &mut pool).unwrap();
        assert_eq!(scratch.out()[0].as_ref(), emb.vector_as_bytes(9).as_slice());
        assert_eq!(scratch.out()[1].as_ref(), emb.vector_as_bytes(25).as_slice());
    }

    #[test]
    fn batch_validates_before_any_io() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let err = table.lookup_batch(&mut device, &[3, 200]).unwrap_err();
        assert!(matches!(err, BandanaError::NoSuchVector { vector: 200, .. }));
        assert_eq!(table.metrics().lookups, 0, "failed batch must not move counters");
        assert_eq!(device.counters().reads, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let out = table.lookup_batch(&mut device, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(table.metrics().lookups, 0);
    }

    #[test]
    fn apply_layout_preserves_bytes_and_charges_endurance() {
        // 8 vectors per block so a remap spans several physical blocks.
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 1);
        let emb = EmbeddingTable::synthesize(64, 8, &topics, 2); // 32 B vectors
        let layout = BlockLayout::identity(64, 8);
        let mut device = NvmDevice::new(
            NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64),
        );
        let mut t = TableStore::new(
            0,
            layout,
            AccessFrequency::zeros(64),
            AdmissionPolicy::None,
            8,
            1.5,
            0,
            32,
        );
        t.write_embeddings(&mut device, &emb).unwrap();
        device.reset_counters();
        let endurance_before = device.endurance().bytes_written();
        assert_eq!(t.layout_epoch(), 0);

        // Reverse the placement: every block's contents change.
        let new = BlockLayout::from_order((0..64u32).rev().collect(), 8);
        let rewritten = t.apply_layout(&mut device, new).unwrap();
        assert_eq!(rewritten, 8, "every block changed");
        assert_eq!(t.layout_epoch(), 1);
        assert_eq!(device.counters().writes, 8, "one write per changed block");
        assert!(
            device.endurance().bytes_written() > endurance_before,
            "rewrites must be charged to endurance"
        );
        for v in 0..64u32 {
            let got = t.lookup(&mut device, v).unwrap();
            assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice(), "vector {v} corrupted");
        }
    }

    #[test]
    fn apply_layout_rewrites_only_changed_blocks_and_keeps_cache() {
        let spec = TableSpec::test_small(64);
        let topics = TopicModel::new(&spec, 1);
        let emb = EmbeddingTable::synthesize(64, 8, &topics, 2);
        let layout = BlockLayout::identity(64, 8);
        let mut device = NvmDevice::new(
            NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64),
        );
        let mut t = TableStore::new(
            0,
            layout,
            AccessFrequency::zeros(64),
            AdmissionPolicy::None,
            8,
            1.5,
            0,
            32,
        );
        t.write_embeddings(&mut device, &emb).unwrap();
        device.reset_counters();

        // Warm the cache with vectors from an untouched block.
        t.lookup(&mut device, 40).unwrap();
        t.lookup(&mut device, 41).unwrap();
        let lookups_before = t.metrics().lookups;

        // Swap the first two vectors: both live in block 0, so exactly one
        // block changes.
        let mut order: Vec<u32> = (0..64).collect();
        order.swap(0, 1);
        let rewritten = t.apply_layout(&mut device, BlockLayout::from_order(order, 8)).unwrap();
        assert_eq!(rewritten, 1, "only the block holding the swapped pair changes");
        assert_eq!(device.counters().writes, 1);
        assert_eq!(t.metrics().lookups, lookups_before, "a re-layout is not traffic");

        // Cached entries survive the remap and still hit in DRAM.
        let reads = device.counters().reads;
        let got = t.lookup(&mut device, 40).unwrap();
        assert_eq!(got.as_ref(), emb.vector_as_bytes(40).as_slice());
        assert_eq!(device.counters().reads, reads, "cache keys must survive the remap");

        // The moved vectors read back correctly from their new slots.
        for v in [0u32, 1] {
            let got = t.lookup(&mut device, v).unwrap();
            assert_eq!(got.as_ref(), emb.vector_as_bytes(v).as_slice(), "vector {v}");
        }

        // Re-applying the identical layout is a free no-op.
        let again = t.layout().clone();
        assert_eq!(t.apply_layout(&mut device, again).unwrap(), 0);
        assert_eq!(t.layout_epoch(), 1, "a no-op apply is not a new epoch");
    }

    #[test]
    #[should_panic(expected = "block capacity")]
    fn apply_layout_rejects_capacity_change() {
        let (mut table, mut device, _) = setup(AdmissionPolicy::None, 8);
        let bad = BlockLayout::identity(64, 16);
        let _ = table.apply_layout(&mut device, bad);
    }

    #[test]
    fn metrics_match_cache_sim_semantics() {
        // The byte-serving table and the id-only simulator must agree on
        // counters for the same stream.
        let (mut table, mut device, _) = setup(AdmissionPolicy::All { position: 0.5 }, 16);
        let layout = BlockLayout::identity(64, 128);
        let freq = AccessFrequency::zeros(64);
        let mut sim = bandana_cache::PrefetchCacheSim::new(
            &layout,
            16,
            AdmissionPolicy::All { position: 0.5 },
            freq,
        );
        let stream: Vec<u32> = (0..200).map(|i| (i * 13) % 64).collect();
        for &v in &stream {
            table.lookup(&mut device, v).unwrap();
            sim.lookup(v);
        }
        assert_eq!(table.metrics(), sim.metrics());
    }
}
