//! The end-to-end experiment pipeline: generate → train → place → tune →
//! serve → report.
//!
//! Every limited-cache experiment in the paper follows the same recipe
//! (§5): train SHP (or K-means) on a training trace, lay the tables out,
//! collect access frequencies, pick thresholds with miniature caches, then
//! replay a disjoint evaluation trace and compare block reads against the
//! single-vector baseline. [`run_pipeline`] packages that recipe; the bench
//! harness parameterizes it per figure.

use crate::bandwidth::{effective_bandwidth_sweep, overall_gain, TableGain};
use crate::config::PartitionerKind;
use crate::store::build_layouts_and_freqs;
use crate::tuner::{tune_thresholds, TunerConfig};
use bandana_cache::{allocate_dram, AdmissionPolicy, HitRateCurve};
use bandana_trace::{EmbeddingTable, ModelSpec, StackDistances, Trace, TraceGenerator};
use serde::{Deserialize, Serialize};

/// Configuration of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The workload model (tables, skew, vector geometry).
    pub spec: ModelSpec,
    /// Training-trace length in requests (drives SHP/frequencies/tuning).
    pub train_requests: usize,
    /// Evaluation-trace length in requests.
    pub eval_requests: usize,
    /// Placement algorithm.
    pub partitioner: PartitionerKind,
    /// Total DRAM budget in vectors, divided across tables.
    pub cache_vectors_total: usize,
    /// Admission policy; `None` here means "tune thresholds per table with
    /// miniature caches".
    pub admission: Option<AdmissionPolicy>,
    /// Candidate thresholds for tuning.
    pub candidate_thresholds: Vec<u32>,
    /// Miniature-cache sampling rate.
    pub mini_sampling_rate: f64,
    /// Divide DRAM by hit-rate curves (vs proportional to lookup share).
    pub allocate_by_hit_rate_curves: bool,
    /// Shadow multiplier for shadow-based policies.
    pub shadow_multiplier: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            spec: ModelSpec::test_small(),
            train_requests: 300,
            eval_requests: 150,
            partitioner: PartitionerKind::default(),
            cache_vectors_total: 512,
            admission: None,
            candidate_thresholds: vec![2, 5, 10, 15, 20],
            mini_sampling_rate: 0.1,
            allocate_by_hit_rate_curves: true,
            shadow_multiplier: 1.5,
            seed: 0,
        }
    }
}

/// The outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-table effective-bandwidth results.
    pub tables: Vec<TableGain>,
    /// Per-table cache capacities chosen by the allocator.
    pub capacities: Vec<usize>,
    /// Per-table admission policies in force during evaluation.
    pub policies: Vec<AdmissionPolicy>,
    /// Evaluation-trace lookups.
    pub eval_lookups: u64,
}

impl PipelineReport {
    /// Read-weighted mean effective-bandwidth increase across tables.
    pub fn overall_gain(&self) -> f64 {
        overall_gain(&self.tables)
    }

    /// The gain of one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn table_gain(&self, table: usize) -> f64 {
        self.tables[table].gain
    }
}

/// Runs the full Bandana pipeline and reports per-table gains.
///
/// See the crate-level docs for an example.
///
/// # Panics
///
/// Panics on invalid configuration (zero-sized traces or caches, malformed
/// spec).
pub fn run_pipeline(config: &PipelineConfig) -> PipelineReport {
    assert!(config.train_requests > 0, "need a training trace");
    assert!(config.eval_requests > 0, "need an evaluation trace");
    assert!(config.cache_vectors_total > 0, "need a cache");
    config.spec.validate().expect("invalid model spec");

    let mut generator = TraceGenerator::new(&config.spec, config.seed);
    let train = generator.generate_requests(config.train_requests);
    let eval = generator.generate_requests(config.eval_requests);
    run_pipeline_on_traces(config, &generator, &train, &eval)
}

/// Like [`run_pipeline`] but over caller-supplied traces (used by benches
/// that sweep the training-set size over a fixed evaluation trace, e.g.
/// Figures 9 and 15).
pub fn run_pipeline_on_traces(
    config: &PipelineConfig,
    generator: &TraceGenerator,
    train: &Trace,
    eval: &Trace,
) -> PipelineReport {
    let spec = &config.spec;
    let vectors_per_block = (4096 / spec.vector_bytes()).max(1);

    // Embeddings are only materialized for semantic partitioners.
    let embeddings: Vec<EmbeddingTable> = match config.partitioner {
        PartitionerKind::KMeans { .. } | PartitionerKind::TwoStageKMeans { .. } => (0..spec
            .num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    config.seed.wrapping_add(t as u64),
                )
            })
            .collect(),
        _ => Vec::new(),
    };

    let (layouts, freqs) = build_layouts_and_freqs(
        spec,
        train,
        config.partitioner,
        vectors_per_block,
        &embeddings,
        config.seed,
    );

    // DRAM division.
    let total = config.cache_vectors_total;
    let weights: Vec<f64> = (0..spec.num_tables())
        .map(|t| train.table_lookups(t) as f64 / train.total_lookups().max(1) as f64)
        .collect();
    let capacities: Vec<usize> = if config.allocate_by_hit_rate_curves {
        let sizes: Vec<usize> =
            [64usize, 16, 8, 4, 2, 1].iter().map(|d| (total / d).max(1)).collect();
        let curves: Vec<HitRateCurve> = (0..spec.num_tables())
            .map(|t| {
                let stream = train.table_stream(t);
                if stream.is_empty() {
                    return HitRateCurve::new(vec![(0, 0.0)]);
                }
                let mut sd = StackDistances::with_capacity(stream.len());
                sd.access_all(stream.iter().map(|&v| v as u64));
                HitRateCurve::new(sd.hit_rate_curve(&sizes))
            })
            .collect();
        allocate_dram(total, &curves, &weights, (total / 64).max(1))
            .into_iter()
            .map(|c| c.max(1))
            .collect()
    } else {
        weights.iter().map(|w| ((total as f64 * w) as usize).max(1)).collect()
    };

    // Admission: explicit policy or per-table tuned threshold.
    let policies: Vec<AdmissionPolicy> = match config.admission {
        Some(policy) => vec![policy; spec.num_tables()],
        None => (0..spec.num_tables())
            .map(|t| {
                let chosen = tune_thresholds(
                    &layouts[t],
                    &freqs[t],
                    &train.table_stream(t),
                    &TunerConfig {
                        cache_capacity: capacities[t],
                        sampling_rate: config.mini_sampling_rate,
                        candidate_thresholds: config.candidate_thresholds.clone(),
                        salt: config.seed.wrapping_add(t as u64),
                    },
                );
                AdmissionPolicy::Threshold { t: chosen }
            })
            .collect(),
    };

    let tables = effective_bandwidth_sweep(
        eval,
        &layouts,
        &freqs,
        &capacities,
        &policies,
        config.shadow_multiplier,
    );

    PipelineReport { tables, capacities, policies, eval_lookups: eval.total_lookups() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_beats_baseline() {
        let report = run_pipeline(&PipelineConfig::default());
        assert_eq!(report.tables.len(), 2);
        assert!(report.overall_gain() > 0.0, "gain {}", report.overall_gain());
        assert_eq!(report.capacities.len(), 2);
        assert!(report.eval_lookups > 0);
    }

    #[test]
    fn shp_beats_random_layout() {
        let base = PipelineConfig { seed: 3, ..PipelineConfig::default() };
        let shp = run_pipeline(&PipelineConfig {
            partitioner: PartitionerKind::Shp { iterations: 8 },
            ..base.clone()
        });
        let random = run_pipeline(&PipelineConfig { partitioner: PartitionerKind::Random, ..base });
        assert!(
            shp.overall_gain() > random.overall_gain(),
            "SHP {} should beat random {}",
            shp.overall_gain(),
            random.overall_gain()
        );
    }

    #[test]
    fn explicit_policy_is_used_verbatim() {
        let report = run_pipeline(&PipelineConfig {
            admission: Some(AdmissionPolicy::All { position: 0.5 }),
            ..PipelineConfig::default()
        });
        assert!(report.policies.iter().all(|p| *p == AdmissionPolicy::All { position: 0.5 }));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PipelineConfig { seed: 9, ..PipelineConfig::default() };
        let a = run_pipeline(&cfg);
        let b = run_pipeline(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_cache_improves_hit_rate() {
        // Note: the *relative gain* over the baseline is not monotone in
        // cache size once the cache approaches the working set (the baseline
        // becomes perfect too); absolute hit rate is the monotone quantity.
        let small =
            run_pipeline(&PipelineConfig { cache_vectors_total: 128, ..PipelineConfig::default() });
        let large = run_pipeline(&PipelineConfig {
            cache_vectors_total: 2048,
            ..PipelineConfig::default()
        });
        let hr = |r: &PipelineReport| {
            r.tables.iter().map(|t| t.hit_rate).sum::<f64>() / r.tables.len() as f64
        };
        assert!(
            hr(&large) + 0.01 >= hr(&small),
            "large-cache hit rate {} below small-cache {}",
            hr(&large),
            hr(&small)
        );
    }

    #[test]
    #[should_panic(expected = "need a training trace")]
    fn zero_train_rejected() {
        let _ = run_pipeline(&PipelineConfig { train_requests: 0, ..PipelineConfig::default() });
    }
}
