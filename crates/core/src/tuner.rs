//! Threshold auto-tuning with miniature caches (paper §4.3.3).
//!
//! For each table, Bandana simulates one miniature cache per candidate
//! threshold over a hash-sampled slice of the lookup stream and adopts the
//! threshold with the best estimated effective bandwidth. Table 2 of the
//! paper shows 0.1% sampling already picks near-oracle thresholds.

use bandana_cache::MiniatureCacheSet;
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};

/// Configuration for [`tune_thresholds`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// The production cache size being tuned for, in vectors.
    pub cache_capacity: usize,
    /// Spatial sampling rate of the miniature caches.
    pub sampling_rate: f64,
    /// Candidate thresholds (Figure 12 sweeps 5–20).
    pub candidate_thresholds: Vec<u32>,
    /// Hash salt (vary to resample).
    pub salt: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            cache_capacity: 4096,
            sampling_rate: 0.001,
            candidate_thresholds: vec![5, 10, 15, 20],
            salt: 0,
        }
    }
}

/// Picks the best admission threshold for one table by simulating miniature
/// caches over `stream` (the table's lookup ids, in order).
///
/// Returns the winning threshold from `config.candidate_thresholds`.
///
/// # Example
///
/// ```
/// use bandana_core::{tune_thresholds, TunerConfig};
/// use bandana_partition::{AccessFrequency, BlockLayout};
///
/// let layout = BlockLayout::identity(512, 32);
/// let freq = AccessFrequency::zeros(512);
/// let stream: Vec<u32> = (0..2000).map(|i| (i * 7) % 512).collect();
/// let config = TunerConfig { cache_capacity: 128, sampling_rate: 0.5, ..Default::default() };
/// let t = tune_thresholds(&layout, &freq, &stream, &config);
/// assert!(config.candidate_thresholds.contains(&t));
/// ```
///
/// # Panics
///
/// Panics if the candidate list is empty or the capacity is zero.
pub fn tune_thresholds(
    layout: &BlockLayout,
    freq: &AccessFrequency,
    stream: &[u32],
    config: &TunerConfig,
) -> u32 {
    let mut minis = MiniatureCacheSet::new(
        layout,
        freq,
        config.cache_capacity,
        config.sampling_rate,
        &config.candidate_thresholds,
        config.salt,
    );
    for &v in stream {
        minis.observe(v);
    }
    minis.best_threshold()
}

/// Runs the tuner at several sampling rates plus the full-cache oracle and
/// returns `(rate, chosen threshold, estimated gain)` rows — the data of the
/// paper's Table 2 and Figure 14.
pub fn sampling_rate_study(
    layout: &BlockLayout,
    freq: &AccessFrequency,
    stream: &[u32],
    cache_capacity: usize,
    candidate_thresholds: &[u32],
    rates: &[f64],
    salt: u64,
) -> Vec<(f64, u32, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let mut minis = MiniatureCacheSet::new(
                layout,
                freq,
                cache_capacity,
                rate,
                candidate_thresholds,
                salt,
            );
            for &v in stream {
                minis.observe(v);
            }
            let t = minis.best_threshold();
            let gain = minis
                .estimated_gains()
                .into_iter()
                .find(|&(tt, _)| tt == t)
                .map(|(_, g)| g)
                .unwrap_or(0.0);
            (rate, t, gain)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload where the hot half of each block is worth prefetching and
    /// the cold half is pollution; training frequencies separate them.
    fn skewed_setup() -> (BlockLayout, AccessFrequency, Vec<u32>) {
        let n = 1024u32;
        let layout = BlockLayout::identity(n, 32);
        // Hot vectors: the first 16 slots of each block.
        let train: Vec<Vec<u32>> = (0..200)
            .map(|i| {
                let block = (i * 13) % 32;
                (0..16u32).map(|s| block * 32 + s).collect()
            })
            .collect();
        let freq = AccessFrequency::from_queries(n, train.iter().map(|q| q.as_slice()));
        let mut stream = Vec::new();
        for i in 0..400u32 {
            let block = (i * 13) % 32;
            for s in 0..16u32 {
                stream.push(block * 32 + s);
            }
        }
        (layout, freq, stream)
    }

    #[test]
    fn tuner_returns_a_candidate() {
        let (layout, freq, stream) = skewed_setup();
        let cfg = TunerConfig {
            cache_capacity: 256,
            sampling_rate: 1.0,
            candidate_thresholds: vec![5, 10, 1000],
            salt: 1,
        };
        let t = tune_thresholds(&layout, &freq, &stream, &cfg);
        assert!(cfg.candidate_thresholds.contains(&t));
        // Hot vectors appear ~100 times in training; t=1000 blocks all
        // prefetching and must lose to an admitting threshold.
        assert_ne!(t, 1000);
    }

    #[test]
    fn sampled_tuning_matches_full_cache_choice() {
        let (layout, freq, stream) = skewed_setup();
        let rows = sampling_rate_study(&layout, &freq, &stream, 256, &[5, 1000], &[1.0, 0.25], 2);
        assert_eq!(rows.len(), 2);
        let full = rows[0].1;
        let sampled = rows[1].1;
        assert_eq!(full, sampled, "sampled tuner diverged: {rows:?}");
    }

    #[test]
    fn gains_are_reported() {
        let (layout, freq, stream) = skewed_setup();
        let rows = sampling_rate_study(&layout, &freq, &stream, 256, &[5], &[1.0], 3);
        // Prefetching the hot half of each block must be a large win.
        assert!(rows[0].2 > 1.0, "expected a big gain, got {rows:?}");
    }
}
