//! Error types for the Bandana store.

use nvm_sim::NvmError;
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::BandanaStore`] and friends.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BandanaError {
    /// The underlying NVM device failed.
    Nvm(NvmError),
    /// A lookup referenced a table index that does not exist.
    NoSuchTable {
        /// The requested table.
        table: usize,
        /// Number of tables in the store.
        tables: usize,
    },
    /// A lookup referenced a vector id outside its table.
    NoSuchVector {
        /// The requested table.
        table: usize,
        /// The requested vector id.
        vector: u32,
        /// Number of vectors in the table.
        vectors: u32,
    },
    /// The configuration was inconsistent with the model.
    Config(String),
}

impl fmt::Display for BandanaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandanaError::Nvm(e) => write!(f, "nvm device error: {e}"),
            BandanaError::NoSuchTable { table, tables } => {
                write!(f, "table {table} out of range ({tables} tables)")
            }
            BandanaError::NoSuchVector { table, vector, vectors } => {
                write!(f, "vector {vector} out of range for table {table} ({vectors} vectors)")
            }
            BandanaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for BandanaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BandanaError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for BandanaError {
    fn from(e: NvmError) -> Self {
        BandanaError::Nvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BandanaError::NoSuchTable { table: 9, tables: 8 };
        assert!(e.to_string().contains("table 9"));
        let e = BandanaError::NoSuchVector { table: 1, vector: 100, vectors: 50 };
        assert!(e.to_string().contains("vector 100"));
        let e = BandanaError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn nvm_error_converts_and_sources() {
        let nvm = NvmError::InvalidConfig("zero capacity");
        let e: BandanaError = nvm.clone().into();
        assert_eq!(e, BandanaError::Nvm(nvm));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<BandanaError>();
    }
}
