//! Store configuration.

use bandana_cache::AdmissionPolicy;
use serde::{Deserialize, Serialize};

/// Which placement algorithm lays the table out on NVM (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PartitionerKind {
    /// Keep the original column order (the paper's unsorted baseline).
    Identity,
    /// A seeded random order (no locality at all).
    Random,
    /// Social Hash Partitioner on the training queries (§4.2.2).
    Shp {
        /// Refinement iterations per bisection (paper: 16).
        iterations: u32,
    },
    /// Flat K-means over the embedding values (§4.2.1).
    KMeans {
        /// Number of clusters.
        k: usize,
        /// Lloyd iterations (paper: 20).
        iterations: u32,
    },
    /// Two-stage recursive K-means (§4.2.1, Figures 7b/8).
    TwoStageKMeans {
        /// First-stage cluster count (paper: 256).
        first_stage_k: usize,
        /// Total sub-clusters.
        total_subclusters: usize,
        /// Lloyd iterations per stage.
        iterations: u32,
    },
}

impl Default for PartitionerKind {
    fn default() -> Self {
        PartitionerKind::Shp { iterations: 16 }
    }
}

/// Configuration of a [`crate::BandanaStore`].
///
/// # Example
///
/// ```
/// use bandana_core::BandanaConfig;
///
/// let config = BandanaConfig::default()
///     .with_cache_vectors(100_000)
///     .with_seed(7);
/// assert_eq!(config.block_size, 4096);
/// assert_eq!(config.cache_vectors_total, 100_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandanaConfig {
    /// NVM block size in bytes (4 KB on the paper's device).
    pub block_size: usize,
    /// Total DRAM budget across all tables, in vectors (paper §5 uses 4 M).
    pub cache_vectors_total: usize,
    /// Placement algorithm.
    pub partitioner: PartitionerKind,
    /// Prefetch admission policy applied to every table unless the tuner
    /// overrides it per table.
    pub admission: AdmissionPolicy,
    /// Shadow cache multiplier (only used by shadow policies).
    pub shadow_multiplier: f64,
    /// Enable per-table threshold tuning with miniature caches (§4.3.3).
    pub tune_thresholds: bool,
    /// Candidate thresholds for the tuner (Figure 12 sweeps 5–20).
    pub candidate_thresholds: Vec<u32>,
    /// Miniature-cache sampling rate (paper: 0.001 suffices).
    pub mini_sampling_rate: f64,
    /// Divide DRAM across tables by hit-rate curves instead of lookup share.
    pub allocate_by_hit_rate_curves: bool,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for BandanaConfig {
    fn default() -> Self {
        BandanaConfig {
            block_size: 4096,
            cache_vectors_total: 4096,
            partitioner: PartitionerKind::default(),
            admission: AdmissionPolicy::default(),
            shadow_multiplier: 1.5,
            tune_thresholds: true,
            candidate_thresholds: vec![5, 10, 15, 20],
            mini_sampling_rate: 0.1,
            allocate_by_hit_rate_curves: true,
            seed: 0,
        }
    }
}

impl BandanaConfig {
    /// Sets the total DRAM budget in vectors.
    pub fn with_cache_vectors(mut self, vectors: usize) -> Self {
        self.cache_vectors_total = vectors;
        self
    }

    /// Sets the placement algorithm.
    pub fn with_partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Sets the admission policy (and disables threshold tuning, since an
    /// explicit policy is a manual override).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self.tune_thresholds = false;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Vectors that fit in one NVM block for a given vector size.
    ///
    /// # Panics
    ///
    /// Panics if `vector_bytes` is zero or exceeds the block size.
    pub fn vectors_per_block(&self, vector_bytes: usize) -> usize {
        assert!(vector_bytes > 0, "vector size must be non-zero");
        assert!(vector_bytes <= self.block_size, "vector larger than a block");
        self.block_size / vector_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size == 0 {
            return Err("block size must be non-zero".into());
        }
        if self.cache_vectors_total == 0 {
            return Err("cache must hold at least one vector".into());
        }
        if !(0.0 < self.mini_sampling_rate && self.mini_sampling_rate <= 1.0) {
            return Err(format!("sampling rate {} outside (0,1]", self.mini_sampling_rate));
        }
        if self.tune_thresholds && self.candidate_thresholds.is_empty() {
            return Err("tuning enabled but no candidate thresholds".into());
        }
        if self.shadow_multiplier <= 0.0 {
            return Err("shadow multiplier must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BandanaConfig::default();
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.partitioner, PartitionerKind::Shp { iterations: 16 });
        assert_eq!(c.candidate_thresholds, vec![5, 10, 15, 20]);
        c.validate().unwrap();
        // 128 B vectors -> 32 per block, as in the paper.
        assert_eq!(c.vectors_per_block(128), 32);
        assert_eq!(c.vectors_per_block(64), 64);
        assert_eq!(c.vectors_per_block(256), 16);
    }

    #[test]
    fn builder_chains() {
        let c = BandanaConfig::default()
            .with_cache_vectors(10)
            .with_partitioner(PartitionerKind::Random)
            .with_seed(3);
        assert_eq!(c.cache_vectors_total, 10);
        assert_eq!(c.partitioner, PartitionerKind::Random);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn explicit_admission_disables_tuning() {
        let c = BandanaConfig::default()
            .with_admission(bandana_cache::AdmissionPolicy::All { position: 0.5 });
        assert!(!c.tune_thresholds);
    }

    #[test]
    fn validation_catches_problems() {
        let c = BandanaConfig { cache_vectors_total: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = BandanaConfig { mini_sampling_rate: 0.0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = BandanaConfig { candidate_thresholds: Vec::new(), ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "vector larger than a block")]
    fn oversized_vector_rejected() {
        let _ = BandanaConfig::default().vectors_per_block(8192);
    }
}
