//! Latency accounting: mergeable log-bucketed histograms with tail
//! quantiles, cumulative and windowed.
//!
//! Serving systems are judged on their latency *distribution*, not the
//! mean: the paper's own device evaluation (Figures 2 and 5) plots P99
//! next to the average, and a sharded engine must aggregate distributions
//! recorded independently by every shard. [`LatencyHistogram`] wraps the
//! log-bucketed [`nvm_sim::Histogram`] (bounded ~3% relative bucket error)
//! behind a quantile-oriented API and an exact, associative
//! [`merge`](LatencyHistogram::merge): shard histograms can be combined in
//! any order and yield identical quantiles, because merging just adds
//! bucket counts.
//!
//! A control loop needs more than lifetime totals: a tenant whose p99 was
//! terrible an hour ago but is healthy *now* must not stay shed forever.
//! [`WindowedHistogram`] keeps a ring of recent slots over the same
//! log-bucketed representation — samples decay out as the ring
//! [rotates](WindowedHistogram::rotate) — so the
//! [control plane](crate::control) can act on a recent-window p99 while
//! the cumulative histograms keep reporting lifetime distributions.
//! Rotation is driven externally (by the engine's metrics bus), never by
//! a hidden clock, so windowed behaviour is deterministic under test.

use nvm_sim::Histogram;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A mergeable latency histogram over seconds.
///
/// # Example
///
/// ```
/// use bandana_serve::LatencyHistogram;
///
/// let mut shard_a = LatencyHistogram::new();
/// let mut shard_b = LatencyHistogram::new();
/// for i in 1..=500 {
///     shard_a.record_secs(i as f64 * 1e-6);
///     shard_b.record_secs((500 + i) as f64 * 1e-6);
/// }
/// let mut total = shard_a.clone();
/// total.merge(&shard_b);
/// assert_eq!(total.count(), 1000);
/// let p50 = total.quantile(0.5);
/// assert!((p50 - 500e-6).abs() / 500e-6 < 0.06, "p50 {p50}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    inner: Histogram,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { inner: Histogram::new() }
    }

    /// Records one latency in seconds. Negative or NaN samples (which can
    /// only arise from clock anomalies) are recorded as zero.
    pub fn record_secs(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 { seconds } else { 0.0 };
        self.inner.record(s);
    }

    /// Records one latency.
    pub fn record(&mut self, latency: Duration) {
        self.record_secs(latency.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact mean latency in seconds (`0.0` when empty).
    pub fn mean_secs(&self) -> f64 {
        self.inner.mean()
    }

    /// Largest recorded latency in seconds (`0.0` when empty).
    pub fn max_secs(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.inner.max()
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds, within the bucket
    /// resolution (~3% relative error). Returns `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        self.inner.percentile(q * 100.0)
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile latency in seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile latency in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile latency in seconds.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Adds another histogram's samples to this one.
    ///
    /// Merging is exact (bucket counts add), hence commutative and
    /// associative: aggregating per-shard histograms in any order yields
    /// identical quantiles.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.inner.merge(&other.inner);
    }

    /// A fixed snapshot of the headline statistics.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_s: self.mean_secs(),
            p50_s: self.p50(),
            p95_s: self.p95(),
            p99_s: self.p99(),
            p999_s: self.p999(),
            max_s: self.max_secs(),
        }
    }
}

/// Headline latency statistics extracted from a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean in seconds.
    pub mean_s: f64,
    /// Median in seconds.
    pub p50_s: f64,
    /// 95th percentile in seconds.
    pub p95_s: f64,
    /// 99th percentile in seconds.
    pub p99_s: f64,
    /// 99.9th percentile in seconds.
    pub p999_s: f64,
    /// Maximum in seconds.
    pub max_s: f64,
}

/// A decaying latency histogram over the most recent window of traffic.
///
/// The window is a ring of `slots` [`LatencyHistogram`]s: samples are
/// recorded into the newest slot, and [`rotate`](WindowedHistogram::rotate)
/// retires the oldest slot while opening a fresh one. With the engine's
/// metrics bus rotating once per slot span, [`recent`](WindowedHistogram::recent)
/// always covers between `slots - 1` and `slots` spans of traffic — old
/// samples decay out completely after `slots` rotations. Rotation is the
/// caller's job (no internal clock), which keeps windowed quantiles exact
/// and testable.
///
/// Two windowed histograms rotated in lockstep (e.g. per-shard windows
/// advanced by the same bus tick) [`merge`](WindowedHistogram::merge)
/// slot-by-slot, aligned on recency, so the merged window decays exactly
/// like its parts.
///
/// # Example
///
/// ```
/// use bandana_serve::WindowedHistogram;
///
/// let mut w = WindowedHistogram::new(4);
/// w.record_secs(1.0);
/// for _ in 0..3 {
///     w.rotate();
///     w.record_secs(1e-3);
/// }
/// // The 1 s outlier is still inside the 4-slot window...
/// assert!(w.recent().max_secs() > 0.5);
/// w.rotate();
/// // ...and fully decayed after the fourth rotation.
/// assert!(w.recent().max_secs() < 0.5);
/// assert_eq!(w.recent().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedHistogram {
    /// Ring of slots; `head` is the slot currently recording.
    slots: Vec<LatencyHistogram>,
    head: usize,
    rotations: u64,
}

impl WindowedHistogram {
    /// Creates a window of `slots` ring slots (all initially empty).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a windowed histogram needs at least one slot");
        WindowedHistogram { slots: vec![LatencyHistogram::new(); slots], head: 0, rotations: 0 }
    }

    /// Number of ring slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// How many times the window has rotated since creation.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Records one latency in seconds into the newest slot (clamped like
    /// [`LatencyHistogram::record_secs`]).
    pub fn record_secs(&mut self, seconds: f64) {
        self.slots[self.head].record_secs(seconds);
    }

    /// Records one latency into the newest slot.
    pub fn record(&mut self, latency: Duration) {
        self.slots[self.head].record(latency);
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.slots.iter().map(LatencyHistogram::count).sum()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Retires the oldest slot and opens a fresh one: every sample decays
    /// out after `num_slots` rotations.
    pub fn rotate(&mut self) {
        self.head = (self.head + 1) % self.slots.len();
        self.slots[self.head] = LatencyHistogram::new();
        self.rotations += 1;
    }

    /// The window's combined distribution (exact merge of every live
    /// slot), for quantile queries over recent traffic.
    pub fn recent(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for slot in &self.slots {
            merged.merge(slot);
        }
        merged
    }

    /// Headline statistics of the recent window.
    pub fn summary(&self) -> LatencySummary {
        self.recent().summary()
    }

    /// Merges another window's samples into this one, slot-by-slot
    /// aligned on recency (newest slot with newest slot), so the merged
    /// window keeps decaying in lockstep with its parts. Intended for
    /// windows rotated by the same driver.
    ///
    /// # Panics
    ///
    /// Panics if the slot counts differ — windows of different spans have
    /// no meaningful slot alignment.
    pub fn merge(&mut self, other: &WindowedHistogram) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "windowed histograms must have matching slot counts to merge"
        );
        let n = self.slots.len();
        for age in 0..n {
            // `age` 0 is the newest slot in each ring.
            let mine = (self.head + n - age) % n;
            let theirs = (other.head + n - age) % n;
            self.slots[mine].merge(&other.slots[theirs]);
        }
    }
}

/// Where a request's time went: host queue wait vs simulated device time
/// vs total shard service.
///
/// `queue_wait` is submission → start of the request's micro-batch;
/// `device` is the simulated NVM time its batch was charged through the
/// [`QueueModel`](nvm_sim::QueueModel) (zero unless the engine runs with a
/// device queue); `service` is the whole batch-processing span, which
/// includes the device component. All three are per-request distributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Submission → start-of-batch wait (host-side queueing).
    pub queue_wait: LatencySummary,
    /// Simulated device time charged to the request's batch.
    pub device: LatencySummary,
    /// Dequeue → parts-done span (contains the device component).
    pub service: LatencySummary,
}

impl LatencyBreakdown {
    /// Mean time a served request spent queueing plus being served.
    pub fn total_mean_s(&self) -> f64 {
        self.queue_wait.mean_s + self.service.mean_s
    }

    /// Fraction of the mean served-request time spent in host queueing
    /// (`0.0` when nothing was recorded).
    pub fn queue_wait_fraction(&self) -> f64 {
        let total = self.total_mean_s();
        if total > 0.0 {
            self.queue_wait.mean_s / total
        } else {
            0.0
        }
    }

    /// Fraction of the mean served-request time that was simulated device
    /// time (`0.0` when nothing was recorded).
    pub fn device_fraction(&self) -> f64 {
        let total = self.total_mean_s();
        if total > 0.0 {
            self.device.mean_s / total
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queue-wait {} ({:.0}%) + service {} (device {} = {:.0}%)",
            fmt_secs(self.queue_wait.mean_s),
            self.queue_wait_fraction() * 100.0,
            fmt_secs(self.service.mean_s),
            fmt_secs(self.device.mean_s),
            self.device_fraction() * 100.0,
        )
    }
}

/// Formats a latency in seconds with a human unit (ns/µs/ms/s).
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.0}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} p999={} max={}",
            self.count,
            fmt_secs(self.mean_s),
            fmt_secs(self.p50_s),
            fmt_secs(self.p95_s),
            fmt_secs(self.p99_s),
            fmt_secs(self.p999_s),
            fmt_secs(self.max_s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000 {
            h.record_secs(i as f64 * 1e-6);
        }
        let (p50, p95, p99, p999) = (h.p50(), h.p95(), h.p99(), h.p999());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999, "{p50} {p95} {p99} {p999}");
        assert!((p50 - 5e-3).abs() / 5e-3 < 0.06, "p50 {p50}");
        assert!((p999 - 9.99e-3).abs() / 9.99e-3 < 0.06, "p999 {p999}");
    }

    #[test]
    fn merge_matches_single_recorder() {
        let mut parts = vec![LatencyHistogram::new(); 4];
        let mut whole = LatencyHistogram::new();
        for i in 0..4000u64 {
            let s = (i % 977 + 1) as f64 * 1e-6;
            parts[(i % 4) as usize].record_secs(s);
            whole.record_secs(s);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        // Bucket counts add exactly, so every quantile matches; only the
        // mean can differ by float-summation order.
        assert_eq!(merged.count(), whole.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "quantile {q}");
        }
        assert!((merged.mean_secs() - whole.mean_secs()).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.max_secs(), 0.0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn hostile_samples_are_clamped() {
        let mut h = LatencyHistogram::new();
        h.record_secs(-1.0);
        h.record_secs(f64::NAN);
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 3);
        assert!(h.max_secs() > 0.0);
    }

    #[test]
    fn breakdown_fractions_are_sane() {
        let mut queue = LatencyHistogram::new();
        let mut device = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        for _ in 0..10 {
            queue.record_secs(10e-6);
            device.record_secs(20e-6);
            service.record_secs(30e-6);
        }
        let b = LatencyBreakdown {
            queue_wait: queue.summary(),
            device: device.summary(),
            service: service.summary(),
        };
        assert!((b.total_mean_s() - 40e-6).abs() < 1e-12);
        assert!((b.queue_wait_fraction() - 0.25).abs() < 1e-9);
        assert!((b.device_fraction() - 0.5).abs() < 1e-9);
        assert!(b.to_string().contains("queue-wait"));
        // Empty breakdown divides by zero nowhere.
        let empty = LatencyBreakdown::default();
        assert_eq!(empty.queue_wait_fraction(), 0.0);
        assert_eq!(empty.device_fraction(), 0.0);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_secs(5e-9), "5ns");
        assert_eq!(fmt_secs(1.5e-6), "1.5µs");
        assert_eq!(fmt_secs(2.5e-3), "2.50ms");
        assert_eq!(fmt_secs(1.25), "1.250s");
    }

    #[test]
    fn window_decays_samples_after_num_slots_rotations() {
        let mut w = WindowedHistogram::new(3);
        w.record_secs(5.0); // an outlier in the oldest generation
        assert_eq!(w.count(), 1);
        for round in 0..2 {
            w.rotate();
            w.record_secs(1e-4);
            assert!(w.recent().max_secs() > 1.0, "outlier alive after rotation {round}");
        }
        w.rotate();
        // Third rotation of a 3-slot ring: the outlier's slot was retired.
        assert!(w.recent().max_secs() < 1.0);
        assert_eq!(w.count(), 2);
        assert_eq!(w.rotations(), 3);
        // A full ring of empty rotations drains the window completely.
        for _ in 0..3 {
            w.rotate();
        }
        assert!(w.is_empty());
        assert_eq!(w.summary().count, 0);
    }

    #[test]
    fn window_merge_aligns_slots_on_recency() {
        // Two windows rotated in lockstep but with different head indices:
        // `b` is created later and rotated the same number of times after
        // its first fill, so its ring head sits elsewhere.
        let mut a = WindowedHistogram::new(3);
        let mut b = WindowedHistogram::new(3);
        b.rotate(); // offset b's head
        a.record_secs(1.0); // oldest generation in both
        b.record_secs(2.0);
        a.rotate();
        b.rotate();
        a.record_secs(1e-3);
        b.record_secs(2e-3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert!(merged.recent().max_secs() > 1.5);
        // Two rotations retire both old outliers at once: the merge
        // aligned them into the same age slot even though the source
        // rings stored them at different indices.
        merged.rotate();
        merged.rotate();
        let recent = merged.recent();
        assert_eq!(recent.count(), 2, "only the newer generation survives");
        assert!(recent.max_secs() < 0.01, "both outliers decayed together");
    }

    #[test]
    #[should_panic(expected = "matching slot counts")]
    fn window_merge_rejects_mismatched_spans() {
        let mut a = WindowedHistogram::new(2);
        let b = WindowedHistogram::new(3);
        a.merge(&b);
    }

    #[test]
    fn windowed_quantiles_match_cumulative_on_identical_samples() {
        // With no rotation past the live span, the window is lossless: the
        // recent() distribution equals a cumulative histogram of the same
        // samples, bucket for bucket.
        let mut w = WindowedHistogram::new(4);
        let mut c = LatencyHistogram::new();
        for i in 0..4000u64 {
            let s = ((i * 37) % 997 + 1) as f64 * 1e-6;
            w.record_secs(s);
            c.record_secs(s);
            if i > 0 && i % 1000 == 0 {
                w.rotate(); // 3 rotations < 4 slots: nothing decays
            }
        }
        let r = w.recent();
        assert_eq!(r.count(), c.count());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(r.quantile(q), c.quantile(q), "quantile {q}");
        }
    }
}
