//! The online hot-block re-layout controller: closes the paper's SHP
//! placement loop (§4.1) against live traffic.
//!
//! The offline pipeline partitions each table once, from a training
//! trace, and the engine then serves that layout forever — even after
//! the hot set drifts and requests that used to touch one block start
//! straddling several. This controller re-solves placement *online*:
//! shard workers tee a sampled co-access record (the deduplicated
//! block/vector set of each drained request part) onto the metrics bus,
//! the controller accumulates a windowed co-access hypergraph per table,
//! and when the observed blocks-per-request degrades past a threshold
//! of the window's ideal it runs an incremental
//! [`shp::refine`](bandana_partition::refine) restricted to the hottest
//! K blocks. A refinement that actually moves vectors becomes an
//! [`Action::ApplyLayout`], applied atomically on the owning shard's
//! worker thread between micro-batches; every applied re-layout lands
//! in the audit log together with the blocks-per-request figures that
//! justified it.

use crate::control::{Action, Controller, EngineSnapshot};
use bandana_partition::{refine, BlockLayout, RefineConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// Per-tick cap on drained samples, mirroring the tuner's and the
/// budget controller's: the bus is shared, so one tick must never wedge
/// it replaying an unbounded backlog.
const MAX_SAMPLES_PER_TICK: usize = 4096;

/// One co-access sample teed off a shard worker: the table, one vector
/// id of the sampled request part, and the group token that stitches
/// the part back together on the bus. The low 8 bits of the group are
/// the shard index; the rest is a per-shard sequence number, so group
/// boundaries survive drain boundaries (samples from one shard arrive
/// in order, and a new group id from the same shard closes the last).
pub(crate) type CoAccessSample = (usize, u32, u64);

/// Tuning of the re-layout controller, set via
/// [`ServeConfig::with_relayout`](crate::ServeConfig::with_relayout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReLayoutSettings {
    /// Sampled request parts (co-access groups) that must accumulate
    /// per table before the controller evaluates that table's window.
    pub window_requests: u64,
    /// Workers tee one request part in `sample_every` onto the bus.
    /// The stride counts *parts*, and parts arrive with the request
    /// stream's period (one per table a request touches) — pick a
    /// stride co-prime with parts-per-request, or the tap aliases and
    /// some tables are never sampled at all.
    pub sample_every: u32,
    /// A window triggers a solve only when observed blocks-per-request
    /// exceeds `degrade_ratio` times the window's ideal (the fewest
    /// blocks the same requests could touch if perfectly packed).
    pub degrade_ratio: f64,
    /// Working-set bound: the refinement is restricted to at most this
    /// many of the window's hottest blocks, keeping the solve to
    /// milliseconds regardless of table size.
    pub hot_blocks: usize,
    /// Refinement iterations handed to [`refine`].
    pub iterations: u32,
    /// Windows to sit out after an applied re-layout, so the controller
    /// observes post-move traffic before judging the new layout.
    pub cooldown_windows: u32,
    /// Cap on retained co-access edges per table per window; groups
    /// past the cap still count toward the degradation measurement but
    /// carry no placement signal.
    pub max_window_edges: usize,
    /// Seed for the refinement's initial splits.
    pub seed: u64,
}

impl Default for ReLayoutSettings {
    fn default() -> Self {
        ReLayoutSettings {
            window_requests: 512,
            sample_every: 1,
            degrade_ratio: 1.25,
            hot_blocks: 32,
            iterations: 8,
            cooldown_windows: 2,
            max_window_edges: 8192,
            seed: 0x00ba_11a5,
        }
    }
}

impl ReLayoutSettings {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_requests == 0 {
            return Err("re-layout window must cover at least one request".into());
        }
        if self.sample_every == 0 {
            return Err("sample_every must be at least 1".into());
        }
        if !self.degrade_ratio.is_finite() || self.degrade_ratio < 1.0 {
            return Err(format!("degrade ratio {} must be finite and >= 1", self.degrade_ratio));
        }
        if self.hot_blocks < 2 {
            return Err("refinement needs a working set of at least 2 blocks".into());
        }
        if self.iterations == 0 {
            return Err("refinement needs at least one iteration".into());
        }
        if self.max_window_edges == 0 {
            return Err("a window must retain at least one edge".into());
        }
        Ok(())
    }
}

/// Everything the control thread needs to build the re-layout
/// controller: the tables with their active layouts, the settings, and
/// the shard sample channel.
pub(crate) struct ReLayoutInputs {
    /// `(table id, active layout)`, table order. Layouts are the
    /// engine's build-time (or snapshot-recovered) placements; the
    /// controller evolves its copies as re-layouts are applied.
    pub tables: Vec<(usize, BlockLayout)>,
    pub settings: ReLayoutSettings,
    pub samples: mpsc::Receiver<CoAccessSample>,
}

/// Per-table window state: the co-access hypergraph accumulated so far
/// and the degradation measurement it will be judged by.
struct TableState {
    table: usize,
    /// The controller's view of the table's active layout; advanced
    /// optimistically when an [`Action::ApplyLayout`] is emitted.
    layout: BlockLayout,
    /// Retained co-access edges (vector-id sets), capped at
    /// [`ReLayoutSettings::max_window_edges`].
    edges: Vec<Vec<u32>>,
    /// Sampled distinct-block touches this window, per block.
    touches: Vec<u64>,
    /// Distinct blocks actually touched, summed over the window's groups.
    observed_blocks: u64,
    /// Fewest blocks the same groups could touch if perfectly packed.
    ideal_blocks: u64,
    /// Co-access groups folded into the current window.
    groups: u64,
    /// Windows left to sit out after an applied re-layout.
    cooldown: u32,
}

/// The controller: reassembles teed co-access groups per table, scores
/// each window's observed blocks-per-request against its ideal, and
/// when the layout has demonstrably rotted runs a bounded incremental
/// SHP refinement over the hottest blocks.
///
/// Runs on the metrics bus next to the tuner, budget, and SLO
/// controllers; the shared counter references point into the engine's
/// [`Counters`](crate::engine) so solves and the freshest
/// blocks-per-request figures surface in
/// [`EngineMetrics`](crate::EngineMetrics) and the Prometheus gauges.
pub(crate) struct ReLayoutController<'a> {
    settings: ReLayoutSettings,
    samples: mpsc::Receiver<CoAccessSample>,
    states: Vec<TableState>,
    /// Open (not yet finalized) group per shard: `(group, table, ids)`.
    /// A new group id from the same shard finalizes the previous one.
    open: HashMap<u64, (u64, usize, Vec<u32>)>,
    /// [`EngineMetrics::relayout_solves`](crate::EngineMetrics) counter.
    solves: &'a AtomicU64,
    /// Freshest completed window's observed blocks-per-request, stored
    /// as [`f64::to_bits`].
    observed_bits: &'a AtomicU64,
    /// Freshest completed window's ideal blocks-per-request, as bits.
    ideal_bits: &'a AtomicU64,
}

impl<'a> ReLayoutController<'a> {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics on invalid settings or an empty table set (the engine
    /// validates both before spawning the bus).
    pub(crate) fn new(
        inputs: ReLayoutInputs,
        solves: &'a AtomicU64,
        observed_bits: &'a AtomicU64,
        ideal_bits: &'a AtomicU64,
    ) -> Self {
        inputs.settings.validate().expect("invalid re-layout settings");
        assert!(!inputs.tables.is_empty(), "re-layout controller needs at least one table");
        let states = inputs
            .tables
            .into_iter()
            .map(|(table, layout)| {
                let blocks = layout.num_blocks() as usize;
                TableState {
                    table,
                    layout,
                    edges: Vec::new(),
                    touches: vec![0; blocks],
                    observed_blocks: 0,
                    ideal_blocks: 0,
                    groups: 0,
                    cooldown: 0,
                }
            })
            .collect();
        ReLayoutController {
            settings: inputs.settings,
            samples: inputs.samples,
            states,
            open: HashMap::new(),
            solves,
            observed_bits,
            ideal_bits,
        }
    }

    /// Folds one finalized co-access group into its table's window and,
    /// if that completes the window, evaluates it.
    fn finalize_group(&mut self, table: usize, ids: Vec<u32>) -> Option<Action> {
        let i = self.states.iter().position(|s| s.table == table)?;
        let state = &mut self.states[i];
        let n = state.layout.num_vectors();
        // The tee fires only after a successful lookup, so out-of-range
        // ids should not occur; skip them defensively rather than panic
        // inside `block_of`.
        let mut kept: Vec<u32> = ids.into_iter().filter(|&v| v < n).collect();
        if kept.is_empty() {
            return None;
        }
        let mut blocks: Vec<u32> = kept.iter().map(|&v| state.layout.block_of(v)).collect();
        blocks.sort_unstable();
        blocks.dedup();
        for &b in &blocks {
            state.touches[b as usize] += 1;
        }
        state.observed_blocks += blocks.len() as u64;
        state.ideal_blocks += kept.len().div_ceil(state.layout.vectors_per_block()) as u64;
        state.groups += 1;
        if kept.len() >= 2 && state.edges.len() < self.settings.max_window_edges {
            kept.sort_unstable();
            kept.dedup();
            state.edges.push(kept);
        }
        if state.groups >= self.settings.window_requests {
            return self.complete_window(i);
        }
        None
    }

    /// Scores table state `i`'s completed window, refining its layout
    /// if the degradation bar is cleared, then resets the window.
    fn complete_window(&mut self, i: usize) -> Option<Action> {
        let state = &mut self.states[i];
        let groups = state.groups as f64;
        let observed = state.observed_blocks as f64 / groups;
        let ideal = state.ideal_blocks as f64 / groups;
        self.observed_bits.store(observed.to_bits(), Ordering::Relaxed);
        self.ideal_bits.store(ideal.to_bits(), Ordering::Relaxed);

        let mut action = None;
        if state.cooldown > 0 {
            state.cooldown -= 1;
        } else if observed > self.settings.degrade_ratio * ideal && !state.edges.is_empty() {
            self.solves.fetch_add(1, Ordering::Relaxed);
            // The hottest K blocks by sampled touches form the working set.
            let mut hot: Vec<u32> = (0..state.touches.len() as u32)
                .filter(|&b| state.touches[b as usize] > 0)
                .collect();
            hot.sort_unstable_by_key(|&b| (std::cmp::Reverse(state.touches[b as usize]), b));
            hot.truncate(self.settings.hot_blocks);
            let config =
                RefineConfig { iterations: self.settings.iterations, seed: self.settings.seed };
            let refinement =
                refine(&state.layout, &hot, state.edges.iter().map(Vec::as_slice), &config);
            if refinement.moved > 0 {
                // Advance the controller's view optimistically: the shard
                // applies the same order between micro-batches, and the
                // cooldown absorbs the gap.
                state.layout = BlockLayout::from_order(
                    refinement.order.clone(),
                    state.layout.vectors_per_block(),
                );
                state.cooldown = self.settings.cooldown_windows;
                action = Some(Action::ApplyLayout {
                    table: state.table,
                    order: refinement.order,
                    observed_blocks_per_request: observed,
                    ideal_blocks_per_request: ideal,
                });
            }
        }

        state.edges.clear();
        state.touches.fill(0);
        state.observed_blocks = 0;
        state.ideal_blocks = 0;
        state.groups = 0;
        action
    }
}

impl Controller for ReLayoutController<'_> {
    fn name(&self) -> &str {
        "re-layout"
    }

    fn observe(&mut self, _snapshot: &EngineSnapshot) -> Vec<Action> {
        let mut actions = Vec::new();
        // Bounded drain, like the tuner's: a disconnected channel (all
        // workers exited) just yields quiet drains.
        let mut drained = 0usize;
        while drained < MAX_SAMPLES_PER_TICK {
            let Ok((table, id, group)) = self.samples.try_recv() else { break };
            drained += 1;
            let shard = group & 0xff;
            let prev = match self.open.get_mut(&shard) {
                Some(slot) if slot.0 == group => {
                    slot.2.push(id);
                    None
                }
                Some(slot) => Some(std::mem::replace(slot, (group, table, vec![id]))),
                None => {
                    self.open.insert(shard, (group, table, vec![id]));
                    None
                }
            };
            if let Some((_, prev_table, ids)) = prev {
                actions.extend(self.finalize_group(prev_table, ids));
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::time::Duration;

    fn snapshot() -> EngineSnapshot {
        EngineSnapshot {
            tick: 0,
            uptime: Duration::from_millis(1),
            window_span: Duration::from_millis(400),
            batch_window: Duration::ZERO,
            shards: Vec::new(),
            tenants: Vec::new(),
            cache_partition: Vec::new(),
        }
    }

    fn harness(
        tables: Vec<(usize, BlockLayout)>,
        settings: ReLayoutSettings,
    ) -> (mpsc::SyncSender<CoAccessSample>, &'static AtomicU64, ReLayoutController<'static>) {
        let (tx, rx) = sync_channel(1 << 16);
        let solves: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let observed: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let ideal: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let inputs = ReLayoutInputs { tables, settings, samples: rx };
        let ctl = ReLayoutController::new(inputs, solves, observed, ideal);
        (tx, solves, ctl)
    }

    /// Sends one co-access group (request part) for `table` from shard
    /// `shard` with sequence number `seq`.
    fn send_group(
        tx: &mpsc::SyncSender<CoAccessSample>,
        table: usize,
        shard: u64,
        seq: u64,
        ids: &[u32],
    ) {
        let group = (seq << 8) | shard;
        for &id in ids {
            tx.send((table, id, group)).unwrap();
        }
    }

    /// A hot set whose groups straddle four blocks each under the
    /// identity layout: group `g` touches ids `{g, 8+g, 16+g, 24+g}`,
    /// one per block for blocks 0..4 (8 vectors per block).
    fn straddling_group(g: u32) -> [u32; 4] {
        [g, 8 + g, 16 + g, 24 + g]
    }

    fn settings() -> ReLayoutSettings {
        ReLayoutSettings {
            window_requests: 32,
            hot_blocks: 8,
            cooldown_windows: 2,
            ..ReLayoutSettings::default()
        }
    }

    /// Sends `n` finalized straddling groups (plus the extra open one
    /// that closes the last) starting at sequence `seq0`.
    fn send_straddling_window(tx: &mpsc::SyncSender<CoAccessSample>, seq0: u64, n: u64) {
        for k in 0..=n {
            send_group(tx, 0, 0, seq0 + k, &straddling_group((k % 8) as u32));
        }
    }

    #[test]
    fn drifted_hot_set_triggers_a_refining_apply_layout() {
        let layout = BlockLayout::identity(64, 8);
        let (tx, solves, mut ctl) = harness(vec![(0, layout.clone())], settings());
        send_straddling_window(&tx, 0, 32);
        let actions = ctl.observe(&snapshot());
        assert_eq!(solves.load(Ordering::Relaxed), 1, "degraded window must solve");
        let Some(Action::ApplyLayout {
            table,
            order,
            observed_blocks_per_request,
            ideal_blocks_per_request,
        }) = actions.first()
        else {
            panic!("expected an ApplyLayout, got {actions:?}");
        };
        assert_eq!(*table, 0);
        assert!((observed_blocks_per_request - 4.0).abs() < 1e-9, "each group straddles 4 blocks");
        assert!((ideal_blocks_per_request - 1.0).abs() < 1e-9, "each group fits one block");
        // The refined order regroups the hot set: the same groups touch
        // strictly fewer blocks than before.
        let new = BlockLayout::from_order(order.clone(), 8);
        let cost = |l: &BlockLayout| -> usize {
            (0..8u32)
                .map(|g| {
                    let mut b: Vec<u32> =
                        straddling_group(g).iter().map(|&v| l.block_of(v)).collect();
                    b.sort_unstable();
                    b.dedup();
                    b.len()
                })
                .sum()
        };
        assert!(cost(&new) < cost(&layout), "refined layout must regroup the hot set");
    }

    #[test]
    fn solves_are_deterministic() {
        let run = || {
            let (tx, _, mut ctl) = harness(vec![(0, BlockLayout::identity(64, 8))], settings());
            send_straddling_window(&tx, 0, 32);
            ctl.observe(&snapshot())
        };
        assert_eq!(run(), run(), "same stream must yield the same actions");
    }

    #[test]
    fn block_aligned_traffic_never_solves_but_publishes_gauges() {
        let (tx, solves, mut ctl) = harness(vec![(0, BlockLayout::identity(64, 8))], settings());
        // Every group sits inside one block: observed == ideal == 1.
        for k in 0..=32u64 {
            let base = ((k % 8) * 8) as u32;
            send_group(&tx, 0, 0, k, &[base, base + 1, base + 2]);
        }
        let actions = ctl.observe(&snapshot());
        assert!(actions.is_empty(), "aligned traffic must not re-layout: {actions:?}");
        assert_eq!(solves.load(Ordering::Relaxed), 0);
        let observed = f64::from_bits(ctl.observed_bits.load(Ordering::Relaxed));
        let ideal = f64::from_bits(ctl.ideal_bits.load(Ordering::Relaxed));
        assert!((observed - 1.0).abs() < 1e-9, "observed gauge: {observed}");
        assert!((ideal - 1.0).abs() < 1e-9, "ideal gauge: {ideal}");
    }

    #[test]
    fn cooldown_sits_out_windows_after_an_apply() {
        let (tx, solves, mut ctl) = harness(vec![(0, BlockLayout::identity(64, 8))], settings());
        send_straddling_window(&tx, 0, 32);
        assert_eq!(ctl.observe(&snapshot()).len(), 1, "first window applies");
        // Two more degraded windows (scored against the *new* layout,
        // but any outcome is suppressed while cooling down).
        send_straddling_window(&tx, 100, 32);
        assert!(ctl.observe(&snapshot()).is_empty(), "cooldown window 1 must sit out");
        send_straddling_window(&tx, 200, 32);
        assert!(ctl.observe(&snapshot()).is_empty(), "cooldown window 2 must sit out");
        assert_eq!(solves.load(Ordering::Relaxed), 1, "no solves while cooling down");
    }

    #[test]
    fn groups_interleave_across_shards_and_finalize_on_next_group() {
        // A huge degrade ratio keeps the completed window from solving,
        // isolating the reassembly bookkeeping under test.
        let (tx, _, mut ctl) = harness(
            vec![(0, BlockLayout::identity(64, 8))],
            ReLayoutSettings { window_requests: 2, degrade_ratio: 100.0, ..settings() },
        );
        // Shards 0 and 1 interleave samples of different groups; each
        // shard's next group closes its previous one.
        let g0 = 1u64 << 8;
        let g1 = (1u64 << 8) | 1;
        tx.send((0, 0, g0)).unwrap();
        tx.send((0, 8, g1)).unwrap();
        tx.send((0, 16, g0)).unwrap();
        tx.send((0, 24, g1)).unwrap();
        send_group(&tx, 0, 0, 2, &[1]); // closes g0
        send_group(&tx, 0, 1, 2, &[2]); // closes g1
        assert!(ctl.observe(&snapshot()).is_empty());
        // Both interleaved groups were reassembled intact: 2 groups of
        // 2 distinct blocks each.
        let observed = f64::from_bits(ctl.observed_bits.load(Ordering::Relaxed));
        assert!((observed - 2.0).abs() < 1e-9, "observed gauge: {observed}");
    }

    #[test]
    fn drain_is_bounded_per_tick() {
        let (tx, solves, mut ctl) = harness(
            vec![(0, BlockLayout::identity(64, 8))],
            ReLayoutSettings { window_requests: 5000, ..settings() },
        );
        for k in 0..6000u64 {
            send_group(&tx, 0, 0, k, &[(k % 64) as u32]);
        }
        assert!(ctl.observe(&snapshot()).is_empty());
        assert_eq!(solves.load(Ordering::Relaxed), 0);
        // 4096 samples drained; singleton groups mean 4095 finalized.
        assert_eq!(ctl.states[0].groups, 4095, "one tick drains at most the cap");
        let _ = ctl.observe(&snapshot());
        assert!(ctl.states[0].groups < 4095, "the window completed on the next tick");
    }

    #[test]
    fn unknown_tables_and_disconnected_channels_are_quiet() {
        let (tx, _, mut ctl) = harness(vec![(0, BlockLayout::identity(64, 8))], settings());
        send_group(&tx, 9, 0, 0, &[1, 2]); // unknown table
        send_group(&tx, 9, 0, 1, &[3]); // closes it
        drop(tx);
        assert!(ctl.observe(&snapshot()).is_empty());
        assert_eq!(ctl.states[0].groups, 0, "unknown tables never count toward a window");
        assert!(ctl.observe(&snapshot()).is_empty(), "disconnected channel drains quietly");
    }

    #[test]
    fn settings_validation_rejects_degenerate_values() {
        assert!(ReLayoutSettings::default().validate().is_ok());
        let bad = |f: fn(&mut ReLayoutSettings)| {
            let mut s = ReLayoutSettings::default();
            f(&mut s);
            s.validate()
        };
        assert!(bad(|s| s.window_requests = 0).is_err());
        assert!(bad(|s| s.sample_every = 0).is_err());
        assert!(bad(|s| s.degrade_ratio = 0.5).is_err());
        assert!(bad(|s| s.degrade_ratio = f64::NAN).is_err());
        assert!(bad(|s| s.hot_blocks = 1).is_err());
        assert!(bad(|s| s.iterations = 0).is_err());
        assert!(bad(|s| s.max_window_edges = 0).is_err());
    }
}
