//! The serving front-end: a pipelined TCP listener over `std::net`.
//!
//! Thread model (no async runtime, matching the rest of the engine):
//!
//! - one **accept** thread hands each connection to a reactor group
//!   round-robin;
//! - one blocking **reader** thread per connection parses frames and
//!   submits lookups through the tenant [`Client`]. When the
//!   connection's in-flight cap is reached the reader *stops reading*,
//!   so backpressure reaches the peer as TCP flow control instead of an
//!   unbounded buffer;
//! - one **writer** thread per reactor group owns every pending
//!   [`ResponseTicket`] for its connections, polls them with
//!   [`ResponseTicket::try_take`], and writes completions in
//!   **completion order** — out-of-order on the wire, matched back to
//!   requests by correlation id.
//!
//! All protocol violations answer with an [`opcode::ERROR`] frame
//! (correlation id 0) and close only the offending connection; other
//! connections and the engine itself are unaffected.

use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::engine::{ServeError, ShardedEngine};
use crate::net::frame::{
    self, decode_lookup_payload, error, lookup_flags, opcode, Frame, FrameError, PROTOCOL_VERSION,
};
use crate::tenant::{Client, ResponseStatus, ResponseTicket, TenantId};

/// How long the writer parks on its oldest pending ticket before
/// re-scanning every connection. Short enough to keep wire completion
/// latency well under the protocol overhead budget, long enough to
/// yield the (single) CPU to the workers actually serving the batch.
const WRITER_PARK: Duration = Duration::from_micros(500);

/// How long the writer parks when it owns no pending tickets at all.
const WRITER_IDLE_PARK: Duration = Duration::from_millis(5);

/// How long a backpressured reader waits per condvar cycle before
/// re-checking for shutdown.
const READER_PARK: Duration = Duration::from_millis(10);

/// Configuration for [`NetServer::start`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; use port 0 to let the OS pick (read it back with
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Number of reactor groups (writer threads). Connections are
    /// assigned round-robin.
    pub reactor_groups: usize,
    /// Server-side ceiling on any connection's in-flight cap; a HELLO
    /// requesting more (or 0) is granted this value.
    pub max_in_flight: u32,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig { addr: "127.0.0.1:0".into(), reactor_groups: 1, max_in_flight: 256 }
    }
}

/// A running TCP serving front-end. Shuts down (and joins every
/// thread) on [`NetServer::shutdown`] or drop.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    writers: Vec<thread::JoinHandle<()>>,
    groups: Vec<Arc<Group>>,
    readers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds the listener and spawns the accept and writer threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(engine: Arc<ShardedEngine>, config: NetServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let groups: Vec<Arc<Group>> =
            (0..config.reactor_groups.max(1)).map(|_| Arc::new(Group::default())).collect();
        let readers = Arc::new(Mutex::new(Vec::new()));

        let writers = groups
            .iter()
            .map(|g| {
                let group = Arc::clone(g);
                let stop = Arc::clone(&shutdown);
                thread::spawn(move || writer_loop(&group, &stop))
            })
            .collect();

        let accept = {
            let groups = groups.clone();
            let stop = Arc::clone(&shutdown);
            let readers = Arc::clone(&readers);
            let max_in_flight = config.max_in_flight.max(1);
            thread::spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Latency beats throughput on this wire: every
                    // frame should leave as soon as it is written.
                    let _ = stream.set_nodelay(true);
                    let group = Arc::clone(&groups[next % groups.len()]);
                    next += 1;
                    let Ok(conn) = Conn::adopt(stream, max_in_flight) else { continue };
                    let conn = Arc::new(conn);
                    group.add(Arc::clone(&conn));
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop);
                    let handle = thread::spawn(move || reader_loop(&conn, &group, &engine, &stop));
                    readers.lock().expect("reader registry").push(handle);
                }
            })
        };

        Ok(NetServer { local_addr, shutdown, accept: Some(accept), writers, groups, readers })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every connection after its pending
    /// responses flush, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock every reader parked in a socket read.
        for group in &self.groups {
            for conn in group.conns.lock().expect("group lock").iter() {
                conn.close_read();
            }
            group.wake.notify_all();
        }
        for h in self.readers.lock().expect("reader registry").drain(..) {
            let _ = h.join();
        }
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One reactor group: the connections whose responses a single writer
/// thread manages.
#[derive(Default)]
struct Group {
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Wakes the writer on a new connection or a new handoff entry.
    wake: Condvar,
}

impl Group {
    fn add(&self, conn: Arc<Conn>) {
        self.conns.lock().expect("group lock").push(conn);
        self.wake.notify_all();
    }

    fn notify(&self) {
        self.wake.notify_all();
    }
}

static NEXT_CONN_ID: AtomicUsize = AtomicUsize::new(0);

/// Reader → writer handoff: either a ticket to poll or a frame to
/// write verbatim (HELLO_OK, PONG, error frames).
enum Entry {
    Ticket { cid: u64, ticket: ResponseTicket, discard: bool },
    Immediate(Frame),
}

/// Per-connection state shared by its reader thread and its group's
/// writer thread.
struct Conn {
    id: usize,
    /// Writer-side handle; the reader reads from a `try_clone`.
    stream: TcpStream,
    handoff: Mutex<VecDeque<Entry>>,
    in_flight: Mutex<usize>,
    /// Signals the backpressured reader that in-flight dropped below
    /// the cap (or that the connection is closing).
    can_submit: Condvar,
    /// Granted in-flight cap, fixed at HELLO.
    cap: AtomicUsize,
    /// Set by the reader (GOODBYE, protocol error, EOF): the writer
    /// flushes what is pending, then closes and forgets the connection.
    closing: AtomicBool,
}

impl Conn {
    fn adopt(stream: TcpStream, default_cap: u32) -> std::io::Result<Self> {
        Ok(Conn {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            stream,
            handoff: Mutex::new(VecDeque::new()),
            in_flight: Mutex::new(0),
            can_submit: Condvar::new(),
            cap: AtomicUsize::new(default_cap as usize),
            closing: AtomicBool::new(false),
        })
    }

    fn push(&self, entry: Entry, group: &Group) {
        self.handoff.lock().expect("handoff lock").push_back(entry);
        group.notify();
    }

    fn begin_close(&self, group: &Group) {
        self.closing.store(true, Ordering::Release);
        self.can_submit.notify_all();
        group.notify();
    }

    fn close_read(&self) {
        self.closing.store(true, Ordering::Release);
        self.can_submit.notify_all();
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    /// Called by the writer once a response left the wire.
    fn release_slot(&self) {
        let mut n = self.in_flight.lock().expect("in-flight lock");
        *n = n.saturating_sub(1);
        drop(n);
        self.can_submit.notify_all();
    }

    /// Reader-side: waits for an in-flight slot; `false` means the
    /// connection is closing and the request must not be submitted.
    fn acquire_slot(&self, stop: &AtomicBool) -> bool {
        let cap = self.cap.load(Ordering::Acquire);
        let mut n = self.in_flight.lock().expect("in-flight lock");
        while *n >= cap {
            if self.closing.load(Ordering::Acquire) || stop.load(Ordering::Acquire) {
                return false;
            }
            let (guard, _) = self.can_submit.wait_timeout(n, READER_PARK).expect("in-flight lock");
            n = guard;
        }
        *n += 1;
        true
    }
}

/// Maps a submit-time error to its wire code.
fn submit_error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::Rejected => error::SHED_LANE_FULL,
        ServeError::QuotaExceeded => error::SHED_QUOTA,
        ServeError::SloShed => error::SHED_SLO,
        ServeError::TimedOut => error::TIMED_OUT,
        ServeError::ShuttingDown => error::SHUTTING_DOWN,
        ServeError::UnknownTenant(_) => error::UNKNOWN_TENANT,
        _ => error::BAD_REQUEST,
    }
}

fn error_frame(cid: u64, code: u8) -> Frame {
    Frame::new(opcode::ERROR, cid, vec![code])
}

/// Per-connection protocol state machine, driven by the reader thread.
fn reader_loop(conn: &Arc<Conn>, group: &Arc<Group>, engine: &ShardedEngine, stop: &AtomicBool) {
    let Ok(mut stream) = conn.stream.try_clone() else {
        conn.begin_close(group);
        return;
    };
    let mut client: Option<Client> = None;
    loop {
        if stop.load(Ordering::Acquire) || conn.closing.load(Ordering::Acquire) {
            break;
        }
        let frame = match Frame::read_from(&mut stream) {
            Ok(f) => f,
            Err(FrameError::TooShort { .. } | FrameError::TooLarge { .. }) => {
                conn.push(Entry::Immediate(error_frame(0, error::FRAME_TOO_LARGE)), group);
                break;
            }
            // Clean close, truncation, or transport error: nothing left
            // to read; flush pending responses and close.
            Err(_) => break,
        };
        if frame.version != PROTOCOL_VERSION {
            conn.push(Entry::Immediate(error_frame(0, error::BAD_VERSION)), group);
            break;
        }
        match frame.opcode {
            opcode::HELLO if client.is_none() => {
                let Some((tenant, requested)) = decode_hello(&frame.payload) else {
                    conn.push(Entry::Immediate(error_frame(0, error::BAD_REQUEST)), group);
                    break;
                };
                match engine.client(TenantId(tenant)) {
                    Ok(c) => {
                        let ceiling = conn.cap.load(Ordering::Acquire) as u32;
                        let granted = if requested == 0 { ceiling } else { requested.min(ceiling) };
                        conn.cap.store(granted as usize, Ordering::Release);
                        client = Some(c);
                        let ok = Frame::new(
                            opcode::HELLO_OK,
                            frame.correlation_id,
                            granted.to_le_bytes().to_vec(),
                        );
                        conn.push(Entry::Immediate(ok), group);
                    }
                    Err(_) => {
                        conn.push(
                            Entry::Immediate(error_frame(
                                frame.correlation_id,
                                error::UNKNOWN_TENANT,
                            )),
                            group,
                        );
                        break;
                    }
                }
            }
            opcode::LOOKUP if client.is_some() => {
                let cid = frame.correlation_id;
                let Some(lookup) = decode_lookup_payload(&frame.payload) else {
                    conn.push(Entry::Immediate(error_frame(cid, error::BAD_REQUEST)), group);
                    continue;
                };
                if !conn.acquire_slot(stop) {
                    break;
                }
                let c = client.as_ref().expect("hello'd client");
                let discard = lookup.flags & lookup_flags::NO_PAYLOAD != 0;
                let submitted = if discard {
                    c.submit_discarding(&lookup.request)
                } else {
                    let deadline =
                        (lookup.deadline_us > 0).then(|| Duration::from_micros(lookup.deadline_us));
                    c.submit_with_deadline(&lookup.request, deadline)
                };
                match submitted {
                    Ok(ticket) => conn.push(Entry::Ticket { cid, ticket, discard }, group),
                    Err(e) => {
                        conn.release_slot();
                        let code = submit_error_code(&e);
                        conn.push(Entry::Immediate(error_frame(cid, code)), group);
                        if matches!(e, ServeError::ShuttingDown) {
                            break;
                        }
                    }
                }
            }
            opcode::PING => {
                conn.push(
                    Entry::Immediate(Frame::new(opcode::PONG, frame.correlation_id, Vec::new())),
                    group,
                );
            }
            opcode::GOODBYE => break,
            // Includes HELLO-out-of-order and LOOKUP-before-HELLO:
            // the opcode is not acceptable in this state.
            _ => {
                conn.push(Entry::Immediate(error_frame(0, error::BAD_OPCODE)), group);
                break;
            }
        }
    }
    conn.begin_close(group);
}

fn decode_hello(payload: &[u8]) -> Option<(u32, u32)> {
    if payload.len() != 8 {
        return None;
    }
    let tenant = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
    let requested = u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]);
    Some((tenant, requested))
}

/// A ticket the writer is polling, plus what it owes the wire.
struct PendingTicket {
    cid: u64,
    ticket: ResponseTicket,
    discard: bool,
}

/// Writer-local view of one connection.
struct LocalConn {
    conn: Arc<Conn>,
    pending: Vec<PendingTicket>,
    /// Set on a write failure: stop writing, just drain and drop.
    broken: bool,
}

/// One reactor group's writer: drains handoff queues, polls tickets,
/// writes completions out-of-order, and reaps closed connections.
fn writer_loop(group: &Group, stop: &AtomicBool) {
    let mut local: Vec<LocalConn> = Vec::new();
    loop {
        // Adopt connections the accept thread added since last pass.
        {
            let conns = group.conns.lock().expect("group lock");
            for conn in conns.iter() {
                if !local.iter().any(|l| l.conn.id == conn.id) {
                    local.push(LocalConn {
                        conn: Arc::clone(conn),
                        pending: Vec::new(),
                        broken: false,
                    });
                }
            }
            if stop.load(Ordering::Acquire) && conns.is_empty() && local.is_empty() {
                break;
            }
        }

        let mut wrote = false;
        for lc in &mut local {
            wrote |= service_conn(lc);
        }

        // Reap connections that are closing and fully flushed.
        let mut reaped: Vec<usize> = Vec::new();
        local.retain(|lc| {
            let done = lc.conn.closing.load(Ordering::Acquire)
                && lc.pending.is_empty()
                && lc.conn.handoff.lock().expect("handoff lock").is_empty();
            if done {
                let _ = lc.conn.stream.shutdown(Shutdown::Both);
                reaped.push(lc.conn.id);
            }
            !done
        });
        if !reaped.is_empty() {
            // Remove exactly what was reaped: a connection the accept
            // thread added after the adoption pass above is not in
            // `local` yet, and purging it here would orphan it — its
            // handoff never drained and its reader never joined.
            let mut conns = group.conns.lock().expect("group lock");
            conns.retain(|c| !reaped.contains(&c.id));
        }

        if wrote {
            continue;
        }
        // Nothing completed this pass: park on the oldest pending
        // ticket so a completion wakes us promptly, or idle on the
        // group condvar when there is nothing in flight at all.
        if let Some(lc) = local.iter_mut().find(|l| !l.pending.is_empty()) {
            let entry = &mut lc.pending[0];
            match entry.ticket.wait_timeout(WRITER_PARK) {
                Ok(Some(response)) => {
                    let frame = completion_frame(entry.cid, &response, entry.discard);
                    if !lc.broken && frame.write_to(&mut &lc.conn.stream).is_err() {
                        lc.broken = true;
                    }
                    lc.conn.release_slot();
                    // Remove exactly the ticket that was polled:
                    // correlation ids are client-chosen and may repeat
                    // across concurrent requests, and each pending
                    // entry owns exactly one in-flight slot.
                    lc.pending.remove(0);
                }
                Ok(None) => {}
                Err(_) => {
                    lc.conn.release_slot();
                    lc.pending.remove(0);
                }
            }
        } else {
            let conns = group.conns.lock().expect("group lock");
            if stop.load(Ordering::Acquire) && conns.is_empty() {
                break;
            }
            let _ = group.wake.wait_timeout(conns, WRITER_IDLE_PARK).expect("group lock");
        }
    }
}

/// Drains the handoff queue and polls pending tickets for one
/// connection; returns whether anything hit the wire.
fn service_conn(lc: &mut LocalConn) -> bool {
    let mut wrote = false;
    loop {
        let entry = lc.conn.handoff.lock().expect("handoff lock").pop_front();
        let Some(entry) = entry else { break };
        match entry {
            Entry::Immediate(f) => {
                if !lc.broken && f.write_to(&mut &lc.conn.stream).is_err() {
                    lc.broken = true;
                }
                wrote = true;
            }
            Entry::Ticket { cid, ticket, discard } => {
                lc.pending.push(PendingTicket { cid, ticket, discard });
            }
        }
    }
    let mut i = 0;
    while i < lc.pending.len() {
        let taken = lc.pending[i].ticket.try_take();
        match taken {
            Ok(Some(response)) => {
                let entry = lc.pending.remove(i);
                let frame = completion_frame(entry.cid, &response, entry.discard);
                if !lc.broken && frame.write_to(&mut &lc.conn.stream).is_err() {
                    lc.broken = true;
                }
                lc.conn.release_slot();
                wrote = true;
            }
            Ok(None) => i += 1,
            Err(_) => {
                lc.pending.remove(i);
                lc.conn.release_slot();
            }
        }
    }
    if lc.broken && !lc.conn.closing.load(Ordering::Acquire) {
        // The peer is gone; stop the reader too.
        lc.conn.close_read();
    }
    wrote
}

/// Builds the wire frame for a completed ticket: RESPONSE for served
/// requests, ERROR for timed-out/failed terminals.
fn completion_frame(cid: u64, response: &crate::tenant::Response, discard: bool) -> Frame {
    match &response.status {
        ResponseStatus::Ok => {
            let payload = if discard {
                frame::encode_response_payload(&[])
            } else {
                frame::encode_response_payload(&response.parts)
            };
            Frame::new(opcode::RESPONSE, cid, payload)
        }
        ResponseStatus::TimedOut => error_frame(cid, error::TIMED_OUT),
        _ => error_frame(cid, error::STORE_FAILED),
    }
}
