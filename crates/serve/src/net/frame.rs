//! The wire codec: length-prefixed binary frames.
//!
//! Every message on a serving connection is one frame:
//!
//! ```text
//! +----------------+---------+--------+--------------------+---------+
//! | length: u32 LE | version | opcode | correlation: u64 LE| payload |
//! +----------------+---------+--------+--------------------+---------+
//! ```
//!
//! `length` counts everything after itself (version + opcode +
//! correlation id + payload = `10 + payload.len()` bytes), so a reader
//! can frame the stream without understanding any opcode. The full
//! format, opcode and error tables, and pipelining semantics are
//! specified in `docs/PROTOCOL.md`; a unit test in this module asserts
//! the spec's constants equal the ones below, so the document cannot
//! silently drift from the implementation.

use std::io::{Read, Write};

/// The protocol version this implementation speaks (the frame's
/// `version` byte). A server receiving any other value answers with an
/// [`error::BAD_VERSION`] error frame and closes the connection.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard upper bound on `length`: frames above this are refused with
/// [`error::FRAME_TOO_LARGE`] *before* any payload is read, so a
/// corrupt or hostile length prefix cannot make the server buffer
/// gigabytes.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of frame header covered by `length` (version + opcode +
/// correlation id).
pub const FRAME_HEADER_LEN: u32 = 10;

/// Frame opcodes. `0x01..=0x7f` flow client → server, `0x81..=0xff`
/// server → client.
pub mod opcode {
    /// Client → server: opens the session (payload: tenant id `u32 LE`,
    /// requested in-flight cap `u32 LE`, 0 = server default). Must be
    /// the first frame on a connection.
    pub const HELLO: u8 = 0x01;
    /// Client → server: one lookup request (payload: flags `u8`,
    /// deadline µs `u64 LE` (0 = none), table count `u16 LE`, then per
    /// table: table id `u32 LE`, key count `u32 LE`, keys `u32 LE`
    /// each). Answered by [`RESPONSE`] or [`ERROR`] carrying the same
    /// correlation id, in **completion** order, not submission order.
    pub const LOOKUP: u8 = 0x02;
    /// Client → server: liveness probe; echoed as [`PONG`] with the
    /// same correlation id.
    pub const PING: u8 = 0x03;
    /// Client → server: clean shutdown. The server finishes writing
    /// every pending response, then closes.
    pub const GOODBYE: u8 = 0x04;
    /// Server → client: session accepted (payload: granted in-flight
    /// cap `u32 LE`).
    pub const HELLO_OK: u8 = 0x81;
    /// Server → client: a completed lookup (payload: part count
    /// `u16 LE`, then per part: value count `u32 LE`, then per value:
    /// byte length `u32 LE` + bytes). A `NO_PAYLOAD` lookup completes
    /// with zero parts.
    pub const RESPONSE: u8 = 0x82;
    /// Server → client: a terminal failure for one request — or, with
    /// correlation id 0, a connection-level protocol error after which
    /// the server closes. Payload: error code `u8` (see [`error`](super::error)).
    pub const ERROR: u8 = 0x83;
    /// Server → client: answer to [`PING`].
    pub const PONG: u8 = 0x84;
}

/// [`opcode::LOOKUP`] flag bits.
pub mod lookup_flags {
    /// Completion-only: the server skips payload retention and the
    /// [`opcode::RESPONSE`](super::opcode::RESPONSE) carries zero parts — the open-loop load
    /// generator's mode.
    pub const NO_PAYLOAD: u8 = 0x01;
}

/// Error codes carried by [`opcode::ERROR`] frames.
pub mod error {
    /// Shed at admission: the tenant's shard lane was full.
    pub const SHED_LANE_FULL: u8 = 1;
    /// Shed at admission: the tenant's in-flight quota was exhausted.
    pub const SHED_QUOTA: u8 = 2;
    /// Shed at admission by the SLO controller (recent-window p99 over
    /// budget).
    pub const SHED_SLO: u8 = 3;
    /// The request missed its deadline before serving started.
    pub const TIMED_OUT: u8 = 4;
    /// A table/vector reference was invalid or the device failed.
    pub const STORE_FAILED: u8 = 5;
    /// The LOOKUP payload did not parse (connection survives).
    pub const BAD_REQUEST: u8 = 6;
    /// The engine is shutting down.
    pub const SHUTTING_DOWN: u8 = 7;
    /// The HELLO named a tenant the engine does not know.
    pub const UNKNOWN_TENANT: u8 = 8;
    /// The frame's version byte was not [`super::PROTOCOL_VERSION`]
    /// (connection-level; the server closes).
    pub const BAD_VERSION: u8 = 9;
    /// The frame's opcode is not one the server accepts
    /// (connection-level; the server closes).
    pub const BAD_OPCODE: u8 = 10;
    /// The length prefix exceeded [`super::MAX_FRAME_LEN`] or was
    /// shorter than the fixed header (connection-level; the server
    /// closes).
    pub const FRAME_TOO_LARGE: u8 = 11;
}

/// One decoded wire frame.
///
/// The codec is symmetric and total over this struct: any `Frame` (any
/// version/opcode byte, any payload up to [`MAX_FRAME_LEN`]) encodes
/// and decodes identically. Opcode and version *validation* is the
/// connection handler's job, so the codec itself can round-trip
/// arbitrary frames (property-tested in this module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte (see [`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Message opcode (see [`opcode`]).
    pub opcode: u8,
    /// Client-chosen request correlation id, echoed verbatim on the
    /// matching response/error frame; `0` on connection-level frames.
    pub correlation_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame speaking [`PROTOCOL_VERSION`].
    pub fn new(opcode: u8, correlation_id: u64, payload: Vec<u8>) -> Self {
        Frame { version: PROTOCOL_VERSION, opcode, correlation_id, payload }
    }

    /// The frame's on-wire length prefix value.
    pub fn wire_len(&self) -> u32 {
        FRAME_HEADER_LEN + self.payload.len() as u32
    }

    /// Encodes the frame into `out` (length prefix included).
    ///
    /// # Panics
    ///
    /// Panics if the payload would exceed [`MAX_FRAME_LEN`] — frames
    /// that large are a caller bug, not an I/O condition.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = self.wire_len();
        assert!(len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.version);
        out.push(self.opcode);
        out.extend_from_slice(&self.correlation_id.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.wire_len() as usize);
        self.encode_into(&mut out);
        out
    }

    /// Writes the frame to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from `r`, blocking until a full frame (or an
    /// error) arrives.
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on clean EOF at a frame boundary,
    /// [`FrameError::Truncated`] on EOF mid-frame,
    /// [`FrameError::TooShort`]/[`FrameError::TooLarge`] for length
    /// prefixes outside `FRAME_HEADER_LEN..=MAX_FRAME_LEN` (the payload
    /// is *not* read), and [`FrameError::Io`] for transport errors.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(r, &mut len_buf)? {
            ReadOutcome::Eof => return Err(FrameError::Closed),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(len_buf);
        if len < FRAME_HEADER_LEN {
            return Err(FrameError::TooShort { len });
        }
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { len });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            _ => FrameError::Io(e),
        })?;
        let version = body[0];
        let opcode = body[1];
        let mut cid = [0u8; 8];
        cid.copy_from_slice(&body[2..10]);
        Ok(Frame {
            version,
            opcode,
            correlation_id: u64::from_le_bytes(cid),
            payload: body[10..].to_vec(),
        })
    }
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Like `read_exact`, but distinguishes EOF-before-any-byte (a clean
/// close between frames) from EOF mid-buffer (truncation).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 { Ok(ReadOutcome::Eof) } else { Err(FrameError::Truncated) };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary (the peer closed).
    Closed,
    /// EOF in the middle of a frame.
    Truncated,
    /// The length prefix was smaller than the fixed header.
    TooShort {
        /// The offending prefix value.
        len: u32,
    },
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge {
        /// The offending prefix value.
        len: u32,
    },
    /// A transport-level I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooShort { len } => {
                write!(f, "frame length {len} is below the {FRAME_HEADER_LEN}-byte header")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a LOOKUP payload from a typed request.
pub(crate) fn encode_lookup_payload(
    request: &bandana_trace::Request,
    flags: u8,
    deadline_us: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + request.queries.len() * 12);
    out.push(flags);
    out.extend_from_slice(&deadline_us.to_le_bytes());
    out.extend_from_slice(&(request.queries.len() as u16).to_le_bytes());
    for q in &request.queries {
        out.extend_from_slice(&(q.table as u32).to_le_bytes());
        out.extend_from_slice(&(q.ids.len() as u32).to_le_bytes());
        for &id in &q.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

/// Decoded LOOKUP payload.
pub(crate) struct LookupPayload {
    pub flags: u8,
    pub deadline_us: u64,
    pub request: bandana_trace::Request,
}

/// Parses a LOOKUP payload; `None` means a malformed body
/// ([`error::BAD_REQUEST`]).
pub(crate) fn decode_lookup_payload(payload: &[u8]) -> Option<LookupPayload> {
    let mut cur = Cursor { buf: payload, at: 0 };
    let flags = cur.u8()?;
    let deadline_us = cur.u64()?;
    let tables = cur.u16()? as usize;
    let mut request = bandana_trace::Request::default();
    for _ in 0..tables {
        let table = cur.u32()? as usize;
        let count = cur.u32()? as usize;
        // The remaining bytes must actually hold `count` keys; checking
        // first prevents a bogus count from allocating gigabytes.
        if cur.remaining() < count.checked_mul(4)? {
            return None;
        }
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(cur.u32()?);
        }
        request.queries.push(bandana_trace::TableQuery::new(table, ids));
    }
    if cur.remaining() != 0 {
        return None;
    }
    Some(LookupPayload { flags, deadline_us, request })
}

/// Encodes a RESPONSE payload from completed parts.
pub(crate) fn encode_response_payload(parts: &[Vec<bytes::Bytes>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(parts.len() as u16).to_le_bytes());
    for part in parts {
        out.extend_from_slice(&(part.len() as u32).to_le_bytes());
        for value in part {
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
    }
    out
}

/// Parses a RESPONSE payload; `None` means a malformed body.
pub(crate) fn decode_response_payload(payload: &[u8]) -> Option<Vec<Vec<bytes::Bytes>>> {
    let mut cur = Cursor { buf: payload, at: 0 };
    let parts = cur.u16()? as usize;
    let mut out = Vec::with_capacity(parts);
    for _ in 0..parts {
        let values = cur.u32()? as usize;
        let mut part = Vec::with_capacity(values.min(cur.remaining() / 4 + 1));
        for _ in 0..values {
            let len = cur.u32()? as usize;
            let bytes = cur.take(len)?;
            part.push(bytes::Bytes::copy_from_slice(bytes));
        }
        out.push(part);
    }
    if cur.remaining() != 0 {
        return None;
    }
    Some(out)
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        let frame = Frame::new(opcode::LOOKUP, 42, vec![1, 2, 3, 4, 5]);
        let bytes = frame.encode();
        let mut reader = &bytes[..];
        let decoded = Frame::read_from(&mut reader).expect("decode");
        assert_eq!(decoded, frame);
        assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_frame_is_distinguished_from_clean_close() {
        let bytes = Frame::new(opcode::PING, 7, vec![0xaa; 16]).encode();
        // Cut mid-payload.
        let mut reader = &bytes[..bytes.len() - 3];
        assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::Truncated)));
        // Cut mid-length-prefix.
        let mut reader = &bytes[..2];
        assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::Truncated)));
        // Clean boundary.
        let mut reader = &bytes[..0];
        assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_and_undersized_length_prefixes_are_refused_unread() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 32]);
        let mut reader = &bytes[..];
        assert!(matches!(
            Frame::read_from(&mut reader),
            Err(FrameError::TooLarge { len }) if len == MAX_FRAME_LEN + 1
        ));
        let bytes = 4u32.to_le_bytes().to_vec();
        let mut reader = &bytes[..];
        assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::TooShort { len: 4 })));
    }

    #[test]
    fn lookup_payload_round_trips() {
        let mut request = bandana_trace::Request::default();
        request.queries.push(bandana_trace::TableQuery::new(3, vec![1, 2, 3]));
        request.queries.push(bandana_trace::TableQuery::new(0, vec![9]));
        let payload = encode_lookup_payload(&request, lookup_flags::NO_PAYLOAD, 5_000);
        let decoded = decode_lookup_payload(&payload).expect("decode");
        assert_eq!(decoded.flags, lookup_flags::NO_PAYLOAD);
        assert_eq!(decoded.deadline_us, 5_000);
        assert_eq!(decoded.request.queries.len(), 2);
        assert_eq!(decoded.request.queries[0].table, 3);
        assert_eq!(decoded.request.queries[0].ids, vec![1, 2, 3]);
        assert_eq!(decoded.request.queries[1].table, 0);
        assert_eq!(decoded.request.queries[1].ids, vec![9]);
    }

    #[test]
    fn malformed_lookup_payloads_are_refused() {
        // Truncated header.
        assert!(decode_lookup_payload(&[0, 1, 2]).is_none());
        // Table count promises more than the body holds.
        let mut request = bandana_trace::Request::default();
        request.queries.push(bandana_trace::TableQuery::new(1, vec![5, 6]));
        let mut payload = encode_lookup_payload(&request, 0, 0);
        payload[9] = 7; // table count low byte
        assert!(decode_lookup_payload(&payload).is_none());
        // A huge key count cannot trigger a huge allocation.
        let good = encode_lookup_payload(&request, 0, 0);
        let mut evil = good.clone();
        evil[15] = 0xff;
        evil[16] = 0xff;
        evil[17] = 0xff;
        evil[18] = 0xff; // key count = u32::MAX
        assert!(decode_lookup_payload(&evil).is_none());
        // Trailing garbage is not tolerated.
        let mut trailing = good;
        trailing.push(0);
        assert!(decode_lookup_payload(&trailing).is_none());
    }

    #[test]
    fn response_payload_round_trips() {
        let parts =
            vec![vec![bytes::Bytes::from(vec![1u8, 2, 3]), bytes::Bytes::from(vec![4u8])], vec![]];
        let payload = encode_response_payload(&parts);
        let decoded = decode_response_payload(&payload).expect("decode");
        assert_eq!(decoded, parts);
        assert!(decode_response_payload(&payload[..payload.len() - 1]).is_none());
    }

    proptest! {
        #[test]
        fn arbitrary_frames_encode_decode_identically(
            version in any::<u8>(),
            op in any::<u8>(),
            cid in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let frame = Frame { version, opcode: op, correlation_id: cid, payload };
            let bytes = frame.encode();
            let mut reader = &bytes[..];
            let decoded = Frame::read_from(&mut reader).expect("decode");
            prop_assert_eq!(decoded, frame);
        }

        #[test]
        fn pipelined_frames_frame_the_stream_exactly(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        ) {
            // Several frames back to back — the pipelined wire — must
            // come out one by one with nothing lost or merged.
            let frames: Vec<Frame> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, p)| Frame::new(opcode::LOOKUP, i as u64 + 1, p))
                .collect();
            let mut stream = Vec::new();
            for f in &frames {
                f.encode_into(&mut stream);
            }
            let mut reader = &stream[..];
            for f in &frames {
                let decoded = Frame::read_from(&mut reader).expect("decode");
                prop_assert_eq!(&decoded, f);
            }
            prop_assert!(matches!(Frame::read_from(&mut reader), Err(FrameError::Closed)));
        }
    }
}
