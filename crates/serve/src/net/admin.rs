//! The HTTP admin plane: a minimal text/HTTP 1.1 listener for
//! operators and scrapers.
//!
//! Routes:
//!
//! | method | path       | body |
//! |--------|------------|------|
//! | GET    | `/metrics` | [`render_prometheus`] output, **verbatim** (the frozen `bandana_*` schema) |
//! | GET    | `/audit`   | [`render_audit_log`] of the retained control-plane decisions |
//! | GET    | `/trace`   | Chrome trace-event JSON from the flight recorder (load into Perfetto) |
//! | POST   | `/tenants` | live tenant registration (form-urlencoded) |
//!
//! `POST /tenants` accepts `id=<u32>&weight=<u32>` plus optional
//! `class=high|normal|low`, `quota=<u64>`, and `slo_p99_ms=<u64>`;
//! it answers `201` on success, `400` on a malformed body or invalid
//! spec, `409` when the tenant id is already registered, and `503`
//! while the engine is shutting down.
//!
//! The implementation is deliberately small: thread-per-connection
//! blocking I/O, one request per connection (`Connection: close`), no
//! TLS, no routing table — it exists so `curl` and a Prometheus
//! scraper can reach the engine, not to be a web framework.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::engine::{ServeError, ShardedEngine};
use crate::obs::{render_audit_log, render_prometheus};
use crate::tenant::{PriorityClass, TenantId, TenantSpec};

/// Upper bound on an admin request head + body; admin bodies are tiny.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// A running admin listener. Stops (and joins its accept thread) on
/// [`AdminServer::shutdown`] or drop; in-flight request handlers are
/// detached and finish on their own.
pub struct AdminServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 picks a free port) and starts serving the
    /// admin routes for `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(engine: Arc<ShardedEngine>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&shutdown);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    thread::spawn(move || {
                        let _ = handle_connection(stream, &engine);
                    });
                }
            })
        };
        Ok(AdminServer { local_addr, shutdown, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The `/metrics` body: [`render_prometheus`] over a fresh
/// metrics/snapshot pair, served byte-for-byte on the wire (pinned by
/// a test).
pub fn metrics_body(engine: &ShardedEngine) -> String {
    render_prometheus(&engine.metrics(), &engine.snapshot())
}

fn handle_connection(mut stream: TcpStream, engine: &ShardedEngine) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => {
            return respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n");
        }
    };
    let (status, content_type, body) = route(engine, &request);
    respond(&mut stream, status, content_type, &body)
}

struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body). Returns
/// `Err` on anything that does not parse.
fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, ()> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(());
        }
        let n = stream.read(&mut chunk).map_err(|_| ())?;
        if n == 0 {
            return Err(());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(())?.to_string();
    let path = parts.next().ok_or(())?.to_string();
    let version = parts.next().ok_or(())?;
    if !version.starts_with("HTTP/1.") {
        return Err(());
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| ())?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(());
    }
    let body_start = head_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| ())?;
        if n == 0 {
            return Err(());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| ())?;
    Ok(HttpRequest { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(engine: &ShardedEngine, req: &HttpRequest) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => {
            (200, "text/plain; version=0.0.4; charset=utf-8", metrics_body(engine))
        }
        ("GET", "/audit") => {
            (200, "text/plain; charset=utf-8", render_audit_log(&engine.metrics().audit))
        }
        ("GET", "/trace") => (200, "application/json; charset=utf-8", engine.dump_trace()),
        ("POST", "/tenants") => register_tenant(engine, &req.body),
        (_, "/metrics" | "/audit" | "/trace" | "/tenants") => {
            (405, "text/plain; charset=utf-8", "method not allowed\n".into())
        }
        _ => (404, "text/plain; charset=utf-8", "not found\n".into()),
    }
}

/// `POST /tenants` handler: parses the form body, registers the tenant
/// live, and maps the outcome to an HTTP status.
fn register_tenant(engine: &ShardedEngine, body: &str) -> (u16, &'static str, String) {
    let plain = "text/plain; charset=utf-8";
    let spec = match parse_tenant_form(body) {
        Ok(s) => s,
        Err(why) => return (400, plain, format!("bad request: {why}\n")),
    };
    match engine.register_tenant(TenantId(spec.0), spec.1) {
        Ok(()) => (201, plain, format!("registered tenant {}\n", spec.0)),
        Err(ServeError::ShuttingDown) => (503, plain, "engine is shutting down\n".into()),
        Err(ServeError::InvalidTenant(why)) if why.contains("already registered") => {
            (409, plain, format!("conflict: {why}\n"))
        }
        Err(e) => (400, plain, format!("bad request: {e}\n")),
    }
}

/// Parses `id=7&weight=9&class=high&quota=64&slo_p99_ms=50` into a
/// tenant id and spec. `id` and `weight` are required.
fn parse_tenant_form(body: &str) -> Result<(u32, TenantSpec), String> {
    let mut id = None;
    let mut weight = None;
    let mut class = None;
    let mut quota = None;
    let mut slo_p99_ms = None;
    for pair in body.split('&').filter(|p| !p.is_empty()) {
        let (key, value) =
            pair.split_once('=').ok_or_else(|| format!("malformed pair {pair:?}"))?;
        match key {
            "id" => id = Some(value.parse::<u32>().map_err(|_| format!("bad id {value:?}"))?),
            "weight" => {
                weight = Some(value.parse::<u32>().map_err(|_| format!("bad weight {value:?}"))?);
            }
            "class" => {
                class = Some(match value {
                    "high" => PriorityClass::High,
                    "normal" => PriorityClass::Normal,
                    "low" => PriorityClass::Low,
                    other => return Err(format!("bad class {other:?}")),
                });
            }
            "quota" => {
                quota = Some(value.parse::<u64>().map_err(|_| format!("bad quota {value:?}"))?);
            }
            "slo_p99_ms" => {
                slo_p99_ms =
                    Some(value.parse::<u64>().map_err(|_| format!("bad slo_p99_ms {value:?}"))?);
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    let id = id.ok_or("missing field `id`")?;
    let weight = weight.ok_or("missing field `weight`")?;
    let mut spec = TenantSpec::new(weight);
    if let Some(c) = class {
        spec = spec.with_class(c);
    }
    if let Some(q) = quota {
        spec = spec.with_quota(q);
    }
    if let Some(ms) = slo_p99_ms {
        spec = spec.with_slo_p99(Duration::from_millis(ms));
    }
    Ok((id, spec))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// A tiny blocking HTTP/1.1 GET/POST helper for tests, examples, and
/// the bench suite's `/metrics` check — returns `(status, body)`.
///
/// # Errors
///
/// Fails on connection errors or a response that is not parseable
/// HTTP/1.1 with a `Content-Length`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head_end = find_head_end(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code")
        })?;
    let body = String::from_utf8(response[head_end + 4..].to_vec())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_form_parses_full_and_minimal_bodies() {
        let (id, spec) = parse_tenant_form("id=7&weight=9&class=high&quota=64&slo_p99_ms=50")
            .expect("full form");
        assert_eq!(id, 7);
        assert_eq!(spec.weight, 9);
        assert_eq!(spec.priority_class, PriorityClass::High);
        assert_eq!(spec.admission_quota, Some(64));
        assert_eq!(spec.slo_p99, Some(Duration::from_millis(50)));
        let (id, spec) = parse_tenant_form("id=1&weight=2").expect("minimal form");
        assert_eq!(id, 1);
        assert_eq!(spec.weight, 2);
        assert_eq!(spec.priority_class, PriorityClass::Normal);
    }

    #[test]
    fn tenant_form_rejects_garbage() {
        assert!(parse_tenant_form("weight=2").is_err());
        assert!(parse_tenant_form("id=1").is_err());
        assert!(parse_tenant_form("id=x&weight=2").is_err());
        assert!(parse_tenant_form("id=1&weight=2&class=urgent").is_err());
        assert!(parse_tenant_form("id=1&weight=2&bogus=3").is_err());
        assert!(parse_tenant_form("id=1&weight").is_err());
    }
}
