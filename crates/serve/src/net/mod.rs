//! The network front-end: a pipelined binary TCP serving protocol and
//! an HTTP admin plane, both over blocking `std::net` — no async
//! runtime, matching the engine's thread-per-role discipline.
//!
//! Three layers:
//!
//! - [`frame`] — the length-prefixed wire codec: the frame layout, the
//!   pinned opcode/error-code constants, and the payload encodings.
//!   The authoritative spec is `docs/PROTOCOL.md`; a unit test pins the
//!   document's constant tables to this module.
//! - [`server`] / [`client`] — [`NetServer`] maps connections straight
//!   onto the tenant [`Client`](crate::Client) /
//!   [`ResponseTicket`](crate::ResponseTicket) serving API: requests pipeline on one
//!   connection, complete **out of order** on the wire (matched by
//!   correlation id), and per-connection in-flight caps push overload
//!   back into TCP flow control instead of buffering unboundedly.
//!   [`NetClient`] is the matching client with client-side latency
//!   measurement.
//! - [`admin`] — [`AdminServer`], a minimal HTTP/1.1 listener:
//!   `GET /metrics` (the frozen Prometheus schema, served verbatim),
//!   `GET /audit`, `GET /trace` (Chrome trace JSON), and
//!   `POST /tenants` for live registration. See `docs/OPERATIONS.md`
//!   for the operator runbook.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use bandana_serve::net::{NetClient, NetServer, NetServerConfig};
//! use bandana_serve::{ServeConfig, ShardedEngine, TenantId};
//! # fn store() -> bandana_core::BandanaStore { unimplemented!() }
//!
//! let engine = Arc::new(ShardedEngine::new(store(), ServeConfig::default()).unwrap());
//! let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();
//!
//! let client = NetClient::connect(server.local_addr(), TenantId::DEFAULT, 64).unwrap();
//! let mut request = bandana_trace::Request::default();
//! request.queries.push(bandana_trace::TableQuery::new(0, vec![1, 2, 3]));
//! // Pipeline two requests, reap them in whatever order they finish.
//! let mut a = client.submit(&request).unwrap();
//! let mut b = client.submit(&request).unwrap();
//! let second = b.wait().unwrap();
//! let first = a.wait().unwrap();
//! assert!(first.is_ok() && second.is_ok());
//! client.close().unwrap();
//! server.shutdown();
//! ```

pub mod admin;
pub mod client;
pub mod frame;
pub mod server;

pub use admin::{http_request, metrics_body, AdminServer};
pub use client::{NetClient, NetResponse, NetTicket};
pub use frame::{Frame, FrameError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{NetServer, NetServerConfig};

#[cfg(test)]
mod tests {
    use super::frame::{error, opcode, Frame, FrameError, MAX_FRAME_LEN, PROTOCOL_VERSION};
    use super::*;
    use crate::control::ControlConfig;
    use crate::engine::{ServeConfig, ShardedEngine};
    use crate::queue::ShedPolicy;
    use crate::tenant::{TenantId, TenantSpec};
    use bandana_core::{BandanaConfig, BandanaStore};
    use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
    use std::io::Write;
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    fn build_engine(seed: u64, config: ServeConfig) -> (Arc<ShardedEngine>, TraceGenerator) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, seed);
        let training = generator.generate_requests(200);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let store = BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default().with_cache_vectors(256),
        )
        .expect("build store");
        (Arc::new(ShardedEngine::new(store, config).expect("engine")), generator)
    }

    /// A control config whose bus ticks rarely, so back-to-back metric
    /// renderings are overwhelmingly likely to see the same tick count
    /// (the bus only notices shutdown after a full tick sleep, so the
    /// tick must stay short enough for the engine to drop promptly).
    fn quiet_control() -> ControlConfig {
        ControlConfig {
            tick: Duration::from_millis(500),
            window_slot: Duration::from_millis(500),
            window_slots: 8,
        }
    }

    fn start_server(engine: &Arc<ShardedEngine>) -> NetServer {
        NetServer::start(Arc::clone(engine), NetServerConfig::default()).expect("net server")
    }

    #[test]
    fn pipelined_requests_complete_and_reap_out_of_order() {
        let (engine, mut generator) = build_engine(21, ServeConfig::default().with_shards(2));
        let server = start_server(&engine);
        let client =
            NetClient::connect(server.local_addr(), TenantId::DEFAULT, 32).expect("connect");
        assert!(client.granted_in_flight() >= 1);
        let trace = generator.generate_requests(24);
        let mut tickets: Vec<_> =
            trace.requests.iter().map(|r| client.submit(r).expect("submit")).collect();
        // Reap strictly in reverse submission order: out-of-order on
        // purpose — correlation ids, not arrival order, match them up.
        for (i, ticket) in tickets.iter_mut().enumerate().rev() {
            let response = ticket.wait().expect("wait");
            assert!(response.is_ok(), "request {i} failed: {:?}", response.error);
            assert_eq!(response.parts.len(), trace.requests[i].queries.len());
            let expected: usize = trace.requests[i].queries.iter().map(|q| q.ids.len()).sum();
            let got: usize = response.parts.iter().map(Vec::len).sum();
            assert_eq!(got, expected, "request {i} returned every vector");
        }
        assert!(client.latency().count >= 24);
        let mut pong = client.ping().expect("ping");
        assert!(pong.wait().expect("pong").is_ok());
        client.close().expect("goodbye");
        server.shutdown();
        assert_eq!(Arc::try_unwrap(engine).ok().map(|e| e.shutdown().completed >= 24), Some(true));
    }

    #[test]
    fn discarding_submissions_complete_with_empty_parts() {
        let (engine, mut generator) = build_engine(22, ServeConfig::default().with_shards(1));
        let server = start_server(&engine);
        let client =
            NetClient::connect(server.local_addr(), TenantId::DEFAULT, 8).expect("connect");
        let trace = generator.generate_requests(8);
        for request in &trace.requests {
            let mut t = client.submit_discarding(request).expect("submit");
            let response = t.wait().expect("wait");
            assert!(response.is_ok());
            assert!(response.parts.is_empty(), "NO_PAYLOAD responses carry no parts");
        }
        client.close().expect("goodbye");
        server.shutdown();
    }

    #[test]
    fn hello_for_an_unknown_tenant_is_refused() {
        let (engine, _) = build_engine(23, ServeConfig::default().with_shards(1));
        let server = start_server(&engine);
        let err = match NetClient::connect(server.local_addr(), TenantId(999), 8) {
            Err(e) => e,
            Ok(_) => panic!("unknown tenant must be refused"),
        };
        assert!(err.to_string().contains(&format!("error code {}", error::UNKNOWN_TENANT)));
        server.shutdown();
    }

    /// Sends raw bytes, then reads whatever frames come back until the
    /// server closes. Returns the frames.
    fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<Frame> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(bytes).expect("write");
        stream.shutdown(std::net::Shutdown::Write).expect("half close");
        let mut frames = Vec::new();
        while let Ok(f) = Frame::read_from(&mut stream) {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn malformed_input_errors_cleanly_without_poisoning_other_connections() {
        let (engine, mut generator) = build_engine(24, ServeConfig::default().with_shards(1));
        let server = start_server(&engine);
        let addr = server.local_addr();
        // A healthy connection, open before the abuse starts.
        let client = NetClient::connect(addr, TenantId::DEFAULT, 8).expect("connect");
        let trace = generator.generate_requests(4);

        // Bad version byte: connection-level error frame, then close.
        let mut bad_version = Frame::new(opcode::HELLO, 0, vec![0; 8]);
        bad_version.version = 99;
        let frames = raw_exchange(addr, &bad_version.encode());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].opcode, opcode::ERROR);
        assert_eq!(frames[0].correlation_id, 0);
        assert_eq!(frames[0].payload, vec![error::BAD_VERSION]);

        // Unknown opcode after a valid HELLO.
        let mut hello = TenantId::DEFAULT.0.to_le_bytes().to_vec();
        hello.extend_from_slice(&8u32.to_le_bytes());
        let mut bytes = Frame::new(opcode::HELLO, 0, hello).encode();
        Frame::new(0x7f, 5, Vec::new()).encode_into(&mut bytes);
        let frames = raw_exchange(addr, &bytes);
        assert_eq!(frames.last().expect("reply").opcode, opcode::ERROR);
        assert_eq!(frames.last().expect("reply").payload, vec![error::BAD_OPCODE]);

        // Oversized length prefix: refused before the payload is read.
        let frames = raw_exchange(addr, &(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, vec![error::FRAME_TOO_LARGE]);

        // Truncated frame: the server just closes that connection.
        let whole = Frame::new(opcode::PING, 1, vec![0xee; 32]).encode();
        let frames = raw_exchange(addr, &whole[..whole.len() - 7]);
        assert!(frames.is_empty(), "truncation gets no reply, only a close");

        // The healthy connection is entirely unaffected.
        for request in &trace.requests {
            let mut t = client.submit(request).expect("submit");
            assert!(t.wait().expect("wait").is_ok());
        }
        client.close().expect("goodbye");
        server.shutdown();
    }

    #[test]
    fn lookup_before_hello_is_a_protocol_error() {
        let (engine, _) = build_engine(25, ServeConfig::default().with_shards(1));
        let server = start_server(&engine);
        let lookup = Frame::new(opcode::LOOKUP, 1, vec![0; 11]).encode();
        let frames = raw_exchange(server.local_addr(), &lookup);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].opcode, opcode::ERROR);
        assert_eq!(frames[0].payload, vec![error::BAD_OPCODE]);
        server.shutdown();
    }

    #[test]
    fn shed_terminals_arrive_as_error_frames_and_the_wire_stays_up() {
        let (engine, mut generator) = build_engine(
            26,
            ServeConfig::default()
                .with_shards(1)
                .with_queue_capacity(2)
                .with_shed_policy(ShedPolicy::DropNewest),
        );
        let server = start_server(&engine);
        let client =
            NetClient::connect(server.local_addr(), TenantId::DEFAULT, 256).expect("connect");
        let trace = generator.generate_requests(300);
        let mut tickets: Vec<_> =
            trace.requests.iter().map(|r| client.submit_discarding(r).expect("submit")).collect();
        let mut ok = 0u64;
        let mut shed = 0u64;
        for ticket in &mut tickets {
            let response = ticket.wait().expect("wait");
            if response.is_ok() {
                ok += 1;
            } else {
                assert!(response.is_shed(), "unexpected terminal: {:?}", response.error);
                shed += 1;
            }
        }
        assert_eq!(ok + shed, 300, "every correlation id got a terminal frame");
        assert!(ok > 0, "some requests served");
        assert!(shed > 0, "a 2-deep queue under a 256-deep pipeline must shed");
        client.close().expect("goodbye");
        server.shutdown();
    }

    #[test]
    fn admin_metrics_is_byte_identical_to_render_prometheus() {
        let (engine, mut generator) =
            build_engine(27, ServeConfig::default().with_shards(1).with_control(quiet_control()));
        // Put some real traffic through so the rendering is non-trivial.
        let trace = generator.generate_requests(32);
        let client = engine.client(TenantId::DEFAULT).expect("client");
        for request in &trace.requests {
            let mut t = client.submit(request).expect("submit");
            t.wait().expect("wait");
        }
        engine.drain();
        let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("admin");
        // `render_prometheus` is a pure function of its (metrics,
        // snapshot) pair, so for the same snapshot the wire body IS its
        // output — the handler calls nothing else. Two *different*
        // snapshots of a drained, bus-quiescent engine differ in
        // exactly one sample, `bandana_uptime_seconds` (wall-clock by
        // definition), so the cross-render comparison normalizes that
        // single line and the transport's byte-exactness is pinned
        // separately below on a rendering with no wall-clock sample.
        let mut matched = false;
        for _ in 0..20 {
            let (status, body) =
                http_request(admin.local_addr(), "GET", "/metrics", None).expect("GET /metrics");
            assert_eq!(status, 200);
            assert!(body.contains("bandana_requests_completed_total 32"));
            if normalize_uptime(&body) == normalize_uptime(&metrics_body(&engine)) {
                matched = true;
                break;
            }
        }
        assert!(matched, "GET /metrics never matched render_prometheus byte-for-byte");
        // Transport pin: `GET /audit` must be byte-identical to
        // `render_audit_log` over the same events — nothing in this
        // rendering varies with wall clock, so equality is exact.
        let (status, audit_body) =
            http_request(admin.local_addr(), "GET", "/audit", None).expect("GET /audit");
        assert_eq!(status, 200);
        assert_eq!(audit_body, crate::obs::render_audit_log(&engine.metrics().audit));
        admin.shutdown();
    }

    /// Replaces the value of the single wall-clock sample
    /// (`bandana_uptime_seconds <v>`) so renderings taken microseconds
    /// apart compare equal everywhere else, byte for byte.
    fn normalize_uptime(body: &str) -> String {
        body.lines()
            .map(|l| {
                if l.starts_with("bandana_uptime_seconds ") {
                    "bandana_uptime_seconds X"
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn admin_audit_trace_and_errors_respond() {
        let (engine, _) =
            build_engine(28, ServeConfig::default().with_shards(1).with_control(quiet_control()));
        let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("admin");
        let addr = admin.local_addr();
        let (status, _) = http_request(addr, "GET", "/audit", None).expect("GET /audit");
        assert_eq!(status, 200);
        let (status, body) = http_request(addr, "GET", "/trace", None).expect("GET /trace");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"traceEvents\":["), "Chrome trace JSON");
        let (status, _) = http_request(addr, "GET", "/nope", None).expect("GET /nope");
        assert_eq!(status, 404);
        let (status, _) = http_request(addr, "DELETE", "/metrics", None).expect("DELETE");
        assert_eq!(status, 405);
        admin.shutdown();
    }

    #[test]
    fn admin_registers_tenants_live_and_maps_failures_to_statuses() {
        let (engine, mut generator) =
            build_engine(29, ServeConfig::default().with_shards(2).with_control(quiet_control()));
        let server = start_server(&engine);
        let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("admin");
        let addr = admin.local_addr();
        let body = "id=7&weight=9&class=high&quota=64&slo_p99_ms=50";
        let (status, reply) =
            http_request(addr, "POST", "/tenants", Some(body)).expect("POST /tenants");
        assert_eq!(status, 201, "{reply}");
        // The new tenant serves traffic immediately — including over
        // the wire front-end.
        let client = NetClient::connect(server.local_addr(), TenantId(7), 8).expect("connect");
        let trace = generator.generate_requests(4);
        for request in &trace.requests {
            let mut t = client.submit(request).expect("submit");
            assert!(t.wait().expect("wait").is_ok());
        }
        client.close().expect("goodbye");
        // Duplicate id → 409; malformed body → 400.
        let (status, _) = http_request(addr, "POST", "/tenants", Some(body)).expect("dup");
        assert_eq!(status, 409);
        let (status, _) =
            http_request(addr, "POST", "/tenants", Some("id=8&weight=nope")).expect("bad");
        assert_eq!(status, 400);
        let (status, _) = http_request(addr, "POST", "/tenants", Some("id=8")).expect("missing");
        assert_eq!(status, 400);
        admin.shutdown();
        server.shutdown();
        let registered = engine.tenants();
        assert!(registered.iter().any(|(id, spec)| {
            *id == TenantId(7) && spec.weight == 9 && spec.admission_quota == Some(64)
        }));
    }

    #[test]
    fn register_tenant_rejects_bad_specs_and_duplicates() {
        let (engine, _) = build_engine(30, ServeConfig::default().with_shards(1));
        assert!(engine.register_tenant(TenantId(3), TenantSpec::new(2)).is_ok());
        assert!(engine.register_tenant(TenantId(3), TenantSpec::new(2)).is_err());
        assert!(engine.register_tenant(TenantId(4), TenantSpec::new(0)).is_err());
    }

    /// Constants documented in `docs/PROTOCOL.md` must equal the
    /// implementation's — the spec cannot silently drift.
    #[test]
    fn protocol_spec_constants_match_the_implementation() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
        let spec = std::fs::read_to_string(path).expect("docs/PROTOCOL.md must exist");
        let documented = parse_constant_tables(&spec);
        let expected: &[(&str, u64)] = &[
            ("HELLO", u64::from(opcode::HELLO)),
            ("LOOKUP", u64::from(opcode::LOOKUP)),
            ("PING", u64::from(opcode::PING)),
            ("GOODBYE", u64::from(opcode::GOODBYE)),
            ("HELLO_OK", u64::from(opcode::HELLO_OK)),
            ("RESPONSE", u64::from(opcode::RESPONSE)),
            ("ERROR", u64::from(opcode::ERROR)),
            ("PONG", u64::from(opcode::PONG)),
            ("SHED_LANE_FULL", u64::from(error::SHED_LANE_FULL)),
            ("SHED_QUOTA", u64::from(error::SHED_QUOTA)),
            ("SHED_SLO", u64::from(error::SHED_SLO)),
            ("TIMED_OUT", u64::from(error::TIMED_OUT)),
            ("STORE_FAILED", u64::from(error::STORE_FAILED)),
            ("BAD_REQUEST", u64::from(error::BAD_REQUEST)),
            ("SHUTTING_DOWN", u64::from(error::SHUTTING_DOWN)),
            ("UNKNOWN_TENANT", u64::from(error::UNKNOWN_TENANT)),
            ("BAD_VERSION", u64::from(error::BAD_VERSION)),
            ("BAD_OPCODE", u64::from(error::BAD_OPCODE)),
            ("FRAME_TOO_LARGE", u64::from(error::FRAME_TOO_LARGE)),
            ("PROTOCOL_VERSION", u64::from(PROTOCOL_VERSION)),
            ("MAX_FRAME_LEN", u64::from(MAX_FRAME_LEN)),
        ];
        for (name, value) in expected {
            let got = documented
                .get(*name)
                .unwrap_or_else(|| panic!("docs/PROTOCOL.md does not document constant {name}"));
            assert_eq!(got, value, "docs/PROTOCOL.md documents {name} as {got}, code says {value}");
        }
        // And nothing is documented that the implementation lacks.
        for name in documented.keys() {
            assert!(
                expected.iter().any(|(n, _)| n == name),
                "docs/PROTOCOL.md documents unknown constant {name}"
            );
        }
    }

    /// Extracts `` | `NAME` | `0xNN` | `` (or decimal) rows from the
    /// spec's markdown tables.
    fn parse_constant_tables(spec: &str) -> std::collections::BTreeMap<String, u64> {
        let mut out = std::collections::BTreeMap::new();
        for line in spec.lines() {
            let mut cells = line.split('|').map(str::trim).filter(|c| !c.is_empty());
            let (Some(name), Some(value)) = (cells.next(), cells.next()) else { continue };
            let (Some(name), Some(value)) = (backticked(name), backticked(value)) else {
                continue;
            };
            let parsed = if let Some(hex) = value.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                value.replace('_', "").parse().ok()
            };
            if let Some(v) = parsed {
                out.insert(name.to_string(), v);
            }
        }
        out
    }

    fn backticked(cell: &str) -> Option<&str> {
        cell.strip_prefix('`')?.strip_suffix('`')
    }

    #[test]
    fn frame_error_messages_name_the_limits() {
        assert!(FrameError::TooLarge { len: MAX_FRAME_LEN + 1 }
            .to_string()
            .contains(&MAX_FRAME_LEN.to_string()));
        assert!(FrameError::TooShort { len: 2 }.to_string().contains("header"));
    }
}
