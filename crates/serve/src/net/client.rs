//! The wire client: pipelined submission over one TCP connection.
//!
//! [`NetClient`] mirrors the in-process [`Client`](crate::Client) API
//! shape — submit returns a [`NetTicket`] future that can be polled,
//! waited on, or reaped out of order — but every latency it reports is
//! measured **client-side**, submit-to-receipt across the wire, which
//! is exactly what the bench suite's `net` arm gates against the
//! in-process path.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bandana_trace::Request;
use bytes::Bytes;

use crate::hist::{LatencyHistogram, LatencySummary};
use crate::net::frame::{
    self, decode_response_payload, encode_lookup_payload, lookup_flags, opcode, Frame,
};
use crate::tenant::TenantId;

/// One completed wire request.
#[derive(Debug, Clone)]
pub struct NetResponse {
    /// Per-table value payloads; empty for `NO_PAYLOAD` submissions and
    /// error terminals.
    pub parts: Vec<Vec<Bytes>>,
    /// `None` for a served request; otherwise the wire error code (see
    /// [`frame::error`]).
    pub error: Option<u8>,
    /// Client-measured submit-to-receipt latency.
    pub e2e: Duration,
}

impl NetResponse {
    /// Whether the request was served.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Whether the request was shed at admission (lane-full, quota, or
    /// SLO).
    pub fn is_shed(&self) -> bool {
        matches!(
            self.error,
            Some(frame::error::SHED_LANE_FULL)
                | Some(frame::error::SHED_QUOTA)
                | Some(frame::error::SHED_SLO)
        )
    }

    /// Whether the request missed its deadline.
    pub fn is_timed_out(&self) -> bool {
        self.error == Some(frame::error::TIMED_OUT)
    }
}

struct NetState {
    /// Submit instant by correlation id, for requests still on the
    /// wire.
    in_flight: HashMap<u64, Instant>,
    /// Completions not yet reaped by their ticket.
    done: HashMap<u64, NetResponse>,
    /// Submit-to-receipt latency of served requests.
    latency: LatencyHistogram,
    /// Set when the reader thread exits; every pending wait fails.
    dead: Option<String>,
}

struct NetShared {
    state: Mutex<NetState>,
    /// A completion landed (or the connection died).
    complete: Condvar,
}

impl NetShared {
    fn die(&self, why: String) {
        let mut st = self.state.lock().expect("net state");
        if st.dead.is_none() {
            st.dead = Some(why);
        }
        st.in_flight.clear();
        drop(st);
        self.complete.notify_all();
    }
}

/// A pipelined client connection to a [`NetServer`](crate::net::NetServer).
///
/// Cheap to poll, safe to share: submissions lock the write half,
/// completions arrive on a dedicated reader thread and are matched
/// back by correlation id, so many requests ride one connection
/// concurrently and responses may be reaped in any order.
pub struct NetClient {
    writer: Mutex<TcpStream>,
    shared: Arc<NetShared>,
    reader: Option<thread::JoinHandle<()>>,
    next_cid: AtomicU64,
    granted_cap: u32,
}

impl NetClient {
    /// Connects, performs the HELLO handshake for `tenant`, and spawns
    /// the completion reader thread. `in_flight` requests a pipelining
    /// cap (0 = whatever the server grants by default).
    ///
    /// # Errors
    ///
    /// Connection errors, a server that speaks another protocol
    /// version, or a HELLO refusal (e.g. unknown tenant) all surface
    /// as `io::Error`.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        tenant: TenantId,
        in_flight: u32,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = tenant.0.to_le_bytes().to_vec();
        hello.extend_from_slice(&in_flight.to_le_bytes());
        Frame::new(opcode::HELLO, 0, hello).write_to(&mut &stream)?;
        let mut read_half = stream.try_clone()?;
        let reply = Frame::read_from(&mut read_half).map_err(io_protocol)?;
        let granted_cap = match (reply.opcode, reply.payload.as_slice()) {
            (opcode::HELLO_OK, [a, b, c, d]) => u32::from_le_bytes([*a, *b, *c, *d]).max(1),
            (opcode::ERROR, [code]) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("server refused HELLO with error code {code}"),
                ));
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unexpected reply to HELLO",
                ));
            }
        };
        let shared = Arc::new(NetShared {
            state: Mutex::new(NetState {
                in_flight: HashMap::new(),
                done: HashMap::new(),
                latency: LatencyHistogram::new(),
                dead: None,
            }),
            complete: Condvar::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || reader_loop(&mut read_half, &shared))
        };
        Ok(NetClient {
            writer: Mutex::new(stream),
            shared,
            reader: Some(reader),
            next_cid: AtomicU64::new(1),
            granted_cap,
        })
    }

    /// The in-flight cap the server granted at HELLO.
    pub fn granted_in_flight(&self) -> u32 {
        self.granted_cap
    }

    /// Submits a lookup whose response payload should come back over
    /// the wire.
    ///
    /// # Errors
    ///
    /// Fails if the connection has died or the write fails.
    pub fn submit(&self, request: &Request) -> std::io::Result<NetTicket> {
        self.send_lookup(request, 0, 0)
    }

    /// Submits a lookup with a server-side admission deadline.
    ///
    /// # Errors
    ///
    /// Fails if the connection has died or the write fails.
    pub fn submit_with_deadline(
        &self,
        request: &Request,
        deadline: Duration,
    ) -> std::io::Result<NetTicket> {
        self.send_lookup(request, 0, deadline.as_micros().min(u128::from(u64::MAX)) as u64)
    }

    /// Submits a completion-only lookup: the server serves it fully but
    /// the RESPONSE frame carries no payload — the load-generation
    /// mode, where only timing matters.
    ///
    /// # Errors
    ///
    /// Fails if the connection has died or the write fails.
    pub fn submit_discarding(&self, request: &Request) -> std::io::Result<NetTicket> {
        self.send_lookup(request, lookup_flags::NO_PAYLOAD, 0)
    }

    fn send_lookup(
        &self,
        request: &Request,
        flags: u8,
        deadline_us: u64,
    ) -> std::io::Result<NetTicket> {
        let cid = self.next_cid.fetch_add(1, Ordering::Relaxed);
        let payload = encode_lookup_payload(request, flags, deadline_us);
        let bytes = Frame::new(opcode::LOOKUP, cid, payload).encode();
        {
            let mut st = self.shared.state.lock().expect("net state");
            if let Some(why) = &st.dead {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, why.clone()));
            }
            st.in_flight.insert(cid, Instant::now());
        }
        let mut w = self.writer.lock().expect("net writer");
        if let Err(e) = w.write_all(&bytes) {
            self.shared.state.lock().expect("net state").in_flight.remove(&cid);
            return Err(e);
        }
        Ok(NetTicket { cid, shared: Arc::clone(&self.shared) })
    }

    /// Round-trips a PING frame; the returned ticket completes on PONG.
    ///
    /// # Errors
    ///
    /// Fails if the connection has died or the write fails.
    pub fn ping(&self) -> std::io::Result<NetTicket> {
        let cid = self.next_cid.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.shared.state.lock().expect("net state");
            if let Some(why) = &st.dead {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, why.clone()));
            }
            st.in_flight.insert(cid, Instant::now());
        }
        let bytes = Frame::new(opcode::PING, cid, Vec::new()).encode();
        self.writer.lock().expect("net writer").write_all(&bytes)?;
        Ok(NetTicket { cid, shared: Arc::clone(&self.shared) })
    }

    /// Summary of the client-side submit-to-receipt latencies of every
    /// served request so far.
    pub fn latency(&self) -> LatencySummary {
        self.shared.state.lock().expect("net state").latency.summary()
    }

    /// Sends GOODBYE and waits for the server to flush pending
    /// responses and close.
    ///
    /// # Errors
    ///
    /// Propagates the GOODBYE write failure (the reader is still
    /// joined).
    pub fn close(mut self) -> std::io::Result<()> {
        let sent = {
            let mut w = self.writer.lock().expect("net writer");
            Frame::new(opcode::GOODBYE, 0, Vec::new()).write_to(&mut *w)
        };
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        sent
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        if let Some(h) = self.reader.take() {
            // Force the reader out of its blocking read, then reap it.
            if let Ok(w) = self.writer.lock() {
                let _ = w.shutdown(Shutdown::Both);
            }
            let _ = h.join();
        }
    }
}

fn io_protocol(e: frame::FrameError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn reader_loop(stream: &mut TcpStream, shared: &NetShared) {
    loop {
        let frame = match Frame::read_from(stream) {
            Ok(f) => f,
            Err(e) => {
                shared.die(format!("connection lost: {e}"));
                return;
            }
        };
        let cid = frame.correlation_id;
        let response = match frame.opcode {
            opcode::RESPONSE => match decode_response_payload(&frame.payload) {
                Some(parts) => NetResponse { parts, error: None, e2e: Duration::ZERO },
                None => {
                    shared.die("malformed RESPONSE payload".into());
                    return;
                }
            },
            opcode::ERROR => {
                let code = frame.payload.first().copied().unwrap_or(0);
                if cid == 0 {
                    shared.die(format!("server closed the connection: error code {code}"));
                    return;
                }
                NetResponse { parts: Vec::new(), error: Some(code), e2e: Duration::ZERO }
            }
            opcode::PONG => NetResponse { parts: Vec::new(), error: None, e2e: Duration::ZERO },
            _ => {
                shared.die(format!("unexpected opcode {:#x} from server", frame.opcode));
                return;
            }
        };
        let mut st = shared.state.lock().expect("net state");
        // Only completions with a live ticket are kept: a cid absent
        // from `in_flight` belongs to a ticket that was dropped
        // unreaped (its Drop pulled the entry), and storing it would
        // leak `done` entries for the life of the connection.
        let Some(sent) = st.in_flight.remove(&cid) else { continue };
        let mut response = response;
        response.e2e = sent.elapsed();
        if response.error.is_none() && frame.opcode == opcode::RESPONSE {
            st.latency.record(response.e2e);
        }
        st.done.insert(cid, response);
        drop(st);
        shared.complete.notify_all();
    }
}

/// A future for one wire request, matched by correlation id. Reap it
/// with [`NetTicket::try_take`] (non-blocking), [`NetTicket::wait`], or
/// [`NetTicket::wait_timeout`] — in any order relative to other
/// tickets on the same connection.
pub struct NetTicket {
    cid: u64,
    shared: Arc<NetShared>,
}

impl NetTicket {
    /// The request's correlation id on the wire.
    pub fn correlation_id(&self) -> u64 {
        self.cid
    }

    /// Takes the response if it has arrived.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before this request completed.
    pub fn try_take(&mut self) -> std::io::Result<Option<NetResponse>> {
        let mut st = self.shared.state.lock().expect("net state");
        if let Some(r) = st.done.remove(&self.cid) {
            return Ok(Some(r));
        }
        match &st.dead {
            Some(why) => Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, why.clone())),
            None => Ok(None),
        }
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before this request completed.
    pub fn wait(&mut self) -> std::io::Result<NetResponse> {
        let mut st = self.shared.state.lock().expect("net state");
        loop {
            if let Some(r) = st.done.remove(&self.cid) {
                return Ok(r);
            }
            if let Some(why) = &st.dead {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, why.clone()));
            }
            st = self.shared.complete.wait(st).expect("net state");
        }
    }

    /// Blocks until the response arrives or `timeout` elapses
    /// (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// Fails if the connection died before this request completed.
    pub fn wait_timeout(&mut self, timeout: Duration) -> std::io::Result<Option<NetResponse>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("net state");
        loop {
            if let Some(r) = st.done.remove(&self.cid) {
                return Ok(Some(r));
            }
            if let Some(why) = &st.dead {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, why.clone()));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) =
                self.shared.complete.wait_timeout(st, deadline - now).expect("net state");
            st = guard;
        }
    }
}

impl Drop for NetTicket {
    fn drop(&mut self) {
        // An unreaped ticket must not leak its completion: pull the
        // cid from `in_flight` so the reader discards a completion
        // that has not landed yet, and from `done` if it already has.
        let mut st = self.shared.state.lock().expect("net state");
        st.in_flight.remove(&self.cid);
        st.done.remove(&self.cid);
    }
}
