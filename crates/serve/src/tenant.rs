//! Tenant identity, QoS contracts, and the ticket-based client API.
//!
//! A production embedding-serving deployment is shared by many consumers
//! — ranking models, experimentation traffic, backfills — with very
//! different latency contracts. This module gives each of them a first
//! class identity:
//!
//! * [`TenantId`] + [`TenantSpec`] name a tenant and its QoS contract
//!   (DRR weight, strict-priority class, admission quota), registered via
//!   [`ServeConfig::with_tenant`](crate::ServeConfig::with_tenant);
//! * [`Client`] is a tenant's session handle onto a running
//!   [`ShardedEngine`](crate::ShardedEngine): it builds typed requests
//!   ([`RequestBuilder`]) and submits them for completion tickets;
//! * [`ResponseTicket`] is a pollable/waitable future for one in-flight
//!   request, so a single caller thread can keep hundreds of requests in
//!   flight and collect [`Response`]s out of order.
//!
//! Legacy callers keep working: `ShardedEngine::serve`/`submit` delegate
//! to the always-present default tenant ([`TenantId::DEFAULT`], weight 1,
//! normal class, no quota).
//!
//! Tenancy is a first-class observability dimension too: every
//! per-tenant counter here surfaces as a `bandana_tenant_*` series in
//! [`crate::obs::render_prometheus`], flight-recorder events carry the
//! tenant's runtime index as their Chrome-trace `tid`, and control-plane
//! audit entries ([`crate::obs::AuditEvent`]) name the tenant a
//! controller acted on.

use crate::engine::{take_response, Shared};
use crate::hist::LatencySummary;
use bandana_trace::{Request, TableQuery};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Job, ServeError};

/// Identifies a tenant of a [`ShardedEngine`](crate::ShardedEngine).
///
/// Ids are opaque labels chosen by the operator; they do not need to be
/// dense. Id `0` is the **default tenant** that always exists and absorbs
/// legacy `serve`/`submit` traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant legacy `serve`/`submit` traffic is charged to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Strict-priority class of a tenant's traffic.
///
/// Classes are scheduled in strict priority: a shard never serves a
/// [`Normal`](PriorityClass::Normal) request while a
/// [`High`](PriorityClass::High) request is queued, and never serves
/// [`Low`](PriorityClass::Low) while anything else waits. *Within* a
/// class, tenants share capacity by deficit round-robin on their
/// [`TenantSpec::weight`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PriorityClass {
    /// Served before everything else (interactive / SLA traffic).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when no higher class has work (backfills, scans).
    Low,
}

impl PriorityClass {
    /// Scheduling index: `0` is served first.
    pub fn index(self) -> usize {
        match self {
            PriorityClass::High => 0,
            PriorityClass::Normal => 1,
            PriorityClass::Low => 2,
        }
    }
}

impl std::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PriorityClass::High => "high",
            PriorityClass::Normal => "normal",
            PriorityClass::Low => "low",
        };
        write!(f, "{name}")
    }
}

/// A tenant's QoS contract, registered with
/// [`ServeConfig::with_tenant`](crate::ServeConfig::with_tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Deficit-round-robin weight within the tenant's priority class: a
    /// weight-9 tenant sharing a saturated shard with a weight-1 tenant
    /// of the same class completes ~9× as many requests. Must be ≥ 1.
    pub weight: u32,
    /// Strict-priority class (served before lower classes, always).
    pub priority_class: PriorityClass,
    /// Most requests the tenant may have in flight engine-wide;
    /// submissions beyond the quota are shed at admission
    /// ([`ServeError::QuotaExceeded`]) before touching any shard queue.
    /// `None` disables the quota.
    pub admission_quota: Option<u64>,
    /// The tenant's p99 latency budget over the recent window. When the
    /// [`SloController`](crate::control::SloController) is enabled and the
    /// tenant's recent-window p99 exceeds this budget, the tenant is shed
    /// at admission ([`ServeError::SloShed`]) until the window recovers —
    /// requests that would blow the SLO are refused up front instead of
    /// queueing toward a latency nobody can use. `None` exempts the
    /// tenant from SLO shedding.
    pub slo_p99: Option<Duration>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1,
            priority_class: PriorityClass::Normal,
            admission_quota: None,
            slo_p99: None,
        }
    }
}

impl TenantSpec {
    /// A spec with the given DRR weight (normal class, no quota).
    pub fn new(weight: u32) -> Self {
        TenantSpec { weight, ..TenantSpec::default() }
    }

    /// Sets the strict-priority class.
    pub fn with_class(mut self, class: PriorityClass) -> Self {
        self.priority_class = class;
        self
    }

    /// Caps the tenant's in-flight requests engine-wide.
    pub fn with_quota(mut self, max_outstanding: u64) -> Self {
        self.admission_quota = Some(max_outstanding);
        self
    }

    /// Sets the tenant's recent-window p99 budget (enforced by the
    /// [`SloController`](crate::control::SloController) when the engine
    /// runs one; see [`TenantSpec::slo_p99`]).
    pub fn with_slo_p99(mut self, budget: Duration) -> Self {
        self.slo_p99 = Some(budget);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.weight == 0 {
            return Err("tenant weight must be at least 1".into());
        }
        Ok(())
    }
}

/// Why a tenant's requests were shed at admission, broken down by cause
/// so a controller's effect is observable (a spike in `slo` with
/// `lane_full` falling means early SLO shedding is doing its job —
/// refusing doomed work before it occupies a lane).
///
/// `lane_full + quota + slo` always equals the tenant's aggregate
/// [`shed`](TenantMetrics::shed) count; `reclaimed` counts *parts* (not
/// requests) pulled back out of other shards' lanes when a request was
/// shed mid-dispatch, and rides alongside the sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedBreakdown {
    /// Shed because a shard lane was full (or closing during shutdown).
    pub lane_full: u64,
    /// Shed at the engine-wide admission quota
    /// ([`ServeError::QuotaExceeded`]).
    pub quota: u64,
    /// Shed by the SLO controller while the tenant's recent-window p99
    /// exceeded its [`TenantSpec::slo_p99`] budget
    /// ([`ServeError::SloShed`]).
    pub slo: u64,
    /// Already-accepted parts reclaimed from other shards' lanes when a
    /// later shard shed the request (zombie-work cleanup; counts parts,
    /// not requests, so it is not part of the shed sum).
    pub reclaimed: u64,
}

impl ShedBreakdown {
    /// Requests shed across all admission-side causes (equals the
    /// aggregate [`TenantMetrics::shed`]).
    pub fn total(&self) -> u64 {
        self.lane_full + self.quota + self.slo
    }
}

/// One tenant's slice of [`EngineMetrics`](crate::EngineMetrics):
/// admission counters, shed/timeout accounting, and the tenant's own
/// end-to-end latency distributions (lifetime and recent-window).
#[derive(Debug, Clone)]
pub struct TenantMetrics {
    /// The tenant.
    pub id: TenantId,
    /// Registered DRR weight.
    pub weight: u32,
    /// Registered strict-priority class.
    pub priority_class: PriorityClass,
    /// Registered admission quota (`None` = unlimited).
    pub admission_quota: Option<u64>,
    /// Registered recent-window p99 budget (`None` = no SLO).
    pub slo_p99: Option<std::time::Duration>,
    /// Requests this tenant submitted (includes later sheds).
    pub submitted: u64,
    /// Requests shed at admission (quota, a full shard lane, or the SLO
    /// controller); `shed_reasons` splits this total by cause.
    pub shed: u64,
    /// Requests fully served.
    pub completed: u64,
    /// The shed total broken down by cause.
    pub shed_reasons: ShedBreakdown,
    /// Requests abandoned past their deadline.
    pub timed_out: u64,
    /// Requests that hit a store error.
    pub failed: u64,
    /// Requests currently in flight.
    pub outstanding: u64,
    /// Whether the SLO controller is currently shedding this tenant.
    pub slo_shedding: bool,
    /// End-to-end latency of this tenant's completed requests, over the
    /// engine's lifetime.
    pub latency: LatencySummary,
    /// End-to-end latency over the recent window only (the distribution
    /// the [`SloController`](crate::control::SloController) acts on).
    pub recent: LatencySummary,
}

/// Outcome classification carried by a [`Response`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResponseStatus {
    /// Served completely; [`Response::parts`] holds every payload.
    Ok,
    /// The request missed its deadline before serving started; no
    /// payloads.
    TimedOut,
    /// A table/vector reference was invalid or the device failed; no
    /// payloads.
    Failed(bandana_core::BandanaError),
}

impl ResponseStatus {
    /// Whether the request was fully served.
    pub fn is_ok(&self) -> bool {
        matches!(self, ResponseStatus::Ok)
    }
}

/// The typed result of one request, collected through a
/// [`ResponseTicket`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Per-query payloads in request order: `parts[q][i]` is the payload
    /// of `request.queries[q].ids[i]` (duplicates included). Empty unless
    /// [`Response::status`] is [`ResponseStatus::Ok`].
    pub parts: Vec<Vec<Bytes>>,
    /// How the request ended.
    pub status: ResponseStatus,
    /// Submission → completion latency.
    pub e2e: Duration,
    /// Host queue wait (slowest involved shard).
    pub queue_wait: Duration,
    /// Simulated device time charged to the micro-batches that served
    /// this request (slowest involved shard; zero without a device
    /// queue).
    pub device: Duration,
    /// Shard service time (slowest involved shard).
    pub service: Duration,
}

impl Response {
    /// Converts to the legacy `serve()` result shape: payloads on
    /// success, the matching [`ServeError`] otherwise.
    ///
    /// # Errors
    ///
    /// [`ServeError::TimedOut`] or [`ServeError::Store`] per
    /// [`Response::status`].
    pub fn into_parts(self) -> Result<Vec<Vec<Bytes>>, ServeError> {
        match self.status {
            ResponseStatus::Ok => Ok(self.parts),
            ResponseStatus::TimedOut => Err(ServeError::TimedOut),
            ResponseStatus::Failed(e) => Err(ServeError::Store(e)),
            // `ResponseStatus` is non_exhaustive for future shed states.
            #[allow(unreachable_patterns)]
            _ => Err(ServeError::Rejected),
        }
    }
}

/// A pollable/waitable handle to one in-flight request.
///
/// Returned by [`Client::submit`]; backed by the request's completion
/// state inside the engine, so one thread can keep hundreds of requests
/// in flight and collect responses out of order. The response can be
/// taken **exactly once** ([`try_take`](ResponseTicket::try_take) /
/// [`wait`](ResponseTicket::wait) /
/// [`wait_timeout`](ResponseTicket::wait_timeout)); later takes return
/// [`ServeError::TicketTaken`]. Dropping a ticket — taken or not — never
/// blocks and never leaks: the engine completes the request normally and
/// the completion state is freed with its last reference.
pub struct ResponseTicket {
    job: Arc<Job>,
    taken: bool,
}

impl std::fmt::Debug for ResponseTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseTicket")
            .field("complete", &self.is_complete())
            .field("taken", &self.taken)
            .finish()
    }
}

impl ResponseTicket {
    pub(crate) fn new(job: Arc<Job>) -> Self {
        ResponseTicket { job, taken: false }
    }

    /// Whether the request has finished (its response may still be
    /// untaken).
    pub fn is_complete(&self) -> bool {
        self.job.state.lock().expect("job lock").done
    }

    /// Takes the response if the request has finished, without blocking.
    ///
    /// Returns `Ok(None)` while the request is still in flight.
    ///
    /// # Errors
    ///
    /// [`ServeError::TicketTaken`] if the response was already taken.
    pub fn try_take(&mut self) -> Result<Option<Response>, ServeError> {
        if self.taken {
            return Err(ServeError::TicketTaken);
        }
        if !self.is_complete() {
            return Ok(None);
        }
        self.taken = true;
        Ok(Some(take_response(&self.job)))
    }

    /// Blocks until the request finishes and takes the response.
    ///
    /// # Errors
    ///
    /// [`ServeError::TicketTaken`] if the response was already taken.
    pub fn wait(&mut self) -> Result<Response, ServeError> {
        if self.taken {
            return Err(ServeError::TicketTaken);
        }
        {
            let mut st = self.job.state.lock().expect("job lock");
            while !st.done {
                st = self.job.done_cv.wait(st).expect("job lock");
            }
        }
        self.taken = true;
        Ok(take_response(&self.job))
    }

    /// Blocks up to `timeout` for the request to finish.
    ///
    /// Returns `Ok(None)` on expiry; the ticket stays live and the
    /// response can still be taken later.
    ///
    /// # Errors
    ///
    /// [`ServeError::TicketTaken`] if the response was already taken.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<Response>, ServeError> {
        if self.taken {
            return Err(ServeError::TicketTaken);
        }
        let deadline = std::time::Instant::now() + timeout;
        {
            let mut st = self.job.state.lock().expect("job lock");
            while !st.done {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    return Ok(None);
                }
                let (next, _) = self.job.done_cv.wait_timeout(st, left).expect("job lock");
                st = next;
            }
        }
        self.taken = true;
        Ok(Some(take_response(&self.job)))
    }
}

/// A tenant's session handle onto a running
/// [`ShardedEngine`](crate::ShardedEngine).
///
/// Created by [`ShardedEngine::client`](crate::ShardedEngine::client);
/// cheap to clone and safe to share across threads. The client holds the
/// engine's shared state alive, but submissions fail with
/// [`ServeError::ShuttingDown`] once the engine shuts down.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    tenant: usize,
}

impl Client {
    pub(crate) fn new(shared: Arc<Shared>, tenant: usize) -> Self {
        Client { shared, tenant }
    }

    /// The tenant this client submits as.
    pub fn tenant(&self) -> TenantId {
        self.shared.tenant_id(self.tenant)
    }

    /// Starts a typed request.
    pub fn request(&self) -> RequestBuilder<'_> {
        RequestBuilder { client: self, request: Request::default(), deadline: None }
    }

    /// Submits a request and returns its completion ticket (payloads are
    /// retained until the ticket takes them).
    ///
    /// # Errors
    ///
    /// [`ServeError::QuotaExceeded`] past the tenant's admission quota,
    /// [`ServeError::Rejected`] when a shard lane is full under
    /// [`ShedPolicy::DropNewest`](crate::ShedPolicy::DropNewest),
    /// [`ServeError::Store`] for unknown tables, and
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: &Request) -> Result<ResponseTicket, ServeError> {
        self.submit_with_deadline(request, None)
    }

    /// As [`Client::submit`], with a per-request deadline overriding the
    /// engine's [`request_timeout`](crate::ServeConfig::request_timeout).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_with_deadline(
        &self,
        request: &Request,
        deadline: Option<Duration>,
    ) -> Result<ResponseTicket, ServeError> {
        let job = self.shared.enqueue(request, true, self.tenant, deadline)?;
        Ok(ResponseTicket::new(job))
    }

    /// Submits a request for a **completion-only** ticket: the
    /// [`Response`] carries status, latency, and breakdown but empty
    /// payload parts, and the shard workers skip payload retention
    /// entirely — the same hot path as the legacy fire-and-forget
    /// [`submit`](crate::ShardedEngine::submit), with a waitable handle.
    /// This is the open-loop load generator's mode: it needs to know
    /// *when* requests finish, never *what* they returned.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_discarding(&self, request: &Request) -> Result<ResponseTicket, ServeError> {
        let job = self.shared.enqueue(request, false, self.tenant, None)?;
        Ok(ResponseTicket::new(job))
    }

    /// Submits and waits: the closed-loop convenience
    /// (`submit` + [`ResponseTicket::wait`]).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn call(&self, request: &Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// This tenant's current metrics slice.
    pub fn metrics(&self) -> TenantMetrics {
        self.shared.tenant_metrics(self.tenant)
    }
}

/// Builds one typed request for a [`Client`]: per-table key lists plus an
/// optional per-request deadline.
///
/// ```no_run
/// # fn demo(client: &bandana_serve::Client) -> Result<(), bandana_serve::ServeError> {
/// let ticket = client
///     .request()
///     .keys(0, &[3, 7, 9])
///     .keys(2, &[11])
///     .deadline(std::time::Duration::from_millis(5))
///     .submit()?;
/// # let _ = ticket;
/// # Ok(())
/// # }
/// ```
pub struct RequestBuilder<'c> {
    client: &'c Client,
    request: Request,
    deadline: Option<Duration>,
}

impl std::fmt::Debug for RequestBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestBuilder")
            .field("tenant", &self.client.tenant())
            .field("request", &self.request)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl RequestBuilder<'_> {
    /// Appends lookups against `table` (repeated calls for the same table
    /// extend its key list — a request holds at most one query per
    /// table).
    pub fn keys(mut self, table: usize, ids: &[u32]) -> Self {
        match self.request.queries.iter_mut().find(|q| q.table == table) {
            Some(q) => q.ids.extend_from_slice(ids),
            None => self.request.queries.push(TableQuery::new(table, ids.to_vec())),
        }
        self
    }

    /// Appends one lookup against `table`.
    pub fn key(self, table: usize, id: u32) -> Self {
        self.keys(table, &[id])
    }

    /// Sets a per-request deadline, overriding the engine's global
    /// [`request_timeout`](crate::ServeConfig::request_timeout).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The request built so far.
    pub fn as_request(&self) -> &Request {
        &self.request
    }

    /// Submits the request, returning its completion ticket.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit(self) -> Result<ResponseTicket, ServeError> {
        self.client.submit_with_deadline(&self.request, self.deadline)
    }

    /// Submits and waits for the typed response.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn call(self) -> Result<Response, ServeError> {
        self.submit()?.wait()
    }
}
