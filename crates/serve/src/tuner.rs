//! Background admission-threshold re-tuning from live traffic.
//!
//! The paper's miniature caches are cheap enough to run *online*
//! (§4.3.3): shadow the live lookup stream through per-table simulators
//! and periodically adopt the best-performing admission threshold. In the
//! sharded engine this runs as one background thread: shard workers send
//! a sampled stream of `(table, vector)` observations over a bounded
//! channel (overflow is dropped — sampling is lossy by design, exactly
//! like the paper's 0.1% sampling rate), the tuner drives one
//! [`OnlineTuner`] per table, and every epoch decision is hot-swapped
//! into the owning shard through its command channel, where the worker
//! applies it between requests via
//! [`TableStore::set_policy`](bandana_core::TableStore::set_policy).

use crate::engine::ShardCommand;
use bandana_cache::AdmissionPolicy;
use bandana_core::{OnlineTuner, OnlineTunerConfig};
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::time::Duration;

/// Configuration of the background tuner thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTunerSettings {
    /// Observed (sampled) lookups per tuning epoch, per table.
    pub epoch_lookups: u64,
    /// Shard-side sampling stride: every `sample_every`-th lookup is
    /// forwarded to the tuner (1 = every lookup).
    pub sample_every: u32,
    /// Candidate admission thresholds to race.
    pub candidate_thresholds: Vec<u32>,
    /// Miniature-cache sampling rate inside the tuner.
    pub sampling_rate: f64,
    /// Hash salt.
    pub salt: u64,
}

impl Default for OnlineTunerSettings {
    fn default() -> Self {
        OnlineTunerSettings {
            epoch_lookups: 10_000,
            sample_every: 1,
            candidate_thresholds: vec![1, 2, 5, 10, 20],
            sampling_rate: 0.25,
            salt: 0,
        }
    }
}

impl OnlineTunerSettings {
    /// Validates the settings.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_lookups == 0 {
            return Err("tuner epoch must be non-empty".into());
        }
        if self.sample_every == 0 {
            return Err("sample stride must be at least 1".into());
        }
        if self.candidate_thresholds.is_empty() {
            return Err("tuner needs candidate thresholds".into());
        }
        if !(0.0 < self.sampling_rate && self.sampling_rate <= 1.0) {
            return Err(format!("tuner sampling rate {} outside (0,1]", self.sampling_rate));
        }
        Ok(())
    }
}

/// Per-table inputs harvested from the store before its tables moved into
/// the shard threads.
#[derive(Debug)]
pub(crate) struct TunerTable {
    pub(crate) table: usize,
    pub(crate) layout: BlockLayout,
    pub(crate) freq: AccessFrequency,
    pub(crate) cache_capacity: usize,
}

/// The tuner thread body. Exits when every sample sender disconnects
/// (i.e. all shard workers stopped) or `should_stop` turns true.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tuner_main(
    tables: Vec<TunerTable>,
    settings: OnlineTunerSettings,
    shard_of: Vec<usize>,
    commands: Vec<mpsc::Sender<ShardCommand>>,
    samples: mpsc::Receiver<(usize, u32)>,
    shadow_multiplier: f64,
    on_swap: impl Fn(),
    should_stop: impl Fn() -> bool,
) {
    // `tuners` borrows `tables`; both live to the end of this frame.
    let mut tuners: Vec<OnlineTuner<'_>> = tables
        .iter()
        .map(|t| {
            OnlineTuner::new(
                &t.layout,
                &t.freq,
                OnlineTunerConfig {
                    cache_capacity: t.cache_capacity.max(1),
                    sampling_rate: settings.sampling_rate,
                    candidate_thresholds: settings.candidate_thresholds.clone(),
                    epoch_lookups: settings.epoch_lookups,
                    salt: settings.salt.wrapping_add(t.table as u64),
                },
            )
        })
        .collect();

    while !should_stop() {
        match samples.recv_timeout(Duration::from_millis(20)) {
            Ok(first) => {
                // Batch-drain: shards produce samples much faster than one
                // observation per wakeup could absorb.
                let mut pending = Some(first);
                while let Some((table, v)) = pending {
                    if let Some(tuner) = tuners.get_mut(table) {
                        if let Some(decision) = tuner.observe(v) {
                            let policy = AdmissionPolicy::Threshold { t: decision.threshold };
                            let shard = shard_of[table];
                            if commands[shard]
                                .send(ShardCommand::SetPolicy { table, policy, shadow_multiplier })
                                .is_ok()
                            {
                                on_swap();
                            }
                        }
                    }
                    pending = samples.try_recv().ok();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_validation() {
        assert!(OnlineTunerSettings::default().validate().is_ok());
        assert!(OnlineTunerSettings { epoch_lookups: 0, ..Default::default() }.validate().is_err());
        assert!(OnlineTunerSettings { sample_every: 0, ..Default::default() }.validate().is_err());
        assert!(OnlineTunerSettings { candidate_thresholds: vec![], ..Default::default() }
            .validate()
            .is_err());
        assert!(OnlineTunerSettings { sampling_rate: 0.0, ..Default::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn tuner_thread_emits_policy_swaps() {
        let n = 256u32;
        let layout = BlockLayout::identity(n, 32);
        let hot: Vec<Vec<u32>> = (0..50).map(|_| (0..16u32).collect()).collect();
        let freq = AccessFrequency::from_queries(n, hot.iter().map(|q| q.as_slice()));
        let tables = vec![TunerTable { table: 0, layout, freq, cache_capacity: 64 }];

        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (sample_tx, sample_rx) = mpsc::sync_channel(1024);
        let swaps = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let swaps2 = std::sync::Arc::clone(&swaps);

        let settings = OnlineTunerSettings {
            epoch_lookups: 100,
            sampling_rate: 1.0,
            candidate_thresholds: vec![2, 1_000],
            ..Default::default()
        };
        let handle = std::thread::spawn(move || {
            tuner_main(
                tables,
                settings,
                vec![0],
                vec![cmd_tx],
                sample_rx,
                1.5,
                move || {
                    swaps2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                },
                || false,
            )
        });
        // Feed a hot scan: two full epochs.
        for i in 0..200u32 {
            sample_tx.send((0, i % 16)).expect("send sample");
        }
        drop(sample_tx); // disconnect → tuner exits after draining
        handle.join().expect("tuner thread");
        let cmds: Vec<_> = cmd_rx.try_iter().collect();
        assert_eq!(cmds.len(), 2, "one swap per epoch");
        assert_eq!(swaps.load(std::sync::atomic::Ordering::Relaxed), 2);
        for cmd in cmds {
            let ShardCommand::SetPolicy { table, policy, .. } = cmd;
            assert_eq!(table, 0);
            assert_eq!(policy, AdmissionPolicy::Threshold { t: 2 });
        }
    }
}
