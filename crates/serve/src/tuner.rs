//! The online admission-threshold tuner, re-homed as the first
//! [`Controller`] on the engine's metrics
//! bus.
//!
//! The paper's miniature caches are cheap enough to run *online*
//! (§4.3.3): shadow the live lookup stream through per-table simulators
//! and periodically adopt the best-performing admission threshold. In the
//! control plane this is `TunerController`: shard workers send a
//! sampled stream of `(table, vector)` observations over a bounded
//! channel (overflow is dropped — sampling is lossy by design, exactly
//! like the paper's 0.1% sampling rate), and each bus tick the controller
//! drains the channel into one [`OnlineTuner`] per table, returning an
//! [`Action::SetPolicy`] per epoch
//! decision. The bus routes the action to the owning shard's command
//! channel, where the worker applies it between micro-batches via
//! [`TableStore::set_policy`](bandana_core::TableStore::set_policy).
//!
//! Before the control plane existed this logic ran as a dedicated
//! hard-wired thread; its observable behaviour — one hot-swap per
//! completed epoch per table — is unchanged and pinned by the engine's
//! tuner hot-swap test.

use crate::control::{Action, Controller, EngineSnapshot};
use bandana_cache::AdmissionPolicy;
use bandana_core::{OnlineTuner, OnlineTunerConfig};
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;

/// Configuration of the online tuner controller
/// ([`ServeConfig::with_tuner`](crate::ServeConfig::with_tuner)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTunerSettings {
    /// Observed (sampled) lookups per tuning epoch, per table.
    pub epoch_lookups: u64,
    /// Shard-side sampling stride: every `sample_every`-th lookup is
    /// forwarded to the tuner (1 = every lookup).
    pub sample_every: u32,
    /// Candidate admission thresholds to race.
    pub candidate_thresholds: Vec<u32>,
    /// Miniature-cache sampling rate inside the tuner.
    pub sampling_rate: f64,
    /// Hash salt.
    pub salt: u64,
}

impl Default for OnlineTunerSettings {
    fn default() -> Self {
        OnlineTunerSettings {
            epoch_lookups: 10_000,
            sample_every: 1,
            candidate_thresholds: vec![1, 2, 5, 10, 20],
            sampling_rate: 0.25,
            salt: 0,
        }
    }
}

impl OnlineTunerSettings {
    /// Validates the settings.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_lookups == 0 {
            return Err("tuner epoch must be non-empty".into());
        }
        if self.sample_every == 0 {
            return Err("sample stride must be at least 1".into());
        }
        if self.candidate_thresholds.is_empty() {
            return Err("tuner needs candidate thresholds".into());
        }
        if !(0.0 < self.sampling_rate && self.sampling_rate <= 1.0) {
            return Err(format!("tuner sampling rate {} outside (0,1]", self.sampling_rate));
        }
        Ok(())
    }
}

/// Per-table inputs harvested from the store before its tables moved into
/// the shard threads; the controller's [`OnlineTuner`]s borrow them for
/// the control thread's lifetime.
#[derive(Debug)]
pub(crate) struct TunerTable {
    pub(crate) table: usize,
    pub(crate) layout: BlockLayout,
    pub(crate) freq: AccessFrequency,
    pub(crate) cache_capacity: usize,
}

/// The paper's online re-tuning loop as a metrics-bus controller: drains
/// the shard sample channel each tick and emits one
/// [`Action::SetPolicy`] per completed tuning epoch per table.
pub(crate) struct TunerController<'a> {
    tuners: Vec<OnlineTuner<'a>>,
    samples: mpsc::Receiver<(usize, u32)>,
    shadow_multiplier: f64,
}

impl<'a> TunerController<'a> {
    pub(crate) fn new(
        tables: &'a [TunerTable],
        settings: &OnlineTunerSettings,
        samples: mpsc::Receiver<(usize, u32)>,
        shadow_multiplier: f64,
    ) -> Self {
        let tuners = tables
            .iter()
            .map(|t| {
                OnlineTuner::new(
                    &t.layout,
                    &t.freq,
                    OnlineTunerConfig {
                        cache_capacity: t.cache_capacity.max(1),
                        sampling_rate: settings.sampling_rate,
                        candidate_thresholds: settings.candidate_thresholds.clone(),
                        epoch_lookups: settings.epoch_lookups,
                        salt: settings.salt.wrapping_add(t.table as u64),
                    },
                )
            })
            .collect();
        TunerController { tuners, samples, shadow_multiplier }
    }

    /// Feeds one sampled lookup to its table's tuner; a completed epoch
    /// becomes a policy hot-swap action. Tables are positioned by id in
    /// the tuner vector (the engine harvests every table in id order).
    fn ingest(&mut self, table: usize, v: u32, actions: &mut Vec<Action>) {
        if let Some(tuner) = self.tuners.get_mut(table) {
            if let Some(decision) = tuner.observe(v) {
                actions.push(Action::SetPolicy {
                    table,
                    policy: AdmissionPolicy::Threshold { t: decision.threshold },
                    shadow_multiplier: self.shadow_multiplier,
                });
            }
        }
    }
}

/// Most samples the tuner absorbs per bus tick. The drain MUST be
/// bounded: under sustained load the shards refill the channel as fast
/// as it drains, and an unbounded `try_recv` loop would never return —
/// wedging the shared control loop (and every controller behind it) for
/// as long as the overload lasts. Whatever exceeds the bound overflows
/// the channel and is dropped, which is fine: the sample stream is lossy
/// by design, exactly like the paper's 0.1% sampling rate.
const MAX_SAMPLES_PER_TICK: usize = 4096;

impl Controller for TunerController<'_> {
    fn name(&self) -> &str {
        "online-tuner"
    }

    fn observe(&mut self, _snapshot: &EngineSnapshot) -> Vec<Action> {
        // Bounded batch-drain of the sample channel. A disconnected
        // channel (all workers exited) just yields empty drains until
        // the bus shuts down.
        let mut actions = Vec::new();
        for _ in 0..MAX_SAMPLES_PER_TICK {
            match self.samples.try_recv() {
                Ok((table, v)) => self.ingest(table, v, &mut actions),
                Err(_) => break,
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::EngineSnapshot;
    use std::time::Duration;

    #[test]
    fn settings_validation() {
        assert!(OnlineTunerSettings::default().validate().is_ok());
        assert!(OnlineTunerSettings { epoch_lookups: 0, ..Default::default() }.validate().is_err());
        assert!(OnlineTunerSettings { sample_every: 0, ..Default::default() }.validate().is_err());
        assert!(OnlineTunerSettings { candidate_thresholds: vec![], ..Default::default() }
            .validate()
            .is_err());
        assert!(OnlineTunerSettings { sampling_rate: 0.0, ..Default::default() }
            .validate()
            .is_err());
    }

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            tick: 0,
            uptime: Duration::ZERO,
            window_span: Duration::from_millis(400),
            batch_window: Duration::ZERO,
            shards: Vec::new(),
            tenants: Vec::new(),
            cache_partition: Vec::new(),
        }
    }

    #[test]
    fn tuner_controller_emits_one_policy_swap_per_epoch() {
        let n = 256u32;
        let layout = BlockLayout::identity(n, 32);
        let hot: Vec<Vec<u32>> = (0..50).map(|_| (0..16u32).collect()).collect();
        let freq = AccessFrequency::from_queries(n, hot.iter().map(|q| q.as_slice()));
        let tables = vec![TunerTable { table: 0, layout, freq, cache_capacity: 64 }];

        let (sample_tx, sample_rx) = mpsc::sync_channel(1024);
        let settings = OnlineTunerSettings {
            epoch_lookups: 100,
            sampling_rate: 1.0,
            candidate_thresholds: vec![2, 1_000],
            ..Default::default()
        };
        let mut controller = TunerController::new(&tables, &settings, sample_rx, 1.5);
        assert_eq!(controller.name(), "online-tuner");

        // Feed a hot scan: two full epochs, in two tick-sized pulses.
        let snapshot = empty_snapshot();
        for i in 0..150u32 {
            sample_tx.send((0, i % 16)).expect("send sample");
        }
        let first = controller.observe(&snapshot);
        assert_eq!(first.len(), 1, "one swap for the one completed epoch: {first:?}");
        for i in 0..50u32 {
            sample_tx.send((0, i % 16)).expect("send sample");
        }
        let second = controller.observe(&snapshot);
        assert_eq!(second.len(), 1, "the second epoch completes on the next drain");
        for action in first.into_iter().chain(second) {
            match action {
                Action::SetPolicy { table, policy, shadow_multiplier } => {
                    assert_eq!(table, 0);
                    assert_eq!(policy, AdmissionPolicy::Threshold { t: 2 });
                    assert!((shadow_multiplier - 1.5).abs() < 1e-12);
                }
                other => panic!("tuner must only emit policy swaps, got {other:?}"),
            }
        }

        // A disconnected channel yields quiet drains, not panics.
        drop(sample_tx);
        assert!(controller.observe(&snapshot).is_empty());

        // Samples for unknown tables are ignored.
        let (tx, rx) = mpsc::sync_channel(16);
        let tables2 = Vec::new();
        let mut empty_controller = TunerController::new(&tables2, &settings, rx, 1.0);
        tx.send((7, 3)).expect("send");
        assert!(empty_controller.observe(&snapshot).is_empty());
    }
}
