//! Bounded per-shard work queues with an explicit overload policy.
//!
//! An open-loop arrival process does not slow down when the server falls
//! behind, so a production engine must decide what to do when a shard's
//! queue is full: block the producer (closed-loop semantics, useful for
//! capacity measurement) or shed the request and count it (open-loop
//! semantics — latency of *accepted* requests stays bounded and the drop
//! counter becomes the overload signal).
//!
//! Two queues live here: the plain FIFO [`BoundedQueue`], and the
//! tenant-aware [`WeightedQueue`] the engine's shards actually drain — a
//! set of per-tenant bounded lanes scheduled by **strict priority across
//! classes** and **deficit round-robin (DRR) within a class**, so one
//! tenant's backlog cannot starve another's and capacity under overload
//! divides by the registered weights.
//!
//! The queues are observable from outside: every accepted lane push on a
//! flight-recorder-sampled request is stamped as a `lane-enqueued`
//! lifecycle event ([`crate::obs::TraceEventKind::LaneEnqueued`]), and
//! live lane depths are exported per shard/lane as the
//! `bandana_lane_depth` series by [`crate::obs::render_prometheus`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full queue does with a new request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the submitter until space frees up (never sheds).
    #[default]
    Block,
    /// Reject the incoming request immediately (counted as shed).
    DropNewest,
}

/// Result of [`BoundedQueue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// The item was enqueued.
    Accepted,
    /// The queue was full and the policy shed the item.
    Dropped(T),
    /// The queue is closed; the item is returned.
    Closed(T),
}

/// Result of [`BoundedQueue::pop_timeout`].
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty.
    Empty,
    /// The queue is closed and drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPSC queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, applying `policy` when the queue is full.
    pub fn push(&self, item: T, policy: ShedPolicy) -> Push<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Push::Closed(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Push::Accepted;
            }
            match policy {
                ShedPolicy::DropNewest => return Push::Dropped(item),
                ShedPolicy::Block => {
                    st = self.not_full.wait(st).expect("queue lock");
                }
            }
        }
    }

    /// Dequeues one item, waiting up to `timeout` for work. A closed queue
    /// still drains its remaining items before reporting [`Pop::Closed`].
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.state.lock().expect("queue lock");
        if let Some(item) = st.items.pop_front() {
            drop(st);
            self.not_full.notify_one();
            return Pop::Item(item);
        }
        if st.closed {
            return Pop::Closed;
        }
        let (mut st, _timed_out) = self.not_empty.wait_timeout(st, timeout).expect("queue lock");
        match st.items.pop_front() {
            Some(item) => {
                drop(st);
                self.not_full.notify_one();
                Pop::Item(item)
            }
            None if st.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Dequeues up to `max` items as one micro-batch: waits up to
    /// `first_timeout` for the first item, then keeps the batch open for
    /// `window` from that moment, absorbing arrivals until the window
    /// elapses or the batch is full.
    ///
    /// With `max <= 1` or a zero `window` this degenerates to
    /// [`BoundedQueue::pop_timeout`] semantics (one item, no extra wait) —
    /// the backward-compatible single-read path. A closed queue still
    /// drains its remaining items (the window is skipped) before reporting
    /// [`Pop::Closed`].
    pub fn pop_batch(&self, first_timeout: Duration, window: Duration, max: usize) -> Pop<Vec<T>> {
        let max = max.max(1);
        let mut batch = Vec::new();
        let mut st = self.state.lock().expect("queue lock");
        // Phase 1: wait for the first item.
        if st.items.is_empty() {
            if st.closed {
                return Pop::Closed;
            }
            let (next, _) = self.not_empty.wait_timeout(st, first_timeout).expect("queue lock");
            st = next;
            if st.items.is_empty() {
                return if st.closed { Pop::Closed } else { Pop::Empty };
            }
        }
        // Phase 2: keep the window open until the batch fills. Producers
        // blocked on a full queue are woken as soon as their slots free
        // up — before the window wait — so their requests can still join
        // the batch being assembled.
        let deadline = Instant::now() + window;
        loop {
            let before = batch.len();
            while batch.len() < max {
                match st.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            for _ in before..batch.len() {
                self.not_full.notify_one();
            }
            if batch.len() >= max || st.closed || window.is_zero() {
                break;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, _) = self.not_empty.wait_timeout(st, left).expect("queue lock");
            st = next;
        }
        Pop::Item(batch)
    }

    /// Closes the queue: pushes are rejected, pops drain and then report
    /// closure, and all waiters wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// One tenant lane's scheduling parameters inside a [`WeightedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpec {
    /// DRR weight within the lane's class (≥ 1): per scheduling round a
    /// backlogged lane earns `weight` units of service.
    pub weight: u64,
    /// Strict-priority class index; class `0` is served first and lower
    /// classes only run when every higher class is empty.
    pub class: usize,
}

struct Lane<T> {
    items: VecDeque<T>,
    weight: u64,
    /// Unspent DRR credit, carried while the lane stays backlogged and
    /// reset to zero whenever the lane empties.
    deficit: u64,
    shed: u64,
    /// This lane's live capacity; starts at the queue-wide default and can
    /// be retuned at runtime ([`WeightedQueue::set_lane_capacity`]).
    cap: usize,
}

struct WqState<T> {
    lanes: Vec<Lane<T>>,
    /// Lane indices grouped by class, ascending class order. Lives under
    /// the state lock so lanes can be added at runtime
    /// ([`WeightedQueue::add_lane`]) without racing the drain path.
    class_lanes: Vec<Vec<usize>>,
    /// Per-class round-robin cursor into `class_lanes`.
    cursors: Vec<usize>,
    /// A lane interrupted mid-quantum by a full batch; it resumes
    /// spending its remaining deficit before the round continues, so
    /// small batches cannot collapse weighted shares to visit counts.
    resume: Option<usize>,
    len: usize,
    closed: bool,
}

/// The highest-priority class with queued work.
fn top_class<T>(class_lanes: &[Vec<usize>], lanes: &[Lane<T>]) -> Option<usize> {
    (0..class_lanes.len()).find(|&c| class_lanes[c].iter().any(|&l| !lanes[l].items.is_empty()))
}

/// The class a lane belongs to.
fn class_of(class_lanes: &[Vec<usize>], lane: usize) -> usize {
    class_lanes.iter().position(|lanes| lanes.contains(&lane)).expect("every lane has a class")
}

/// A multi-lane MPSC queue: one bounded FIFO lane per tenant, drained by
/// strict priority across classes and deficit round-robin within a class.
///
/// Scheduling invariants:
///
/// * **Strict priority** — no item of class `c` is popped while any lane
///   of a class `< c` has items.
/// * **No starvation within a class** — every scheduling round grants
///   each backlogged lane of the serving class one quantum (its weight),
///   so every nonempty lane is visited each round.
/// * **Weighted shares** — with all lanes of a class permanently
///   backlogged, popped items divide in proportion to the lane weights
///   (deficits carry across batch boundaries, so the property holds for
///   any `pop_batch` size, including 1).
///
/// Overload is per lane: a full lane sheds (or blocks) only its own
/// tenant's submissions, counted in [`WeightedQueue::shed_counts`].
pub struct WeightedQueue<T> {
    state: Mutex<WqState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    lane_capacity: usize,
}

impl<T> WeightedQueue<T> {
    /// Creates a queue with one lane per spec, each holding at most
    /// `lane_capacity` items.
    ///
    /// # Panics
    ///
    /// Panics on an empty spec list, a zero capacity, or a zero weight.
    pub fn new(lanes: &[LaneSpec], lane_capacity: usize) -> Self {
        assert!(!lanes.is_empty(), "need at least one lane");
        assert!(lane_capacity > 0, "lane capacity must be non-zero");
        let num_classes = lanes.iter().map(|l| l.class + 1).max().unwrap_or(1);
        let mut class_lanes: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (i, spec) in lanes.iter().enumerate() {
            assert!(spec.weight > 0, "lane weight must be at least 1");
            class_lanes[spec.class].push(i);
        }
        WeightedQueue {
            state: Mutex::new(WqState {
                lanes: lanes
                    .iter()
                    .map(|l| Lane {
                        items: VecDeque::new(),
                        weight: l.weight,
                        deficit: 0,
                        shed: 0,
                        cap: lane_capacity,
                    })
                    .collect(),
                class_lanes,
                cursors: vec![0; num_classes],
                resume: None,
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            lane_capacity,
        }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.state.lock().expect("queue lock").lanes.len()
    }

    /// Appends a new lane at runtime and returns its index.
    ///
    /// The lane starts empty with the queue-wide default capacity
    /// ([`WeightedQueue::lane_capacity`]) and joins scheduling
    /// immediately: strict priority places it by `spec.class` (a class
    /// index beyond the current highest extends the class table) and DRR
    /// grants it `spec.weight` per round once it is backlogged. Existing
    /// lanes, queued items, and in-progress quanta are untouched — this
    /// is the live tenant-registration path, taken while shard workers
    /// keep draining.
    ///
    /// # Panics
    ///
    /// Panics if `spec.weight` is zero.
    pub fn add_lane(&self, spec: LaneSpec) -> usize {
        assert!(spec.weight > 0, "lane weight must be at least 1");
        let mut st = self.state.lock().expect("queue lock");
        let index = st.lanes.len();
        st.lanes.push(Lane {
            items: VecDeque::new(),
            weight: spec.weight,
            deficit: 0,
            shed: 0,
            cap: self.lane_capacity,
        });
        if st.class_lanes.len() <= spec.class {
            let classes = spec.class + 1;
            st.class_lanes.resize_with(classes, Vec::new);
            st.cursors.resize(classes, 0);
        }
        st.class_lanes[spec.class].push(index);
        index
    }

    /// The per-lane capacity the queue was created with (lanes can be
    /// retuned individually afterwards; see
    /// [`WeightedQueue::set_lane_capacity`]).
    pub fn lane_capacity(&self) -> usize {
        self.lane_capacity
    }

    /// One lane's live capacity.
    pub fn lane_cap(&self, lane: usize) -> usize {
        self.state.lock().expect("queue lock").lanes[lane].cap
    }

    /// Retunes one lane's capacity at runtime (a control-plane action: a
    /// controller can widen a starved tenant's lane or squeeze an abusive
    /// one without rebuilding the engine). Shrinking below the current
    /// depth sheds nothing — queued items stay, new pushes are refused
    /// until the lane drains under the new cap. Growing wakes blocked
    /// producers so they can use the fresh slots.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_lane_capacity(&self, lane: usize, cap: usize) {
        assert!(cap > 0, "lane capacity must be non-zero");
        let mut st = self.state.lock().expect("queue lock");
        let grew = cap > st.lanes[lane].cap;
        st.lanes[lane].cap = cap;
        drop(st);
        if grew {
            self.not_full.notify_all();
        }
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").len
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current depth of one lane.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.state.lock().expect("queue lock").lanes[lane].items.len()
    }

    /// Every lane's current depth under one lock (a consistent snapshot
    /// for the metrics bus).
    pub fn lane_lens(&self) -> Vec<usize> {
        self.state.lock().expect("queue lock").lanes.iter().map(|l| l.items.len()).collect()
    }

    /// Items shed per lane (full lane under
    /// [`ShedPolicy::DropNewest`]) since creation.
    pub fn shed_counts(&self) -> Vec<u64> {
        self.state.lock().expect("queue lock").lanes.iter().map(|l| l.shed).collect()
    }

    /// Enqueues `item` onto `lane`, applying `policy` when that lane is
    /// full. Other tenants' lanes are unaffected either way.
    pub fn push(&self, lane: usize, item: T, policy: ShedPolicy) -> Push<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Push::Closed(item);
            }
            if st.lanes[lane].items.len() < st.lanes[lane].cap {
                st.lanes[lane].items.push_back(item);
                st.len += 1;
                drop(st);
                self.not_empty.notify_one();
                return Push::Accepted;
            }
            match policy {
                ShedPolicy::DropNewest => {
                    st.lanes[lane].shed += 1;
                    return Push::Dropped(item);
                }
                ShedPolicy::Block => {
                    st = self.not_full.wait(st).expect("queue lock");
                }
            }
        }
    }

    /// Pops up to `max` items into `batch` by strict priority + DRR.
    fn drain_locked(&self, st: &mut WqState<T>, batch: &mut Vec<T>, max: usize) {
        // Split the state borrow so the class table can be read while
        // lanes are drained.
        let WqState { lanes: all_lanes, class_lanes, cursors, resume, len, .. } = st;
        while batch.len() < max && *len > 0 {
            let class = top_class(class_lanes, all_lanes).expect("len > 0 implies a nonempty lane");
            // Strict priority preempts an interrupted quantum from a lower
            // class; the lane keeps its deficit and is re-granted a
            // quantum when its class is served again.
            if let Some(li) = *resume {
                if class_of(class_lanes, li) != class {
                    *resume = None;
                }
            }
            // Finish an interrupted quantum before the round continues.
            if let Some(li) = *resume {
                let space = (max - batch.len()) as u64;
                let lane = &mut all_lanes[li];
                let take = lane.deficit.min(lane.items.len() as u64).min(space);
                for _ in 0..take {
                    batch.push(lane.items.pop_front().expect("resume lane is nonempty"));
                }
                *len -= take as usize;
                lane.deficit -= take;
                if lane.items.is_empty() {
                    lane.deficit = 0;
                }
                if lane.deficit == 0 || lane.items.is_empty() {
                    *resume = None;
                }
                if batch.len() >= max {
                    return;
                }
                continue;
            }
            // One DRR round over the class: every backlogged lane earns
            // its weight and spends what the batch can hold.
            let lanes = &class_lanes[class];
            let n = lanes.len();
            let start = cursors[class] % n;
            for step in 0..n {
                let pos = (start + step) % n;
                let li = lanes[pos];
                let lane = &mut all_lanes[li];
                if lane.items.is_empty() {
                    lane.deficit = 0;
                    continue;
                }
                lane.deficit += lane.weight;
                let space = (max - batch.len()) as u64;
                let take = lane.deficit.min(lane.items.len() as u64).min(space);
                for _ in 0..take {
                    batch.push(lane.items.pop_front().expect("lane checked nonempty"));
                }
                *len -= take as usize;
                lane.deficit -= take;
                if lane.items.is_empty() {
                    lane.deficit = 0;
                }
                if batch.len() >= max {
                    // Resume the unspent quantum first next time, then
                    // continue the round at the following lane.
                    if lane.deficit > 0 && !lane.items.is_empty() {
                        *resume = Some(li);
                    }
                    cursors[class] = (pos + 1) % n;
                    return;
                }
            }
            cursors[class] = start;
        }
    }

    /// Dequeues up to `max` items as one micro-batch, exactly like
    /// [`BoundedQueue::pop_batch`] but scheduled across lanes: waits up
    /// to `first_timeout` for the first item, then keeps the batch open
    /// for `window` from that moment. A closed queue still drains its
    /// remaining items before reporting [`Pop::Closed`].
    pub fn pop_batch(&self, first_timeout: Duration, window: Duration, max: usize) -> Pop<Vec<T>> {
        let max = max.max(1);
        let mut batch = Vec::new();
        let mut st = self.state.lock().expect("queue lock");
        if st.len == 0 {
            if st.closed {
                return Pop::Closed;
            }
            let (next, _) = self.not_empty.wait_timeout(st, first_timeout).expect("queue lock");
            st = next;
            if st.len == 0 {
                return if st.closed { Pop::Closed } else { Pop::Empty };
            }
        }
        let deadline = Instant::now() + window;
        loop {
            let before = batch.len();
            self.drain_locked(&mut st, &mut batch, max);
            if batch.len() > before {
                // Producers blocked on full lanes are woken into the open
                // window so their requests can still join this batch.
                self.not_full.notify_all();
            }
            if batch.len() >= max || st.closed || window.is_zero() {
                break;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, _) = self.not_empty.wait_timeout(st, left).expect("queue lock");
            st = next;
        }
        Pop::Item(batch)
    }

    /// Removes the first queued item in `lane` for which `matches`
    /// returns true, freeing its slot for a waiting producer.
    ///
    /// This is the shed-reclaim path: a request rejected by one shard's
    /// full lane has already been accepted by other shards — left in
    /// place, those parts would occupy lane slots and consume the
    /// tenant's DRR quantum as cancelled zombie work, silently eroding
    /// the tenant's real completion share exactly when it is most
    /// oversubscribed. Reclaiming them keeps lanes full of live work
    /// only. O(lane depth), taken only on the shed path.
    pub fn remove_first<F: Fn(&T) -> bool>(&self, lane: usize, matches: F) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        let pos = st.lanes[lane].items.iter().position(matches)?;
        let item = st.lanes[lane].items.remove(pos).expect("position is in bounds");
        st.len -= 1;
        drop(st);
        self.not_full.notify_all();
        Some(item)
    }

    /// Closes the queue: pushes are rejected, pops drain and then report
    /// closure, and all waiters wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(2, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(3, ShedPolicy::DropNewest), Push::Dropped(3)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(2)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push(7, ShedPolicy::Block);
        q.close();
        assert!(matches!(q.push(8, ShedPolicy::Block), Push::Closed(8)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(7)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            assert!(matches!(q2.push(2, ShedPolicy::Block), Push::Accepted));
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(1)));
        producer.join().expect("producer");
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(2)));
    }

    #[test]
    fn pop_batch_collects_queued_items_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i, ShedPolicy::Block);
        }
        match q.pop_batch(Duration::ZERO, Duration::from_millis(50), 3) {
            Pop::Item(batch) => assert_eq!(batch, vec![0, 1, 2]),
            other => panic!("expected a batch, got {other:?}"),
        }
        match q.pop_batch(Duration::ZERO, Duration::from_millis(50), 3) {
            Pop::Item(batch) => assert_eq!(batch, vec![3, 4]),
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn pop_batch_with_max_one_never_waits_for_the_window() {
        let q = BoundedQueue::new(8);
        q.push(1, ShedPolicy::Block);
        q.push(2, ShedPolicy::Block);
        let started = Instant::now();
        match q.pop_batch(Duration::ZERO, Duration::from_secs(5), 1) {
            Pop::Item(batch) => assert_eq!(batch, vec![1]),
            other => panic!("expected one item, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(1), "max=1 must not hold the window");
    }

    #[test]
    fn pop_batch_window_absorbs_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(2, ShedPolicy::Block);
        });
        match q.pop_batch(Duration::ZERO, Duration::from_millis(500), 4) {
            Pop::Item(batch) => {
                assert_eq!(batch[0], 1);
                // The late arrival lands inside the window. (Full batch
                // also ends the window early, so this is not timing-exact.)
                assert_eq!(batch, vec![1, 2]);
            }
            other => panic!("expected a batch, got {other:?}"),
        }
        producer.join().expect("producer");
    }

    #[test]
    fn pop_batch_wakes_blocked_producers_into_the_open_window() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // The queue is full; this parks until pop_batch frees the slot
            // at the *start* of its window, not after it.
            q2.push(2, ShedPolicy::Block);
        });
        std::thread::sleep(Duration::from_millis(20));
        match q.pop_batch(Duration::ZERO, Duration::from_millis(500), 2) {
            Pop::Item(batch) => assert_eq!(batch, vec![1, 2], "producer must join the open batch"),
            other => panic!("expected both items, got {other:?}"),
        }
        producer.join().expect("producer");
    }

    #[test]
    fn pop_batch_empty_and_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(matches!(q.pop_batch(Duration::ZERO, Duration::ZERO, 4), Pop::Empty));
        q.push(9, ShedPolicy::Block);
        q.close();
        match q.pop_batch(Duration::ZERO, Duration::from_secs(5), 4) {
            Pop::Item(batch) => assert_eq!(batch, vec![9]),
            other => panic!("closed queue still drains, got {other:?}"),
        }
        assert!(matches!(q.pop_batch(Duration::ZERO, Duration::ZERO, 4), Pop::Closed));
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, ShedPolicy::Block));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(producer.join().expect("producer"), Push::Closed(2)));
    }

    fn two_lane_queue(wa: u64, wb: u64) -> WeightedQueue<usize> {
        WeightedQueue::new(
            &[LaneSpec { weight: wa, class: 0 }, LaneSpec { weight: wb, class: 0 }],
            4096,
        )
    }

    #[test]
    fn weighted_lanes_are_isolated_and_shed_independently() {
        let q = WeightedQueue::new(
            &[LaneSpec { weight: 1, class: 0 }, LaneSpec { weight: 1, class: 0 }],
            2,
        );
        assert!(matches!(q.push(0, 10, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(0, 11, ShedPolicy::DropNewest), Push::Accepted));
        // Lane 0 is full; lane 1 still accepts.
        assert!(matches!(q.push(0, 12, ShedPolicy::DropNewest), Push::Dropped(12)));
        assert!(matches!(q.push(1, 20, ShedPolicy::DropNewest), Push::Accepted));
        assert_eq!(q.shed_counts(), vec![1, 0]);
        assert_eq!(q.lane_len(0), 2);
        assert_eq!(q.lane_len(1), 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn drr_divides_pops_by_weight_for_any_batch_size() {
        for batch in [1usize, 2, 4, 16] {
            let q = two_lane_queue(9, 1);
            let mut counts = [0u64; 2];
            let mut popped = 0u64;
            while popped < 600 {
                for lane in 0..2 {
                    while q.lane_len(lane) < 64 {
                        assert!(matches!(
                            q.push(lane, lane, ShedPolicy::DropNewest),
                            Push::Accepted
                        ));
                    }
                }
                match q.pop_batch(Duration::ZERO, Duration::ZERO, batch) {
                    Pop::Item(items) => {
                        for lane in items {
                            counts[lane] += 1;
                            popped += 1;
                        }
                    }
                    other => panic!("backlogged queue must pop, got {other:?}"),
                }
            }
            let share = counts[0] as f64 / popped as f64;
            assert!(
                (share - 0.9).abs() < 0.05,
                "batch {batch}: heavy share {share} (counts {counts:?})"
            );
        }
    }

    #[test]
    fn strict_priority_serves_high_class_first() {
        let q = WeightedQueue::new(
            &[LaneSpec { weight: 1, class: 1 }, LaneSpec { weight: 1, class: 0 }],
            64,
        );
        for i in 0..8 {
            q.push(0, 100 + i, ShedPolicy::Block);
            q.push(1, 200 + i, ShedPolicy::Block);
        }
        let mut order = Vec::new();
        loop {
            match q.pop_batch(Duration::ZERO, Duration::ZERO, 3) {
                Pop::Item(items) if !items.is_empty() => order.extend(items),
                _ => break,
            }
        }
        // Every class-0 (lane 1) item precedes every class-1 (lane 0) item.
        let first_low = order.iter().position(|&v| v < 200).expect("low-class items present");
        assert!(order[..first_low].iter().all(|&v| v >= 200), "{order:?}");
        assert!(order[first_low..].iter().all(|&v| v < 200), "{order:?}");
        assert_eq!(order.len(), 16);
    }

    #[test]
    fn every_backlogged_lane_is_visited_each_round() {
        // With both lanes backlogged and weights 9:1, the light lane is
        // served exactly once per round: never more than 9 heavy pops
        // between consecutive light pops.
        let q = two_lane_queue(9, 1);
        let mut flat = Vec::new();
        while flat.len() < 300 {
            for lane in 0..2 {
                while q.lane_len(lane) < 32 {
                    q.push(lane, lane, ShedPolicy::DropNewest);
                }
            }
            match q.pop_batch(Duration::ZERO, Duration::ZERO, 7) {
                Pop::Item(items) => flat.extend(items),
                other => panic!("backlogged queue must pop, got {other:?}"),
            }
        }
        let mut gap = 0usize;
        for &lane in &flat {
            if lane == 1 {
                gap = 0;
            } else {
                gap += 1;
                assert!(gap <= 9, "light lane starved for {gap} pops: {flat:?}");
            }
        }
    }

    #[test]
    fn lane_capacity_can_be_retuned_at_runtime() {
        let q = WeightedQueue::new(
            &[LaneSpec { weight: 1, class: 0 }, LaneSpec { weight: 1, class: 0 }],
            2,
        );
        assert_eq!(q.lane_cap(0), 2);
        q.push(0, 1, ShedPolicy::DropNewest);
        q.push(0, 2, ShedPolicy::DropNewest);
        assert!(matches!(q.push(0, 3, ShedPolicy::DropNewest), Push::Dropped(3)));
        // Widen lane 0: the third push now fits; lane 1 is untouched.
        q.set_lane_capacity(0, 4);
        assert_eq!(q.lane_cap(0), 4);
        assert_eq!(q.lane_cap(1), 2);
        assert!(matches!(q.push(0, 3, ShedPolicy::DropNewest), Push::Accepted));
        // Shrink below the live depth: nothing is evicted, but new pushes
        // are refused until the lane drains.
        q.set_lane_capacity(0, 1);
        assert_eq!(q.lane_len(0), 3);
        assert!(matches!(q.push(0, 4, ShedPolicy::DropNewest), Push::Dropped(4)));
        match q.pop_batch(Duration::ZERO, Duration::ZERO, 8) {
            Pop::Item(items) => assert_eq!(items, vec![1, 2, 3]),
            other => panic!("expected the queued items, got {other:?}"),
        }
        assert!(matches!(q.push(0, 5, ShedPolicy::DropNewest), Push::Accepted));
    }

    #[test]
    fn growing_a_lane_wakes_blocked_producers() {
        let q = Arc::new(WeightedQueue::new(&[LaneSpec { weight: 1, class: 0 }], 1));
        q.push(0, 1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            assert!(matches!(q2.push(0, 2, ShedPolicy::Block), Push::Accepted));
        });
        std::thread::sleep(Duration::from_millis(20));
        q.set_lane_capacity(0, 2);
        producer.join().expect("producer unblocked by the wider lane");
        assert_eq!(q.lane_len(0), 2);
    }

    #[test]
    fn weighted_close_drains_then_reports_closed() {
        let q = two_lane_queue(2, 1);
        q.push(0, 7, ShedPolicy::Block);
        q.push(1, 8, ShedPolicy::Block);
        q.close();
        assert!(matches!(q.push(0, 9, ShedPolicy::Block), Push::Closed(9)));
        match q.pop_batch(Duration::ZERO, Duration::from_secs(5), 8) {
            Pop::Item(items) => assert_eq!(items.len(), 2),
            other => panic!("closed queue still drains, got {other:?}"),
        }
        assert!(matches!(q.pop_batch(Duration::ZERO, Duration::ZERO, 8), Pop::Closed));
    }

    #[test]
    fn weighted_blocking_push_waits_for_lane_space() {
        let q = Arc::new(WeightedQueue::new(&[LaneSpec { weight: 1, class: 0 }], 1));
        q.push(0, 1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            assert!(matches!(q2.push(0, 2, ShedPolicy::Block), Push::Accepted));
        });
        std::thread::sleep(Duration::from_millis(20));
        match q.pop_batch(Duration::from_millis(100), Duration::ZERO, 1) {
            Pop::Item(items) => assert_eq!(items, vec![1]),
            other => panic!("expected the first item, got {other:?}"),
        }
        producer.join().expect("producer");
        match q.pop_batch(Duration::from_millis(100), Duration::ZERO, 1) {
            Pop::Item(items) => assert_eq!(items, vec![2]),
            other => panic!("expected the second item, got {other:?}"),
        }
    }

    #[test]
    fn add_lane_joins_scheduling_with_default_capacity() {
        let q = WeightedQueue::new(&[LaneSpec { weight: 9, class: 0 }], 64);
        assert_eq!(q.num_lanes(), 1);
        let lane = q.add_lane(LaneSpec { weight: 1, class: 0 });
        assert_eq!(lane, 1);
        assert_eq!(q.num_lanes(), 2);
        assert_eq!(q.lane_cap(lane), 64);
        // The fresh lane shares by DRR exactly like a constructed one.
        let mut counts = [0u64; 2];
        let mut popped = 0u64;
        while popped < 600 {
            for l in 0..2 {
                while q.lane_len(l) < 64 {
                    assert!(matches!(q.push(l, l, ShedPolicy::DropNewest), Push::Accepted));
                }
            }
            match q.pop_batch(Duration::ZERO, Duration::ZERO, 4) {
                Pop::Item(items) => {
                    for l in items {
                        counts[l] += 1;
                        popped += 1;
                    }
                }
                other => panic!("backlogged queue must pop, got {other:?}"),
            }
        }
        let share = counts[0] as f64 / popped as f64;
        assert!((share - 0.9).abs() < 0.05, "heavy share {share} (counts {counts:?})");
    }

    #[test]
    fn add_lane_extends_the_class_table() {
        // Start with one normal-class lane, add a higher-priority lane
        // whose class index does not exist yet, then a lower one.
        let q = WeightedQueue::new(&[LaneSpec { weight: 1, class: 1 }], 16);
        let high = q.add_lane(LaneSpec { weight: 1, class: 0 });
        let low = q.add_lane(LaneSpec { weight: 1, class: 2 });
        assert_eq!((high, low), (1, 2));
        for i in 0..3 {
            q.push(0, 100 + i, ShedPolicy::Block);
            q.push(high, 200 + i, ShedPolicy::Block);
            q.push(low, 300 + i, ShedPolicy::Block);
        }
        let mut order = Vec::new();
        loop {
            match q.pop_batch(Duration::ZERO, Duration::ZERO, 2) {
                Pop::Item(items) if !items.is_empty() => order.extend(items),
                _ => break,
            }
        }
        // Strict priority: all high-class, then normal, then low.
        assert_eq!(order, vec![200, 201, 202, 100, 101, 102, 300, 301, 302]);
    }

    #[test]
    fn add_lane_leaves_existing_backlog_untouched() {
        let q = WeightedQueue::new(&[LaneSpec { weight: 1, class: 0 }], 8);
        q.push(0, 1, ShedPolicy::Block);
        q.push(0, 2, ShedPolicy::Block);
        let lane = q.add_lane(LaneSpec { weight: 3, class: 0 });
        assert_eq!(q.len(), 2, "existing items survive the new lane");
        q.push(lane, 10, ShedPolicy::Block);
        match q.pop_batch(Duration::ZERO, Duration::ZERO, 8) {
            Pop::Item(items) => {
                assert_eq!(items.len(), 3);
                assert!(items.contains(&1) && items.contains(&2) && items.contains(&10));
            }
            other => panic!("expected all three items, got {other:?}"),
        }
    }
}
