//! Bounded per-shard work queues with an explicit overload policy.
//!
//! An open-loop arrival process does not slow down when the server falls
//! behind, so a production engine must decide what to do when a shard's
//! queue is full: block the producer (closed-loop semantics, useful for
//! capacity measurement) or shed the request and count it (open-loop
//! semantics — latency of *accepted* requests stays bounded and the drop
//! counter becomes the overload signal).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full queue does with a new request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the submitter until space frees up (never sheds).
    #[default]
    Block,
    /// Reject the incoming request immediately (counted as shed).
    DropNewest,
}

/// Result of [`BoundedQueue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// The item was enqueued.
    Accepted,
    /// The queue was full and the policy shed the item.
    Dropped(T),
    /// The queue is closed; the item is returned.
    Closed(T),
}

/// Result of [`BoundedQueue::pop_timeout`].
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty.
    Empty,
    /// The queue is closed and drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPSC queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, applying `policy` when the queue is full.
    pub fn push(&self, item: T, policy: ShedPolicy) -> Push<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Push::Closed(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Push::Accepted;
            }
            match policy {
                ShedPolicy::DropNewest => return Push::Dropped(item),
                ShedPolicy::Block => {
                    st = self.not_full.wait(st).expect("queue lock");
                }
            }
        }
    }

    /// Dequeues one item, waiting up to `timeout` for work. A closed queue
    /// still drains its remaining items before reporting [`Pop::Closed`].
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.state.lock().expect("queue lock");
        if let Some(item) = st.items.pop_front() {
            drop(st);
            self.not_full.notify_one();
            return Pop::Item(item);
        }
        if st.closed {
            return Pop::Closed;
        }
        let (mut st, _timed_out) = self.not_empty.wait_timeout(st, timeout).expect("queue lock");
        match st.items.pop_front() {
            Some(item) => {
                drop(st);
                self.not_full.notify_one();
                Pop::Item(item)
            }
            None if st.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Dequeues up to `max` items as one micro-batch: waits up to
    /// `first_timeout` for the first item, then keeps the batch open for
    /// `window` from that moment, absorbing arrivals until the window
    /// elapses or the batch is full.
    ///
    /// With `max <= 1` or a zero `window` this degenerates to
    /// [`BoundedQueue::pop_timeout`] semantics (one item, no extra wait) —
    /// the backward-compatible single-read path. A closed queue still
    /// drains its remaining items (the window is skipped) before reporting
    /// [`Pop::Closed`].
    pub fn pop_batch(&self, first_timeout: Duration, window: Duration, max: usize) -> Pop<Vec<T>> {
        let max = max.max(1);
        let mut batch = Vec::new();
        let mut st = self.state.lock().expect("queue lock");
        // Phase 1: wait for the first item.
        if st.items.is_empty() {
            if st.closed {
                return Pop::Closed;
            }
            let (next, _) = self.not_empty.wait_timeout(st, first_timeout).expect("queue lock");
            st = next;
            if st.items.is_empty() {
                return if st.closed { Pop::Closed } else { Pop::Empty };
            }
        }
        // Phase 2: keep the window open until the batch fills. Producers
        // blocked on a full queue are woken as soon as their slots free
        // up — before the window wait — so their requests can still join
        // the batch being assembled.
        let deadline = Instant::now() + window;
        loop {
            let before = batch.len();
            while batch.len() < max {
                match st.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            for _ in before..batch.len() {
                self.not_full.notify_one();
            }
            if batch.len() >= max || st.closed || window.is_zero() {
                break;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, _) = self.not_empty.wait_timeout(st, left).expect("queue lock");
            st = next;
        }
        Pop::Item(batch)
    }

    /// Closes the queue: pushes are rejected, pops drain and then report
    /// closure, and all waiters wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(2, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(3, ShedPolicy::DropNewest), Push::Dropped(3)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(2)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push(7, ShedPolicy::Block);
        q.close();
        assert!(matches!(q.push(8, ShedPolicy::Block), Push::Closed(8)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(7)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            assert!(matches!(q2.push(2, ShedPolicy::Block), Push::Accepted));
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(1)));
        producer.join().expect("producer");
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(2)));
    }

    #[test]
    fn pop_batch_collects_queued_items_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i, ShedPolicy::Block);
        }
        match q.pop_batch(Duration::ZERO, Duration::from_millis(50), 3) {
            Pop::Item(batch) => assert_eq!(batch, vec![0, 1, 2]),
            other => panic!("expected a batch, got {other:?}"),
        }
        match q.pop_batch(Duration::ZERO, Duration::from_millis(50), 3) {
            Pop::Item(batch) => assert_eq!(batch, vec![3, 4]),
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn pop_batch_with_max_one_never_waits_for_the_window() {
        let q = BoundedQueue::new(8);
        q.push(1, ShedPolicy::Block);
        q.push(2, ShedPolicy::Block);
        let started = Instant::now();
        match q.pop_batch(Duration::ZERO, Duration::from_secs(5), 1) {
            Pop::Item(batch) => assert_eq!(batch, vec![1]),
            other => panic!("expected one item, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(1), "max=1 must not hold the window");
    }

    #[test]
    fn pop_batch_window_absorbs_late_arrivals() {
        let q = Arc::new(BoundedQueue::new(8));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(2, ShedPolicy::Block);
        });
        match q.pop_batch(Duration::ZERO, Duration::from_millis(500), 4) {
            Pop::Item(batch) => {
                assert_eq!(batch[0], 1);
                // The late arrival lands inside the window. (Full batch
                // also ends the window early, so this is not timing-exact.)
                assert_eq!(batch, vec![1, 2]);
            }
            other => panic!("expected a batch, got {other:?}"),
        }
        producer.join().expect("producer");
    }

    #[test]
    fn pop_batch_wakes_blocked_producers_into_the_open_window() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // The queue is full; this parks until pop_batch frees the slot
            // at the *start* of its window, not after it.
            q2.push(2, ShedPolicy::Block);
        });
        std::thread::sleep(Duration::from_millis(20));
        match q.pop_batch(Duration::ZERO, Duration::from_millis(500), 2) {
            Pop::Item(batch) => assert_eq!(batch, vec![1, 2], "producer must join the open batch"),
            other => panic!("expected both items, got {other:?}"),
        }
        producer.join().expect("producer");
    }

    #[test]
    fn pop_batch_empty_and_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(matches!(q.pop_batch(Duration::ZERO, Duration::ZERO, 4), Pop::Empty));
        q.push(9, ShedPolicy::Block);
        q.close();
        match q.pop_batch(Duration::ZERO, Duration::from_secs(5), 4) {
            Pop::Item(batch) => assert_eq!(batch, vec![9]),
            other => panic!("closed queue still drains, got {other:?}"),
        }
        assert!(matches!(q.pop_batch(Duration::ZERO, Duration::ZERO, 4), Pop::Closed));
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, ShedPolicy::Block));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(producer.join().expect("producer"), Push::Closed(2)));
    }
}
