//! Bounded per-shard work queues with an explicit overload policy.
//!
//! An open-loop arrival process does not slow down when the server falls
//! behind, so a production engine must decide what to do when a shard's
//! queue is full: block the producer (closed-loop semantics, useful for
//! capacity measurement) or shed the request and count it (open-loop
//! semantics — latency of *accepted* requests stays bounded and the drop
//! counter becomes the overload signal).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What a full queue does with a new request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the submitter until space frees up (never sheds).
    #[default]
    Block,
    /// Reject the incoming request immediately (counted as shed).
    DropNewest,
}

/// Result of [`BoundedQueue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// The item was enqueued.
    Accepted,
    /// The queue was full and the policy shed the item.
    Dropped(T),
    /// The queue is closed; the item is returned.
    Closed(T),
}

/// Result of [`BoundedQueue::pop_timeout`].
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still empty.
    Empty,
    /// The queue is closed and drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPSC queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, applying `policy` when the queue is full.
    pub fn push(&self, item: T, policy: ShedPolicy) -> Push<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Push::Closed(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Push::Accepted;
            }
            match policy {
                ShedPolicy::DropNewest => return Push::Dropped(item),
                ShedPolicy::Block => {
                    st = self.not_full.wait(st).expect("queue lock");
                }
            }
        }
    }

    /// Dequeues one item, waiting up to `timeout` for work. A closed queue
    /// still drains its remaining items before reporting [`Pop::Closed`].
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.state.lock().expect("queue lock");
        if let Some(item) = st.items.pop_front() {
            drop(st);
            self.not_full.notify_one();
            return Pop::Item(item);
        }
        if st.closed {
            return Pop::Closed;
        }
        let (mut st, _timed_out) = self.not_empty.wait_timeout(st, timeout).expect("queue lock");
        match st.items.pop_front() {
            Some(item) => {
                drop(st);
                self.not_full.notify_one();
                Pop::Item(item)
            }
            None if st.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Closes the queue: pushes are rejected, pops drain and then report
    /// closure, and all waiters wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(2, ShedPolicy::DropNewest), Push::Accepted));
        assert!(matches!(q.push(3, ShedPolicy::DropNewest), Push::Dropped(3)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(2)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push(7, ShedPolicy::Block);
        q.close();
        assert!(matches!(q.push(8, ShedPolicy::Block), Push::Closed(8)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Item(7)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), Pop::Closed));
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            assert!(matches!(q2.push(2, ShedPolicy::Block), Push::Accepted));
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(1)));
        producer.join().expect("producer");
        assert!(matches!(q.pop_timeout(Duration::from_millis(100)), Pop::Item(2)));
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, ShedPolicy::Block);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, ShedPolicy::Block));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(producer.join().expect("producer"), Push::Closed(2)));
    }
}
