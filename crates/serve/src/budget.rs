//! The online DRAM cache-budget controller: closes the paper's
//! budget-allocation loop (§4.3.3 + Table 2) against live traffic.
//!
//! The offline pipeline solves the DRAM split across embedding tables
//! once, from training-trace hit-rate curves, and the engine then runs
//! that partition forever — even when the hot table migrates. This
//! controller re-solves the split *online*: shard workers tee a sampled
//! slice of each table's cache-probe stream onto the metrics bus, a
//! [`CurveSampler`] per table turns the stream into a fresh
//! [`HitRateCurve`] each window, and
//! [`allocate_dram`] re-divides the fixed
//! total budget — weighted by the [`PriorityClass`](crate::PriorityClass)
//! of the tenants driving each table — into per-table targets. Targets
//! that differ from the running capacity by more than a hysteresis
//! fraction become [`Action::SetCachePartition`]s, applied on the owning
//! shard's worker thread between micro-batches; every applied move lands
//! in the audit log together with the curve points that justified it.

use crate::control::{Action, Controller, EngineSnapshot, TableCachePartition};
use bandana_cache::{allocate_dram, CurveSampler, HitRateCurve};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// Per-tick cap on drained samples, mirroring the tuner's: the budget
/// controller shares the metrics bus with every other controller, so one
/// tick must never wedge the bus replaying an unbounded backlog.
const MAX_SAMPLES_PER_TICK: usize = 4096;

/// One cache-probe sample teed off a shard worker: the table probed, the
/// vector id, and the runtime index of the tenant whose request drove it.
pub(crate) type BudgetSample = (usize, u32, u32);

/// Tuning of the cache budget controller, set via
/// [`ServeConfig::with_cache_budget`](crate::ServeConfig::with_cache_budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBudgetSettings {
    /// Sampled lookups that must accumulate before the controller
    /// re-solves the partition (one measurement window).
    pub window_lookups: u64,
    /// Ladder rungs in each table's online hit-rate curve.
    pub rungs: usize,
    /// Spatial sampling rate in `(0, 1]` fed to each [`CurveSampler`]
    /// (the miniature caches scale by the same factor).
    pub sampling_rate: f64,
    /// Workers tee one cache probe in `sample_every` onto the bus.
    pub sample_every: u32,
    /// Solver granularity in entries
    /// ([`allocate_dram`]'s step size).
    pub granularity: usize,
    /// Hysteresis: a solved target is applied only when it differs from
    /// the running capacity by more than this fraction of it — small
    /// oscillations in the solve never thrash the caches.
    pub hysteresis: f64,
    /// Weight multiplier per tenant [`PriorityClass`](crate::PriorityClass)
    /// (indexed by [`PriorityClass::index`](crate::PriorityClass::index):
    /// high, normal, low): a table driven by high-class tenants bids more
    /// for the same marginal hit-rate gain.
    pub class_weights: [f64; 3],
    /// Hash salt for the spatial samplers.
    pub salt: u64,
}

impl Default for CacheBudgetSettings {
    fn default() -> Self {
        CacheBudgetSettings {
            window_lookups: 2048,
            rungs: 8,
            sampling_rate: 1.0,
            sample_every: 1,
            granularity: 64,
            hysteresis: 0.05,
            class_weights: [4.0, 2.0, 1.0],
            salt: 0x0bad_b0b5,
        }
    }
}

impl CacheBudgetSettings {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_lookups == 0 {
            return Err("budget window must cover at least one lookup".into());
        }
        if self.rungs == 0 {
            return Err("need at least one curve rung".into());
        }
        if !(0.0 < self.sampling_rate && self.sampling_rate <= 1.0) {
            return Err(format!("sampling rate {} outside (0, 1]", self.sampling_rate));
        }
        if self.sample_every == 0 {
            return Err("sample_every must be at least 1".into());
        }
        if self.granularity == 0 {
            return Err("solver granularity must be non-zero".into());
        }
        if !(0.0..1.0).contains(&self.hysteresis) {
            return Err(format!("hysteresis {} outside [0, 1)", self.hysteresis));
        }
        if self.class_weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
            return Err("class weights must be positive and finite".into());
        }
        Ok(())
    }
}

/// Everything the control thread needs to build the budget controller:
/// the tables with their build-time capacities, the settings, and the
/// shard sample channel.
pub(crate) struct BudgetInputs {
    /// `(table id, build-time cache capacity in entries)`, table order.
    pub tables: Vec<(usize, usize)>,
    pub settings: CacheBudgetSettings,
    pub samples: mpsc::Receiver<BudgetSample>,
}

/// The controller: folds sampled per-table access streams into fresh
/// hit-rate curves each window and re-solves the DRAM split against the
/// fixed total budget (the sum of the build-time partition).
///
/// Runs on the metrics bus next to the tuner and SLO controllers; the
/// shared counter/partition references point into the engine's shared
/// state so re-solves and applied moves surface in
/// [`EngineMetrics`](crate::EngineMetrics) and the Prometheus gauges.
pub(crate) struct CacheBudgetController<'a> {
    settings: CacheBudgetSettings,
    samples: mpsc::Receiver<BudgetSample>,
    /// Table ids, in the order `samplers`/`current`/`weights` follow.
    tables: Vec<usize>,
    samplers: Vec<CurveSampler>,
    /// Capacity last applied (starts at the build-time partition).
    current: Vec<usize>,
    /// Class-weighted sampled access mass this window.
    weights: Vec<f64>,
    /// The freshest curve per table: a table idle this window is solved
    /// from its previous curve rather than forgotten.
    last_curves: Vec<Option<HitRateCurve>>,
    /// The fixed total budget in entries.
    total: usize,
    /// Samples folded into the current window.
    window_samples: u64,
    /// [`EngineMetrics::rebudget_solves`](crate::EngineMetrics) counter.
    solves: &'a AtomicU64,
    /// The engine's live partition view (targets are published here).
    partition: &'a Mutex<Vec<TableCachePartition>>,
}

impl<'a> CacheBudgetController<'a> {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics on invalid settings or an empty table set (the engine
    /// validates both before spawning the bus).
    pub(crate) fn new(
        inputs: BudgetInputs,
        solves: &'a AtomicU64,
        partition: &'a Mutex<Vec<TableCachePartition>>,
    ) -> Self {
        inputs.settings.validate().expect("invalid cache budget settings");
        assert!(!inputs.tables.is_empty(), "budget controller needs at least one table");
        let settings = inputs.settings;
        let total: usize = inputs.tables.iter().map(|&(_, c)| c).sum::<usize>().max(1);
        let tables: Vec<usize> = inputs.tables.iter().map(|&(t, _)| t).collect();
        let current: Vec<usize> = inputs.tables.iter().map(|&(_, c)| c).collect();
        let samplers = tables
            .iter()
            .map(|_| {
                CurveSampler::new(total, settings.rungs, settings.sampling_rate, settings.salt)
            })
            .collect();
        CacheBudgetController {
            settings,
            samples: inputs.samples,
            last_curves: vec![None; tables.len()],
            weights: vec![0.0; tables.len()],
            samplers,
            current,
            tables,
            total,
            window_samples: 0,
            solves,
            partition,
        }
    }

    /// The class weight of tenant runtime index `tenant` under
    /// `snapshot`; a tenant missing from the snapshot (registered after
    /// it was taken) weighs as the normal class.
    fn tenant_weight(&self, snapshot: &EngineSnapshot, tenant: u32) -> f64 {
        snapshot.tenants.get(tenant as usize).map_or(self.settings.class_weights[1], |t| {
            self.settings.class_weights[t.priority_class.index()]
        })
    }

    /// Re-solves the partition from the window's curves and returns the
    /// moves that clear the hysteresis bar.
    fn solve(&mut self) -> Vec<Action> {
        self.solves.fetch_add(1, Ordering::Relaxed);
        let mut curves: Vec<HitRateCurve> = Vec::with_capacity(self.tables.len());
        for (i, sampler) in self.samplers.iter().enumerate() {
            if let Some(curve) = sampler.curve() {
                self.last_curves[i] = Some(curve);
            }
            // Idle since the start: a flat-zero curve bids nothing.
            curves.push(
                self.last_curves[i]
                    .clone()
                    .unwrap_or_else(|| HitRateCurve::new(vec![(self.total, 0.0)])),
            );
        }
        // A window with no weighted mass anywhere would solve from pure
        // tie-breaking; keep the current split instead.
        if self.weights.iter().all(|&w| w <= 0.0) {
            return Vec::new();
        }
        let targets = allocate_dram(self.total, &curves, &self.weights, self.settings.granularity);
        {
            let mut partition = self.partition.lock().expect("cache partition lock");
            for (i, &table) in self.tables.iter().enumerate() {
                if let Some(p) = partition.iter_mut().find(|p| p.table == table) {
                    p.target_entries = targets[i];
                }
            }
        }
        let mut actions = Vec::new();
        for (i, &table) in self.tables.iter().enumerate() {
            let target = targets[i];
            let current = self.current[i];
            let delta = target.abs_diff(current);
            if delta == 0 || (delta as f64) <= self.settings.hysteresis * current as f64 {
                continue;
            }
            self.current[i] = target;
            actions.push(Action::SetCachePartition {
                table,
                entries: target,
                curve: curves[i].points().to_vec(),
            });
        }
        actions
    }
}

impl Controller for CacheBudgetController<'_> {
    fn name(&self) -> &str {
        "cache-budget"
    }

    fn observe(&mut self, snapshot: &EngineSnapshot) -> Vec<Action> {
        // Bounded drain, like the tuner's: a disconnected channel (all
        // workers exited) just yields quiet drains.
        let mut drained = 0usize;
        while drained < MAX_SAMPLES_PER_TICK {
            let Ok((table, id, tenant)) = self.samples.try_recv() else { break };
            drained += 1;
            let Some(i) = self.tables.iter().position(|&t| t == table) else { continue };
            self.samplers[i].observe(id);
            self.weights[i] += self.tenant_weight(snapshot, tenant);
            self.window_samples += 1;
        }
        if self.window_samples < self.settings.window_lookups {
            return Vec::new();
        }
        let actions = self.solve();
        for sampler in &mut self.samplers {
            sampler.reset_window();
        }
        self.weights.fill(0.0);
        self.window_samples = 0;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::TenantSnapshot;
    use crate::hist::LatencySummary;
    use crate::tenant::{PriorityClass, ShedBreakdown, TenantId};
    use std::sync::mpsc::sync_channel;
    use std::time::Duration;

    fn tenant(id: u32, class: PriorityClass) -> TenantSnapshot {
        TenantSnapshot {
            id: TenantId(id),
            priority_class: class,
            slo_p99: None,
            outstanding: 0,
            submitted: 0,
            completed: 0,
            queued: 0,
            shed: ShedBreakdown::default(),
            slo_shedding: false,
            recent: LatencySummary::default(),
        }
    }

    fn snapshot(tenants: Vec<TenantSnapshot>) -> EngineSnapshot {
        EngineSnapshot {
            tick: 0,
            uptime: Duration::from_millis(1),
            window_span: Duration::from_millis(400),
            batch_window: Duration::ZERO,
            shards: Vec::new(),
            tenants,
            cache_partition: Vec::new(),
        }
    }

    fn harness(
        tables: Vec<(usize, usize)>,
        settings: CacheBudgetSettings,
    ) -> (
        mpsc::SyncSender<BudgetSample>,
        &'static AtomicU64,
        &'static Mutex<Vec<TableCachePartition>>,
        CacheBudgetController<'static>,
    ) {
        let (tx, rx) = sync_channel(1 << 16);
        let solves: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        let partition: &'static Mutex<Vec<TableCachePartition>> = Box::leak(Box::new(Mutex::new(
            tables
                .iter()
                .map(|&(table, c)| TableCachePartition {
                    table,
                    capacity_entries: c,
                    target_entries: c,
                })
                .collect(),
        )));
        let inputs = BudgetInputs { tables, settings, samples: rx };
        let ctl = CacheBudgetController::new(inputs, solves, partition);
        (tx, solves, partition, ctl)
    }

    /// Deterministic pseudo-random key stream: uniform draws give each
    /// table a smoothly rising hit-rate curve (a cyclic scan would give
    /// the LRU pathology — zero hits below the working-set size — which
    /// a greedy marginal-gain allocator cannot climb).
    fn lcg(state: &mut u64, keys: u32) -> u32 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 33) as u32) % keys
    }

    #[test]
    fn rebudget_moves_capacity_toward_the_table_that_needs_it() {
        let settings = CacheBudgetSettings {
            window_lookups: 512,
            granularity: 16,
            ..CacheBudgetSettings::default()
        };
        let (tx, solves, partition, mut ctl) = harness(vec![(0, 128), (1, 128)], settings);
        let snap = snapshot(vec![tenant(0, PriorityClass::Normal)]);
        // Table 0 draws uniformly from a working set larger than its
        // 128-entry share; table 1 only ever touches 4 keys. Every entry
        // moved from 1 to 0 buys hit rate, so the solve must shift the
        // split.
        let mut rng = 42u64;
        let mut actions = Vec::new();
        for _ in 0..6u32 {
            for v in 0..200u32 {
                tx.send((0, lcg(&mut rng, 200), 0)).unwrap();
                if v < 4 {
                    tx.send((1, v, 0)).unwrap();
                }
            }
            actions.extend(ctl.observe(&snap));
        }
        assert!(solves.load(Ordering::Relaxed) > 0, "window never filled");
        let grow = actions.iter().find_map(|a| match a {
            Action::SetCachePartition { table: 0, entries, curve } => Some((*entries, curve.len())),
            _ => None,
        });
        let (entries, curve_points) = grow.expect("table 0 must be granted budget: {actions:?}");
        assert!(entries > 128, "hot table must grow, got {entries}");
        assert!(curve_points > 0, "audit evidence must carry the curve");
        // The published targets follow the solve and conserve the budget.
        let p = partition.lock().unwrap();
        assert_eq!(p.iter().map(|t| t.target_entries).sum::<usize>(), 256);
        assert!(p[0].target_entries > p[1].target_entries);
    }

    #[test]
    fn hysteresis_suppresses_small_moves_but_solves_still_count() {
        let settings = CacheBudgetSettings {
            window_lookups: 256,
            granularity: 16,
            hysteresis: 0.9,
            ..CacheBudgetSettings::default()
        };
        let (tx, solves, _, mut ctl) = harness(vec![(0, 128), (1, 128)], settings);
        let snap = snapshot(vec![tenant(0, PriorityClass::Normal)]);
        // Identical streams: the solve lands near 50/50, inside the (huge)
        // hysteresis band around the current 128/128 split.
        for v in 0..400u32 {
            tx.send((0, v % 64, 0)).unwrap();
            tx.send((1, v % 64, 0)).unwrap();
        }
        let actions = ctl.observe(&snap);
        assert!(solves.load(Ordering::Relaxed) >= 1, "the window filled, so it must solve");
        assert!(actions.is_empty(), "inside hysteresis, nothing moves: {actions:?}");
    }

    #[test]
    fn class_weighting_biases_the_split_toward_high_priority_traffic() {
        let settings = CacheBudgetSettings {
            window_lookups: 512,
            granularity: 16,
            class_weights: [16.0, 2.0, 1.0],
            ..CacheBudgetSettings::default()
        };
        // Statistically identical traffic per table, but table 0 is
        // driven by a high-class tenant and table 1 by a low-class one.
        let (tx, _, partition, mut ctl) = harness(vec![(0, 64), (1, 64)], settings);
        let snap = snapshot(vec![tenant(0, PriorityClass::High), tenant(1, PriorityClass::Low)]);
        let (mut rng0, mut rng1) = (7u64, 13u64);
        for _ in 0..4u32 {
            for _ in 0..96u32 {
                tx.send((0, lcg(&mut rng0, 120), 0)).unwrap();
                tx.send((1, lcg(&mut rng1, 120), 1)).unwrap();
            }
            ctl.observe(&snap);
        }
        let p = partition.lock().unwrap();
        assert!(p[0].target_entries > p[1].target_entries, "high-class table must out-bid: {p:?}");
    }

    #[test]
    fn drain_is_bounded_per_tick() {
        let settings =
            CacheBudgetSettings { window_lookups: 6000, ..CacheBudgetSettings::default() };
        let (tx, solves, _, mut ctl) = harness(vec![(0, 64)], settings);
        let snap = snapshot(vec![tenant(0, PriorityClass::Normal)]);
        for v in 0..6000u32 {
            tx.send((0, v % 100, 0)).unwrap();
        }
        assert!(ctl.observe(&snap).is_empty());
        assert_eq!(ctl.window_samples, 4096, "one tick drains at most the cap");
        assert_eq!(solves.load(Ordering::Relaxed), 0);
        // The backlog survives to the next tick and completes the window.
        let _ = ctl.observe(&snap);
        assert_eq!(solves.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disconnected_channel_and_unknown_tables_are_quiet() {
        let settings = CacheBudgetSettings::default();
        let (tx, _, _, mut ctl) = harness(vec![(0, 64)], settings);
        tx.send((99, 1, 0)).unwrap(); // unknown table: ignored
        drop(tx);
        let snap = snapshot(vec![]);
        assert!(ctl.observe(&snap).is_empty());
        assert_eq!(ctl.window_samples, 0, "unknown tables never count toward the window");
        assert!(ctl.observe(&snap).is_empty(), "disconnected channel drains quietly");
    }

    #[test]
    fn settings_validation_rejects_degenerate_values() {
        assert!(CacheBudgetSettings::default().validate().is_ok());
        let bad = |f: fn(&mut CacheBudgetSettings)| {
            let mut s = CacheBudgetSettings::default();
            f(&mut s);
            s.validate()
        };
        assert!(bad(|s| s.window_lookups = 0).is_err());
        assert!(bad(|s| s.rungs = 0).is_err());
        assert!(bad(|s| s.sampling_rate = 0.0).is_err());
        assert!(bad(|s| s.sampling_rate = 1.5).is_err());
        assert!(bad(|s| s.sample_every = 0).is_err());
        assert!(bad(|s| s.granularity = 0).is_err());
        assert!(bad(|s| s.hysteresis = 1.0).is_err());
        assert!(bad(|s| s.class_weights[2] = 0.0).is_err());
    }
}
