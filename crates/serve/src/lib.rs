//! # bandana-serve — a sharded, batching serving engine for Bandana
//!
//! Bandana is ultimately a *serving* system: NVM-backed embedding tables
//! answering ranking lookups under production traffic. This crate turns a
//! built [`BandanaStore`](bandana_core::BandanaStore) into a serving
//! engine with the properties such a deployment is judged on:
//!
//! * **Shard-per-worker parallelism** ([`ShardedEngine`]): tables are
//!   spread across worker threads, each owning its tables and a
//!   [`RebasedDevice`](nvm_sim::RebasedDevice) — its own block ranges
//!   carved out of the store device and rebased onto a dense zero-based
//!   address space, with per-shard capacity and endurance accounting —
//!   so the hot path takes no shared lock. A dispatcher splits each
//!   request across shards, coalesces duplicate vector ids within a
//!   query, and merges results back in request order.
//! * **Allocation-free steady state**: each worker owns a
//!   [`BatchScratch`](bandana_core::BatchScratch) and a
//!   [`BlockBufPool`](nvm_sim::BlockBufPool), and the cross-request merge
//!   reuses its per-table maps, so once warmed the lookup path performs
//!   no heap allocation ([`EngineMetrics::pool`] reports the buffer reuse
//!   rate).
//! * **Cross-request micro-batching**
//!   ([`ServeConfig::with_batch_window`] /
//!   [`ServeConfig::with_max_batch`]): each shard keeps a short window
//!   open after the first queued request and merges lookups from
//!   *different* requests into one deduplicated `lookup_batch` per table,
//!   so one batched device read can complete many requests. The window
//!   defaults to zero (single-read behaviour).
//! * **Device queue-depth modelling**
//!   ([`ServeConfig::with_device_queue`]): block reads are submitted
//!   io_uring-style with a bounded number in flight and charged through
//!   the calibrated [`QueueModel`](nvm_sim::QueueModel) at the live
//!   outstanding depth — the simulated NVM time actually elapses, so tail
//!   latency reflects device queueing, not just host-side queueing.
//!   [`EngineMetrics::breakdown`](EngineMetrics) splits each request into
//!   queue-wait vs device-time vs service components.
//! * **Latency accounting** ([`LatencyHistogram`]): mergeable
//!   log-bucketed histograms record queue wait, device time, per-shard
//!   service time, and end-to-end latency; [`ShardedEngine::metrics`]
//!   reports p50/p95/p99/p999 across shards plus batch-size and
//!   queue-depth distributions ([`BatchingMetrics`]).
//! * **Overload behaviour** ([`ShedPolicy`]): bounded per-shard queues
//!   with block-or-shed admission and an optional deadline, surfacing
//!   drop and timeout counters instead of unbounded queueing.
//! * **Ticket-based, tenant-aware API** ([`Client`] / [`ResponseTicket`]):
//!   each tenant opens a session with [`ShardedEngine::client`], builds
//!   typed requests ([`RequestBuilder`]: per-table key lists, optional
//!   per-request deadline), and `submit` returns a completion ticket —
//!   one thread keeps hundreds of requests in flight and collects typed
//!   [`Response`]s out of order with `try_take`/`wait`/`wait_timeout`.
//! * **Multi-tenant QoS** ([`TenantSpec`] via
//!   [`ServeConfig::with_tenant`]): every shard queue is a set of
//!   per-tenant bounded lanes scheduled by strict priority across
//!   [`PriorityClass`]es and deficit round-robin on tenant weights
//!   within a class, with per-tenant admission quotas, shed counters,
//!   and latency histograms ([`EngineMetrics::per_tenant`]) — under
//!   overload, completions divide by the registered weights and no
//!   backlogged tenant is ever starved.
//! * **Open-loop load generation** ([`run_open_loop`], driven by
//!   [`bandana_trace::ArrivalProcess`]): Poisson and bursty arrival
//!   clocks that keep offering load when the engine falls behind — the
//!   regime where tail latency and shedding actually show up — driven
//!   through the ticket API by a small reactor pool ([`LoadGenConfig`]
//!   sizes it; use 1 on a single-core host), next to classic closed-loop
//!   capacity replay ([`run_closed_loop`] on [`Client::call`]).
//! * **A unified control plane** ([`control`]): every engine runs a
//!   metrics-bus thread that rotates per-tenant *windowed* latency
//!   histograms ([`WindowedHistogram`]) and snapshots the engine
//!   ([`EngineSnapshot`]: lane depths, batching/device stats, per-tenant
//!   recent-window p99 and [`ShedBreakdown`]) each tick; pluggable
//!   [`Controller`]s observe the snapshot and return [`Action`]s —
//!   admission-policy hot-swaps, live lane resizes, batch-window
//!   retunes, admission breakers — which the bus applies through the
//!   shard command channels. The paper's **online re-tuning**
//!   ([`OnlineTunerSettings`], §4.3.3: miniature caches raced on sampled
//!   live traffic) is the first controller; the [`SloController`]
//!   enforces per-tenant p99 budgets ([`TenantSpec::slo_p99`]) by
//!   shedding a tenant at admission ([`ServeError::SloShed`]) while its
//!   *recent-window* p99 is blown — doomed work is refused early, before
//!   it can poison other tenants' lanes, with breaker-style exponential
//!   backoff and congestion-attributed trips (one per window turnover,
//!   to the most-queued blown tenant). Custom controllers register via
//!   [`ShardedEngine::new_with_controllers`].
//! * **Online DRAM re-budgeting** ([`CacheBudgetSettings`] via
//!   [`ServeConfig::with_cache_budget`]): the build-time per-table cache
//!   division is re-solved *online* — shard workers tee sampled cache
//!   probes onto the bus, the internal `CacheBudgetController` folds
//!   them into per-table hit-rate curves (miniature simulated caches)
//!   and re-divides the same fixed total budget, applying
//!   hysteresis-gated [`Action::SetCachePartition`] moves that grow a
//!   shard cache live or shrink it coldest-first without flushing
//!   survivors. Every move is audit-logged with the curve points that
//!   justified it, the live split is exported as
//!   `bandana_table_cache_{capacity,target}_entries` gauges, and the
//!   learned partition survives a warm restart via snapshots.
//! * **Online hot-block re-layout** ([`ReLayoutSettings`] via
//!   [`ServeConfig::with_relayout`]): the paper's SHP placement loop
//!   (§4.1), closed against live traffic. Shard workers tee a sampled
//!   co-access record of each drained request part onto the bus, the
//!   internal `ReLayoutController` accumulates a windowed co-access
//!   hypergraph per table, and when observed blocks-per-request
//!   degrades past a threshold of the window's ideal it runs an
//!   incremental [`bandana_partition::refine`] over the hottest blocks.
//!   The refined order is applied atomically between micro-batches
//!   ([`Action::ApplyLayout`]) — rewritten blocks are real device
//!   writes charged to the shard's endurance meter, cached entries
//!   survive the remap — and the learned layout survives a warm
//!   restart via snapshots. Windows surface as
//!   `bandana_blocks_per_request_{observed,ideal}` gauges; every
//!   applied re-layout is audit-logged with the figures that justified
//!   it.
//! * **Observability** ([`obs`]): a three-part layer over everything
//!   above. The **flight recorder** samples one request in N
//!   ([`ServeConfig::with_trace`]) and records its lifecycle — admitted,
//!   lane-enqueued, batch-drained, device-submit/complete, then exactly
//!   one terminal (completed / shed / timed-out) — into preallocated
//!   per-shard rings with zero heap allocation on the hot path;
//!   [`ShardedEngine::dump_trace`] exports Chrome trace-event JSON for
//!   Perfetto and [`ShardedEngine::request_traces`] structured
//!   [`RequestTrace`]s for tests. [`render_prometheus`] encodes
//!   [`EngineMetrics`] plus a live [`EngineSnapshot`] as Prometheus text
//!   with stable `bandana_*` names. And every control-plane [`Action`]
//!   lands in a bounded **audit log** ([`EngineMetrics::audit`]), so an
//!   SLO trip is explainable after the fact: which controller, which
//!   tenant, and the snapshot evidence it acted on.
//! * **A network front-end** ([`net`]): a pipelined, length-prefixed
//!   binary TCP protocol ([`NetServer`] / [`NetClient`]) whose
//!   connection handlers map straight onto [`Client`] /
//!   [`ResponseTicket`] — out-of-order completion on the wire via
//!   correlation ids, per-connection in-flight caps that backpressure
//!   into TCP flow control, clean error frames for shed / timed-out /
//!   failed terminals — plus an HTTP/1.1 admin plane ([`AdminServer`]):
//!   `GET /metrics` (the frozen Prometheus schema, verbatim),
//!   `GET /audit`, `GET /trace`, and `POST /tenants` for live
//!   registration. The wire format is specified in `docs/PROTOCOL.md`
//!   (pinned to the code by a test); `docs/OPERATIONS.md` is the
//!   operator runbook.
//!
//! ## Example: tickets and weighted tenants
//!
//! ```
//! use bandana_core::{BandanaConfig, BandanaStore};
//! use bandana_serve::{
//!     PriorityClass, ServeConfig, ShardedEngine, TenantId, TenantSpec,
//! };
//! use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ModelSpec::test_small();
//! let mut generator = TraceGenerator::new(&spec, 42);
//! let training = generator.generate_requests(200);
//! let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//!     .map(|t| EmbeddingTable::synthesize(
//!         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//!     .collect();
//! let store = BandanaStore::build(
//!     &spec, &embeddings, &training,
//!     BandanaConfig::default().with_cache_vectors(512),
//! )?;
//!
//! // Two tenants: the ranking service gets 9× the overload share of the
//! // batch backfill, which is also capped at 64 in-flight requests.
//! const RANKING: TenantId = TenantId(1);
//! const BACKFILL: TenantId = TenantId(2);
//! let engine = ShardedEngine::new(
//!     store,
//!     ServeConfig::default()
//!         .with_shards(2)
//!         .with_batch_window(std::time::Duration::from_micros(200))
//!         .with_max_batch(8)
//!         .with_device_queue(4)
//!         .with_tenant(RANKING, TenantSpec::new(9))
//!         .with_tenant(BACKFILL, TenantSpec::new(1).with_quota(64)),
//! )?;
//!
//! // One thread, many requests in flight: submit tickets, then collect
//! // the typed responses out of order.
//! let ranking = engine.client(RANKING)?;
//! let eval = generator.generate_requests(100);
//! let mut tickets: Vec<_> = eval
//!     .requests
//!     .iter()
//!     .map(|r| ranking.submit(r))
//!     .collect::<Result<_, _>>()?;
//! for ticket in tickets.iter_mut().rev() {
//!     let response = ticket.wait()?;
//!     assert!(response.status.is_ok());
//! }
//!
//! // A backfill request built by hand, with its own deadline.
//! let backfill = engine.client(BACKFILL)?;
//! let response = backfill
//!     .request()
//!     .keys(0, &[1, 2, 3])
//!     .deadline(std::time::Duration::from_millis(50))
//!     .call()?;
//! assert_eq!(response.parts[0].len(), 3);
//!
//! let m = engine.metrics();
//! assert_eq!(m.completed, 101);
//! let ranking_m = &m.per_tenant[1];
//! assert_eq!((ranking_m.id, ranking_m.completed), (RANKING, 100));
//! # Ok(())
//! # }
//! ```
//!
//! Legacy single-tenant callers keep working: [`ShardedEngine::serve`]
//! and [`ShardedEngine::submit`] delegate to the always-present default
//! tenant ([`TenantId::DEFAULT`], weight 1, normal class) and behave
//! exactly as before the tenant API existed.
//!
//! ## Observability quickstart
//!
//! ```
//! use bandana_core::{BandanaConfig, BandanaStore};
//! use bandana_serve::{
//!     render_audit_log, render_prometheus, ServeConfig, ShardedEngine, TraceConfig,
//! };
//! use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let spec = ModelSpec::test_small();
//! # let mut generator = TraceGenerator::new(&spec, 42);
//! # let training = generator.generate_requests(200);
//! # let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
//! #     .map(|t| EmbeddingTable::synthesize(
//! #         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
//! #     .collect();
//! # let store = BandanaStore::build(
//! #     &spec, &embeddings, &training,
//! #     BandanaConfig::default().with_cache_vectors(512),
//! # )?;
//! // Flight-record every 4th request into per-shard trace rings.
//! let engine = ShardedEngine::new(
//!     store,
//!     ServeConfig::default().with_shards(2).with_trace(TraceConfig::sampled(4)),
//! )?;
//! let eval = generator.generate_requests(40);
//! for request in &eval.requests {
//!     engine.serve(request)?;
//! }
//!
//! // 1. The flight recorder: Chrome trace-event JSON for Perfetto, and
//! //    structured per-request traces for assertions.
//! assert!(engine.dump_trace().starts_with("{\"traceEvents\":["));
//! let traces = engine.request_traces();
//! assert_eq!(traces.len(), 10, "one in four of 40 requests was sampled");
//! assert!(traces.iter().all(|t| t.terminal_count() == 1));
//!
//! // 2. Prometheus text exposition with stable `bandana_*` names (the
//! //    admin plane's `GET /metrics` serves this string verbatim).
//! let text = render_prometheus(&engine.metrics(), &engine.snapshot());
//! assert!(text.contains("bandana_requests_completed_total 40"));
//!
//! // 3. The control-plane audit log: every applied action, attributed.
//! println!("{}", render_audit_log(&engine.metrics().audit));
//! # Ok(())
//! # }
//! ```
//!
//! For the control plane end to end — a drifting two-tenant flood, the
//! SLO breaker shedding the offender, the tuner hot-swapping thresholds
//! — see `examples/online_tuning.rs` and the `repro serve-drift`
//! experiment, whose controller-on vs controller-off rows are gated by
//! `repro check-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod control;
pub mod engine;
pub mod hist;
pub mod loadgen;
pub mod net;
pub mod obs;
pub mod queue;
pub mod relayout;
pub mod tenant;
pub mod tuner;

pub use bandana_persist::{CrashPoint, FaultPlan, PersistConfig, PersistError, Persistence};
pub use budget::CacheBudgetSettings;
pub use control::{
    Action, ControlConfig, Controller, EngineSnapshot, ShardSnapshot, SloController,
    SloControllerConfig, TableCachePartition, TenantSnapshot,
};
pub use engine::{
    BatchingMetrics, EngineMetrics, RecoveryMetrics, ServeConfig, ServeError, ShardMetrics,
    ShardedEngine,
};
pub use hist::{fmt_secs, LatencyBreakdown, LatencyHistogram, LatencySummary, WindowedHistogram};
pub use loadgen::{
    run_closed_loop, run_open_loop, run_open_loop_net, run_open_loop_tenants, run_open_loop_with,
    ClosedLoopReport, LoadGenConfig, NetOpenLoopReport, OpenLoopReport,
};
pub use net::{AdminServer, NetClient, NetResponse, NetServer, NetServerConfig, NetTicket};
pub use nvm_sim::{DepthStats, PoolStats};
pub use obs::{
    chrome_trace, render_audit_log, render_prometheus, render_tenant_table, AuditEvent, AuditLog,
    RequestTrace, TraceConfig, TraceEvent, TraceEventKind, TraceRecorder, TraceRing,
};
pub use queue::{LaneSpec, ShedPolicy, WeightedQueue};
pub use relayout::ReLayoutSettings;
pub use tenant::{
    Client, PriorityClass, RequestBuilder, Response, ResponseStatus, ResponseTicket, ShedBreakdown,
    TenantId, TenantMetrics, TenantSpec,
};
pub use tuner::OnlineTunerSettings;
