//! Closed- and open-loop load generation against a [`ShardedEngine`].
//!
//! Closed-loop replay (a fixed set of caller threads, each issuing its
//! next request with [`Client::call`] when the previous one returns)
//! measures *capacity*; the offered load self-throttles to whatever the
//! engine sustains. Open-loop replay submits requests on an
//! [`ArrivalProcess`] clock that does not care whether the engine keeps
//! up — the regime production ranking services actually live in — so
//! queueing delay, shedding, and timeouts become visible (the paper's
//! Figure 5 methodology, applied to the whole serving engine rather than
//! the raw device).
//!
//! The open-loop generator drives the **ticket API** from a small
//! reactor pool (4 threads by default; [`LoadGenConfig`] retunes it —
//! single-core hosts want 1): each reactor thread paces its slice of the
//! arrival schedule, fires [`Client::submit_discarding`] (completion-only
//! tickets — the workers skip payload retention, like the legacy
//! fire-and-forget submit), and keeps the resulting
//! [`ResponseTicket`](crate::ResponseTicket)s in flight while later
//! arrivals go out, reaping completions opportunistically. Offered load
//! is therefore bounded by submission cost on a handful of threads — not
//! by thread-spawn cost or by one blocking caller per in-flight request.
//! With [`run_open_loop_tenants`] the same schedule is split round-robin
//! across several tenants, which is how the QoS sweep offers identical
//! load to differently-weighted tenants.
//!
//! Reports subtract a counter snapshot taken at the start of the run, so
//! several runs against one engine stay separable; the latency
//! distributions, however, accumulate over the engine's lifetime — use a
//! fresh engine per measured point when sweeping offered load.

use crate::engine::{EngineMetrics, ServeError, ShardedEngine};
use crate::hist::{LatencyHistogram, LatencySummary};
use crate::net::{NetClient, NetTicket};
use crate::tenant::{Client, Response, TenantId};
use bandana_trace::{ArrivalProcess, Trace};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Tuning of the open-loop generator's reactor pool
/// ([`run_open_loop_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadGenConfig {
    /// Reactor threads driving the open-loop ticket pipeline. A handful
    /// is enough: submission is cheap (the ticket, not the caller,
    /// carries the in-flight state), and more threads would only add
    /// pacing jitter. On a single-core host use 1 — extra reactors just
    /// preempt the shard workers they are measuring. Clamped to at least
    /// 1 and at most one per request.
    pub reactors: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { reactors: 4 }
    }
}

/// Result of an open-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopReport {
    /// Offered load in requests per second.
    pub offered_qps: f64,
    /// Requests submitted (including shed ones).
    pub submitted: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests abandoned past their deadline.
    pub timed_out: u64,
    /// Requests that hit a store error.
    pub failed: u64,
    /// Vector lookups served during the run.
    pub lookups: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub achieved_qps: f64,
    /// End-to-end latency of completed requests (cumulative over the
    /// engine lifetime).
    pub latency: LatencySummary,
    /// Queue-wait distribution (cumulative over the engine lifetime).
    pub queue_wait: LatencySummary,
}

/// Result of a closed-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Caller threads used.
    pub concurrency: usize,
    /// Requests fully served.
    pub completed: u64,
    /// Vector lookups served during the run.
    pub lookups: u64,
    /// Wall-clock duration in seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub achieved_qps: f64,
    /// Vector lookups per second.
    pub lookups_per_second: f64,
    /// End-to-end latency of completed requests (cumulative over the
    /// engine lifetime).
    pub latency: LatencySummary,
}

fn delta(after: &EngineMetrics, before: &EngineMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        after.submitted - before.submitted,
        after.completed - before.completed,
        after.shed - before.shed,
        after.timed_out - before.timed_out,
        after.failed - before.failed,
        after.lookups - before.lookups,
    )
}

/// Busy-accurate pacing: coarse sleep until close to the arrival offset,
/// then fine-wait. The fine wait *yields* rather than pure-spins: at
/// high offered rates every inter-arrival gap lands in the fine branch,
/// and on a single-core host a spinning reactor would monopolize the
/// CPU — starving the very shard workers and metrics-bus thread whose
/// behaviour the run is measuring. `yield_now` keeps sub-quantum pacing
/// precision on an idle core and degrades gracefully to scheduler
/// granularity on a saturated one.
fn pace_until(start: Instant, offset: f64) {
    loop {
        let now = start.elapsed().as_secs_f64();
        let wait = offset - now;
        if wait <= 0.0 {
            return;
        }
        if wait > 500e-6 {
            std::thread::sleep(Duration::from_secs_f64(wait - 300e-6));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Replays `trace` open-loop on the default tenant: requests are
/// submitted on the arrival process's clock regardless of engine
/// progress, then every outstanding ticket is collected.
///
/// With [`ShedPolicy::DropNewest`](crate::ShedPolicy::DropNewest) a
/// saturating rate sheds instead of blocking, so the run always
/// terminates; with `Block` the generator itself is back-pressured and
/// the realized rate falls below the offered one.
pub fn run_open_loop(
    engine: &ShardedEngine,
    trace: &Trace,
    process: &ArrivalProcess,
    seed: u64,
) -> OpenLoopReport {
    run_open_loop_tenants(engine, &[TenantId::DEFAULT], trace, process, seed)
}

/// As [`run_open_loop`], with the offered load split round-robin across
/// `tenants` (request *i* is submitted by tenant `i % tenants.len()`) —
/// every tenant sees the same arrival clock, so under overload the
/// completion shares expose the engine's QoS scheduling.
///
/// # Panics
///
/// Panics if `tenants` is empty or contains an unregistered tenant.
pub fn run_open_loop_tenants(
    engine: &ShardedEngine,
    tenants: &[TenantId],
    trace: &Trace,
    process: &ArrivalProcess,
    seed: u64,
) -> OpenLoopReport {
    run_open_loop_with(engine, tenants, trace, process, seed, LoadGenConfig::default())
}

/// As [`run_open_loop_tenants`], with the generator itself configurable
/// (reactor pool size; see [`LoadGenConfig`]).
///
/// # Panics
///
/// Panics if `tenants` is empty or contains an unregistered tenant.
pub fn run_open_loop_with(
    engine: &ShardedEngine,
    tenants: &[TenantId],
    trace: &Trace,
    process: &ArrivalProcess,
    seed: u64,
    config: LoadGenConfig,
) -> OpenLoopReport {
    assert!(!tenants.is_empty(), "need at least one tenant");
    let clients: Vec<Client> = tenants
        .iter()
        .map(|&t| engine.client(t).expect("open-loop tenants must be registered"))
        .collect();
    let before = engine.metrics();
    let schedule = process.schedule(trace.requests.len(), seed);
    let reactors = config.reactors.min(trace.requests.len()).max(1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for reactor in 0..reactors {
            let clients = &clients;
            let schedule = &schedule;
            scope.spawn(move || {
                let mut pending: VecDeque<crate::tenant::ResponseTicket> = VecDeque::new();
                for i in (reactor..trace.requests.len()).step_by(reactors) {
                    pace_until(start, schedule[i]);
                    // Sheds and store errors are visible in the engine
                    // counters; the generator itself never stops for them
                    // (open-loop semantics). Completion-only tickets: the
                    // generator measures timing, so the workers skip
                    // payload retention, exactly like the legacy
                    // fire-and-forget submit path.
                    let client = &clients[i % clients.len()];
                    if let Ok(ticket) = client.submit_discarding(&trace.requests[i]) {
                        pending.push_back(ticket);
                    }
                    // Reap completions from the front so the pending set
                    // stays bounded while load keeps flowing.
                    while let Some(front) = pending.front_mut() {
                        match front.try_take() {
                            Ok(Some(_)) => {
                                pending.pop_front();
                            }
                            _ => break,
                        }
                    }
                }
                for mut ticket in pending {
                    let _ = ticket.wait();
                }
            });
        }
    });
    engine.drain();
    let wall_s = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let after = engine.metrics();
    let (submitted, completed, shed, timed_out, failed, lookups) = delta(&after, &before);
    OpenLoopReport {
        offered_qps: process.rate_rps(),
        submitted,
        completed,
        shed,
        timed_out,
        failed,
        lookups,
        wall_s,
        achieved_qps: completed as f64 / wall_s,
        latency: after.latency,
        queue_wait: after.queue_wait,
    }
}

/// Replays `trace` closed-loop across `concurrency` caller threads
/// (request *i* goes to caller `i % concurrency`), each using
/// [`Client::call`] on the default tenant — submit plus wait — before
/// issuing its next request.
///
/// # Errors
///
/// Returns the first error any caller hit.
///
/// # Panics
///
/// Panics if `concurrency` is zero.
pub fn run_closed_loop(
    engine: &ShardedEngine,
    trace: &Trace,
    concurrency: usize,
) -> Result<ClosedLoopReport, ServeError> {
    assert!(concurrency > 0, "need at least one caller");
    let client = engine.client(TenantId::DEFAULT).expect("default tenant always exists");
    let before = engine.metrics();
    let first_error: std::sync::Mutex<Option<ServeError>> = std::sync::Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for caller in 0..concurrency {
            let first_error = &first_error;
            let client = &client;
            scope.spawn(move || {
                for request in trace.requests.iter().skip(caller).step_by(concurrency) {
                    if first_error.lock().expect("error lock").is_some() {
                        return;
                    }
                    let outcome = client.call(request).and_then(Response::into_parts);
                    if let Err(e) = outcome {
                        let mut slot = first_error.lock().expect("error lock");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner().expect("error lock") {
        return Err(e);
    }
    let wall_s = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let after = engine.metrics();
    let (_, completed, _, _, _, lookups) = delta(&after, &before);
    Ok(ClosedLoopReport {
        concurrency,
        completed,
        lookups,
        wall_s,
        achieved_qps: completed as f64 / wall_s,
        lookups_per_second: lookups as f64 / wall_s,
        latency: after.latency,
    })
}

/// Result of an open-loop run driven over the TCP front-end
/// ([`run_open_loop_net`]). Unlike [`OpenLoopReport`], whose latency
/// summary comes from the engine's server-side histograms, `latency`
/// here is measured **client-side**: submit-to-receipt across the
/// wire, per run — the number the protocol-overhead gate compares
/// against the in-process path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetOpenLoopReport {
    /// Offered load in requests per second.
    pub offered_qps: f64,
    /// Requests put on the wire.
    pub submitted: u64,
    /// Requests served (RESPONSE frames).
    pub completed: u64,
    /// Requests shed at admission (lane-full / quota / SLO error
    /// frames).
    pub shed: u64,
    /// Requests that missed their deadline (TIMED_OUT error frames).
    pub timed_out: u64,
    /// Requests that hit a store error or another terminal failure.
    pub failed: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_s: f64,
    /// Served requests per second.
    pub achieved_qps: f64,
    /// Client-measured submit-to-receipt latency of served requests,
    /// for this run only.
    pub latency: LatencySummary,
}

/// As [`run_open_loop_with`], but over the wire: each reactor opens its
/// own [`NetClient`] connection to a
/// [`NetServer`](crate::net::NetServer) at `addr` and drives the same
/// paced schedule with pipelined `NO_PAYLOAD` submissions, reaping
/// completions out of order. Latency is measured client-side per
/// request, so the report captures protocol + transport overhead on
/// top of engine time.
///
/// # Errors
///
/// Fails if a connection cannot be established or dies mid-run.
pub fn run_open_loop_net(
    addr: SocketAddr,
    tenant: TenantId,
    trace: &Trace,
    process: &ArrivalProcess,
    seed: u64,
    config: LoadGenConfig,
) -> std::io::Result<NetOpenLoopReport> {
    let schedule = process.schedule(trace.requests.len(), seed);
    let reactors = config.reactors.min(trace.requests.len()).max(1);
    let clients: Vec<NetClient> = (0..reactors)
        .map(|_| NetClient::connect(addr, tenant, 0))
        .collect::<std::io::Result<_>>()?;
    #[derive(Default)]
    struct Tally {
        completed: u64,
        shed: u64,
        timed_out: u64,
        failed: u64,
        latency: LatencyHistogram,
    }
    impl Tally {
        fn count(&mut self, response: &crate::net::NetResponse) {
            if response.is_ok() {
                self.completed += 1;
                self.latency.record(response.e2e);
            } else if response.is_shed() {
                self.shed += 1;
            } else if response.is_timed_out() {
                self.timed_out += 1;
            } else {
                self.failed += 1;
            }
        }
    }
    let start = Instant::now();
    let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .enumerate()
            .map(|(reactor, client)| {
                let schedule = &schedule;
                scope.spawn(move || -> std::io::Result<Tally> {
                    let mut tally = Tally::default();
                    let mut pending: VecDeque<NetTicket> = VecDeque::new();
                    for i in (reactor..trace.requests.len()).step_by(reactors) {
                        pace_until(start, schedule[i]);
                        pending.push_back(client.submit_discarding(&trace.requests[i])?);
                        while let Some(front) = pending.front_mut() {
                            match front.try_take()? {
                                Some(response) => {
                                    tally.count(&response);
                                    pending.pop_front();
                                }
                                None => break,
                            }
                        }
                    }
                    for mut ticket in pending {
                        tally.count(&ticket.wait()?);
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("net reactor panicked")).collect()
    });
    let wall_s = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    for client in clients {
        let _ = client.close();
    }
    let mut total = Tally::default();
    for tally in tallies {
        let t = tally?;
        total.completed += t.completed;
        total.shed += t.shed;
        total.timed_out += t.timed_out;
        total.failed += t.failed;
        total.latency.merge(&t.latency);
    }
    Ok(NetOpenLoopReport {
        offered_qps: process.rate_rps(),
        submitted: trace.requests.len() as u64,
        completed: total.completed,
        shed: total.shed,
        timed_out: total.timed_out,
        failed: total.failed,
        wall_s,
        achieved_qps: total.completed as f64 / wall_s,
        latency: total.latency.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::queue::ShedPolicy;
    use crate::tenant::TenantSpec;
    use bandana_core::{BandanaConfig, BandanaStore};
    use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};

    fn build_engine(seed: u64, config: ServeConfig) -> (ShardedEngine, TraceGenerator) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, seed);
        let training = generator.generate_requests(200);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let store = BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default().with_cache_vectors(256),
        )
        .expect("build store");
        (ShardedEngine::new(store, config).expect("engine"), generator)
    }

    #[test]
    fn closed_loop_serves_everything() {
        let (engine, mut generator) = build_engine(1, ServeConfig::default().with_shards(2));
        let trace = generator.generate_requests(120);
        let report = run_closed_loop(&engine, &trace, 4).expect("closed loop");
        assert_eq!(report.completed, 120);
        assert_eq!(report.lookups as usize, trace.total_lookups());
        assert!(report.achieved_qps > 0.0);
        assert!(report.latency.p99_s >= report.latency.p50_s);
    }

    #[test]
    fn open_loop_below_saturation_completes_everything() {
        let (engine, mut generator) = build_engine(2, ServeConfig::default().with_shards(2));
        let trace = generator.generate_requests(60);
        let process = ArrivalProcess::Poisson { rate_rps: 2_000.0 };
        let report = run_open_loop(&engine, &trace, &process, 7);
        assert_eq!(report.submitted, 60);
        assert_eq!(report.completed, 60);
        assert_eq!(report.shed, 0);
        assert!((report.offered_qps - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_open_loop_sheds_and_terminates() {
        let (engine, mut generator) = build_engine(
            3,
            ServeConfig::default()
                .with_shards(2)
                .with_queue_capacity(4)
                .with_shed_policy(ShedPolicy::DropNewest),
        );
        let trace = generator.generate_requests(500);
        // An absurd offered rate: far beyond what two shards serve.
        let process = ArrivalProcess::Uniform { rate_rps: 5_000_000.0 };
        let report = run_open_loop(&engine, &trace, &process, 7);
        assert_eq!(report.submitted, 500);
        assert_eq!(
            report.completed + report.shed + report.timed_out + report.failed,
            500,
            "every request accounted"
        );
        assert!(report.shed > 0, "saturation must shed");
        assert!(report.completed > 0, "accepted requests still served");
        assert_eq!(engine.metrics().outstanding, 0, "engine drained");
    }

    #[test]
    fn reactor_pool_size_is_configurable_down_to_one() {
        let (engine, mut generator) = build_engine(5, ServeConfig::default().with_shards(2));
        let trace = generator.generate_requests(40);
        let process = ArrivalProcess::Poisson { rate_rps: 4_000.0 };
        let report = run_open_loop_with(
            &engine,
            &[TenantId::DEFAULT],
            &trace,
            &process,
            11,
            LoadGenConfig { reactors: 1 },
        );
        assert_eq!(report.submitted, 40);
        assert_eq!(report.completed, 40);
        // A degenerate pool request is clamped, not honoured blindly.
        let report = run_open_loop_with(
            &engine,
            &[TenantId::DEFAULT],
            &trace,
            &process,
            12,
            LoadGenConfig { reactors: 0 },
        );
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn tenant_open_loop_splits_the_offered_load_round_robin() {
        let (engine, mut generator) = build_engine(
            4,
            ServeConfig::default()
                .with_shards(2)
                .with_tenant(TenantId(1), TenantSpec::new(3))
                .with_tenant(TenantId(2), TenantSpec::new(1)),
        );
        let trace = generator.generate_requests(80);
        let process = ArrivalProcess::Poisson { rate_rps: 2_000.0 };
        let report =
            run_open_loop_tenants(&engine, &[TenantId(1), TenantId(2)], &trace, &process, 9);
        assert_eq!(report.submitted, 80);
        assert_eq!(report.completed, 80);
        let m = engine.metrics();
        let t1 = m.per_tenant.iter().find(|t| t.id == TenantId(1)).expect("tenant 1");
        let t2 = m.per_tenant.iter().find(|t| t.id == TenantId(2)).expect("tenant 2");
        // Round-robin split: each tenant submitted half the trace.
        assert_eq!(t1.submitted, 40);
        assert_eq!(t2.submitted, 40);
        assert_eq!(t1.completed + t2.completed, 80);
        // Default tenant untouched.
        assert_eq!(m.per_tenant[0].submitted, 0);
    }

    #[test]
    fn socket_mode_completes_everything_below_saturation() {
        use crate::net::{NetServer, NetServerConfig};
        use std::sync::Arc;
        let (engine, mut generator) = build_engine(6, ServeConfig::default().with_shards(2));
        let engine = Arc::new(engine);
        let server =
            NetServer::start(Arc::clone(&engine), NetServerConfig::default()).expect("server");
        let trace = generator.generate_requests(60);
        let process = ArrivalProcess::Poisson { rate_rps: 2_000.0 };
        let report = run_open_loop_net(
            server.local_addr(),
            TenantId::DEFAULT,
            &trace,
            &process,
            7,
            LoadGenConfig { reactors: 2 },
        )
        .expect("net run");
        assert_eq!(report.submitted, 60);
        assert_eq!(report.completed, 60);
        assert_eq!(report.shed + report.timed_out + report.failed, 0);
        assert_eq!(report.latency.count, 60, "client-side latency per served request");
        assert!(report.latency.p99_s >= report.latency.p50_s);
        server.shutdown();
        engine.drain();
        assert_eq!(engine.metrics().completed, 60, "server-side view agrees");
    }
}
