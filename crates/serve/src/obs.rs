//! Observability: flight-recorder request tracing, Prometheus-style
//! metrics exposition, and the control-plane audit log.
//!
//! Three layers, one module:
//!
//! 1. **Flight recorder** — sampled (1-in-N, default off) per-request
//!    lifecycle events written into preallocated per-shard
//!    [`TraceRing`]s. Recording is allocation-free: a [`TraceEvent`] is
//!    a `Copy` struct, and a ring push is an indexed overwrite into a
//!    buffer sized at construction, so sampling can stay on without
//!    breaking the engine's zero-allocation steady-state guarantee.
//!    Traces export two ways: [`chrome_trace`] renders Chrome
//!    trace-event JSON (load it in Perfetto / `chrome://tracing`), and
//!    [`TraceRecorder::request_traces`] yields structured
//!    [`RequestTrace`] records for tests.
//! 2. **Prometheus exposition** — [`render_prometheus`] encodes an
//!    [`EngineMetrics`] plus a live [`EngineSnapshot`] as Prometheus
//!    text format with stable `bandana_*` metric names (per-shard,
//!    per-tenant, windowed, shed-breakdown, pool, endurance, and
//!    control-tick series). The admin plane's `GET /metrics`
//!    ([`AdminServer`](crate::net::AdminServer)) serves this string
//!    verbatim.
//! 3. **Audit log** — every [`Action`] the metrics bus applies becomes
//!    an [`AuditEvent`] (tick, controller name, the action, and the
//!    snapshot fields that caused it) in a bounded [`AuditLog`] ring
//!    surfaced through [`EngineMetrics::audit`], so an SLO trip at tick
//!    212 is explainable — and assertable — after the fact.
//!
//! The [`render_tenant_table`] / [`render_audit_log`] helpers exist so
//! the examples share one human-readable rendering instead of each
//! hand-rolling a table.

use crate::control::{Action, EngineSnapshot};
use crate::engine::EngineMetrics;
use crate::hist::{fmt_secs, LatencySummary};
use crate::tenant::{TenantId, TenantMetrics};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default number of [`TraceEvent`] slots in each per-shard ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;
/// Default number of [`AuditEvent`]s the bounded audit ring retains.
pub const DEFAULT_AUDIT_CAPACITY: usize = 256;

/// Flight-recorder configuration (see
/// [`ServeConfig::with_trace`](crate::ServeConfig::with_trace)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample one request in `sample_every` admissions; `0` disables
    /// tracing entirely (the default — untraced requests never touch
    /// the rings).
    pub sample_every: u64,
    /// Per-shard ring capacity in events; once full, the oldest events
    /// are overwritten.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 0, capacity: DEFAULT_TRACE_CAPACITY }
    }
}

impl TraceConfig {
    /// A config sampling one request in `sample_every` with the default
    /// ring capacity.
    pub fn sampled(sample_every: u64) -> Self {
        TraceConfig { sample_every, ..TraceConfig::default() }
    }

    /// Whether any request will ever be sampled.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled() && self.capacity == 0 {
            return Err("trace sampling is enabled but the ring capacity is 0".into());
        }
        Ok(())
    }
}

/// A request-lifecycle stage recorded by the flight recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The request passed admission (breaker, quota) and got a trace id.
    #[default]
    Admitted,
    /// One shard's part of the request entered its tenant lane.
    LaneEnqueued,
    /// A shard worker drained the part into a micro-batch.
    BatchDrained,
    /// The batch's block reads were submitted to the simulated device.
    DeviceSubmit,
    /// The simulated device finished the batch's reads.
    DeviceComplete,
    /// Terminal: every part finished and the request completed.
    Completed,
    /// Terminal: the request was shed (lane overflow or cancellation).
    Shed,
    /// Terminal: the request's deadline expired before service.
    TimedOut,
}

impl TraceEventKind {
    /// The stable name used in the Chrome trace export.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Admitted => "admitted",
            TraceEventKind::LaneEnqueued => "lane-enqueued",
            TraceEventKind::BatchDrained => "batch-drained",
            TraceEventKind::DeviceSubmit => "device-submit",
            TraceEventKind::DeviceComplete => "device-complete",
            TraceEventKind::Completed => "completed",
            TraceEventKind::Shed => "shed",
            TraceEventKind::TimedOut => "timed-out",
        }
    }

    /// Whether this event ends a request's lifecycle (exactly one per
    /// sampled request).
    pub fn is_terminal(self) -> bool {
        matches!(self, TraceEventKind::Completed | TraceEventKind::Shed | TraceEventKind::TimedOut)
    }
}

/// One flight-recorder event: plain `Copy` data, so recording never
/// allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceEvent {
    /// Nonzero trace id assigned at admission (`0` is never recorded).
    pub request: u64,
    /// Lifecycle stage.
    pub kind: TraceEventKind,
    /// Nanoseconds since the engine started.
    pub at_ns: u64,
    /// Span duration in nanoseconds (`0` for instant events).
    pub dur_ns: u64,
    /// Shard the event happened on (`0` for engine-level events).
    pub shard: u32,
    /// Tenant the request belongs to (runtime index).
    pub tenant: u32,
    /// Per-shard batch sequence number (`0` outside batch processing).
    pub batch: u64,
}

/// A preallocated fixed-capacity event ring: pushes are indexed
/// overwrites (allocation-free), and once full the oldest events go.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<TraceEvent>,
    next: usize,
    recorded: u64,
}

impl TraceRing {
    /// A ring with `capacity` preallocated slots (`0` drops everything).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing { slots: vec![TraceEvent::default(); capacity], next: 0, recorded: 0 }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        usize::try_from(self.recorded).unwrap_or(usize::MAX).min(self.slots.len())
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wrap-around overwrites.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len() as u64
    }

    /// Records one event, overwriting the oldest when full. Never
    /// allocates.
    pub fn push(&mut self, event: TraceEvent) {
        self.recorded += 1;
        let cap = self.slots.len();
        if cap == 0 {
            return;
        }
        self.slots[self.next] = event;
        self.next = (self.next + 1) % cap;
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let len = self.len();
        if self.recorded <= self.slots.len() as u64 {
            self.slots[..len].to_vec()
        } else {
            let mut out = Vec::with_capacity(len);
            out.extend_from_slice(&self.slots[self.next..]);
            out.extend_from_slice(&self.slots[..self.next]);
            out
        }
    }
}

/// The engine-wide flight recorder: a deterministic 1-in-N admission
/// sampler plus one [`TraceRing`] per shard.
#[derive(Debug)]
pub struct TraceRecorder {
    rings: Vec<Mutex<TraceRing>>,
    sample_every: u64,
    admissions: AtomicU64,
}

impl TraceRecorder {
    /// A recorder for `num_rings` shards. When the config is disabled
    /// the rings are zero-capacity, so the recorder holds no memory.
    pub fn new(config: TraceConfig, num_rings: usize) -> Self {
        let capacity = if config.enabled() { config.capacity } else { 0 };
        TraceRecorder {
            rings: (0..num_rings.max(1))
                .map(|_| Mutex::new(TraceRing::with_capacity(capacity)))
                .collect(),
            sample_every: config.sample_every,
            admissions: AtomicU64::new(0),
        }
    }

    /// Whether sampling is on.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Draws the next admission's sampling decision: a nonzero trace id
    /// for every `sample_every`-th admission, `0` otherwise. The
    /// counter-based draw is deterministic — the k-th sampled admission
    /// always gets id `k`.
    pub fn sample(&self) -> u64 {
        if self.sample_every == 0 {
            return 0;
        }
        let n = self.admissions.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.sample_every) {
            n / self.sample_every + 1
        } else {
            0
        }
    }

    /// Records `event` into ring `ring % num_rings`. A `request` id of
    /// `0` (unsampled) is ignored. Allocation-free.
    pub fn record(&self, ring: usize, event: TraceEvent) {
        if event.request == 0 || !self.enabled() {
            return;
        }
        let ring = &self.rings[ring % self.rings.len()];
        ring.lock().expect("trace ring poisoned").push(event);
    }

    /// Every held event across all rings, sorted by timestamp.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().expect("trace ring poisoned").events());
        }
        all.sort_by_key(|e| (e.at_ns, e.request, e.kind.is_terminal()));
        all
    }

    /// Events lost to ring wrap-around, summed across rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.lock().expect("trace ring poisoned").dropped()).sum()
    }

    /// Groups the held events into per-request [`RequestTrace`]s,
    /// ordered by trace id. Requests whose early events were overwritten
    /// still appear with whatever survived.
    pub fn request_traces(&self) -> Vec<RequestTrace> {
        let events = self.events();
        let mut traces: Vec<RequestTrace> = Vec::new();
        for event in events {
            match traces.iter_mut().find(|t| t.id == event.request) {
                Some(trace) => trace.events.push(event),
                None => traces.push(RequestTrace {
                    id: event.request,
                    tenant: event.tenant,
                    events: vec![event],
                }),
            }
        }
        traces.sort_by_key(|t| t.id);
        traces
    }

    /// Renders the held events as Chrome trace-event JSON (see
    /// [`chrome_trace`]).
    pub fn dump_chrome_trace(&self) -> String {
        chrome_trace(&self.events())
    }
}

/// One sampled request's surviving lifecycle events, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The trace id assigned at admission (nonzero).
    pub id: u64,
    /// Tenant runtime index the request belonged to.
    pub tenant: u32,
    /// The events, in timestamp order.
    pub events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// The trace's terminal event kind, if one survived in the ring.
    pub fn terminal(&self) -> Option<TraceEventKind> {
        self.events.iter().rev().map(|e| e.kind).find(|k| k.is_terminal())
    }

    /// How many terminal events the trace carries (the engine records
    /// exactly one per request).
    pub fn terminal_count(&self) -> usize {
        self.events.iter().filter(|e| e.kind.is_terminal()).count()
    }
}

/// Renders events as Chrome trace-event JSON: a `{"traceEvents":[...]}`
/// document loadable in Perfetto or `chrome://tracing`. Shards map to
/// `pid`, tenants to `tid`, and timestamps to microseconds since engine
/// start; the trace id and batch number ride in `args`.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.at_ns as f64 / 1e3;
        let dur_us = e.dur_ns as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\
             \"pid\":{},\"tid\":{},\"args\":{{\"request\":{},\"batch\":{}}}}}",
            e.kind.name(),
            e.shard,
            e.tenant,
            e.request,
            e.batch
        );
    }
    out.push_str("]}\n");
    out
}

/// One control-plane decision, captured as it was applied: which
/// controller acted, what it did, and the snapshot evidence it acted on.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// The bus tick the action was applied on.
    pub tick: u64,
    /// Engine uptime at the snapshot the controller observed.
    pub uptime: Duration,
    /// [`Controller::name`](crate::Controller::name) of the author.
    pub controller: String,
    /// The applied [`Action`], rendered.
    pub action: String,
    /// The tenant the action targeted, when it targeted one.
    pub tenant: Option<TenantId>,
    /// The snapshot fields that explain the decision.
    pub cause: String,
}

impl AuditEvent {
    /// Captures `action` (authored by `controller`) with the snapshot
    /// evidence behind it.
    pub fn from_action(controller: &str, action: &Action, snapshot: &EngineSnapshot) -> Self {
        let (action_s, tenant, cause) = match action {
            Action::SetSloShed { tenant, shed } => {
                let t = snapshot.tenants.iter().find(|t| t.id == *tenant);
                let cause = match (shed, t) {
                    (true, Some(t)) => format!(
                        "recent-window p99 {} over the {} budget ({} samples, {} queued, \
                         {} outstanding)",
                        fmt_secs(t.recent.p99_s),
                        t.slo_p99.map_or_else(|| "?".into(), |d| fmt_secs(d.as_secs_f64())),
                        t.recent.count,
                        t.queued,
                        t.outstanding,
                    ),
                    (false, Some(t)) => {
                        format!("hold expired with {} samples in the recent window", t.recent.count)
                    }
                    (_, None) => "tenant absent from the snapshot".into(),
                };
                (format!("SetSloShed{{tenant: {tenant}, shed: {shed}}}"), Some(*tenant), cause)
            }
            Action::SetLaneCap { tenant, cap } => (
                format!("SetLaneCap{{tenant: {tenant}, cap: {cap}}}"),
                Some(*tenant),
                format!("{} requests queued engine-wide", snapshot.queued()),
            ),
            Action::SetBatchWindow { window } => (
                format!("SetBatchWindow{{window: {window:?}}}"),
                None,
                format!(
                    "previous window {:?}, {} requests queued",
                    snapshot.batch_window,
                    snapshot.queued()
                ),
            ),
            Action::SetPolicy { table, policy, shadow_multiplier } => (
                format!(
                    "SetPolicy{{table: {table}, policy: {policy:?}, \
                     shadow_multiplier: {shadow_multiplier}}}"
                ),
                None,
                "miniature-cache epoch retune".into(),
            ),
            Action::SetCachePartition { table, entries, curve } => {
                // The evidence IS the curve: the sampled (size, hit-rate)
                // points the allocator weighed when it granted this table
                // its new share.
                let points: Vec<String> =
                    curve.iter().map(|&(s, h)| format!("{s}:{h:.3}")).collect();
                let previous = snapshot
                    .cache_partition
                    .iter()
                    .find(|p| p.table == *table)
                    .map_or_else(|| "unknown".into(), |p| p.capacity_entries.to_string());
                (
                    format!("SetCachePartition{{table: {table}, entries: {entries}}}"),
                    None,
                    format!("from {previous} entries; hit-rate curve [{}]", points.join(", ")),
                )
            }
            Action::ApplyLayout {
                table,
                order,
                observed_blocks_per_request,
                ideal_blocks_per_request,
            } => (
                format!("ApplyLayout{{table: {table}, vectors: {}}}", order.len()),
                None,
                format!(
                    "observed {observed_blocks_per_request:.2} blocks/request vs ideal \
                     {ideal_blocks_per_request:.2} over the window"
                ),
            ),
            // `Action` is non_exhaustive; future variants still audit.
            #[allow(unreachable_patterns)]
            other => (format!("{other:?}"), None, String::new()),
        };
        AuditEvent {
            tick: snapshot.tick,
            uptime: snapshot.uptime,
            controller: controller.to_string(),
            action: action_s,
            tenant,
            cause,
        }
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[tick {:>5} +{}] {:<14} {}",
            self.tick,
            fmt_secs(self.uptime.as_secs_f64()),
            self.controller,
            self.action
        )?;
        if !self.cause.is_empty() {
            write!(f, " — {}", self.cause)?;
        }
        Ok(())
    }
}

/// A bounded ring of [`AuditEvent`]s: once `capacity` is reached the
/// oldest entries are evicted.
#[derive(Debug)]
pub struct AuditLog {
    events: Mutex<VecDeque<AuditEvent>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl AuditLog {
    /// A log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: AuditEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut events = self.events.lock().expect("audit log poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<AuditEvent> {
        self.events.lock().expect("audit log poisoned").iter().cloned().collect()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }
}

fn put(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

fn head(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Emits a [`LatencySummary`] as a Prometheus summary: quantile samples
/// plus `_sum`/`_count`, and a `_max` gauge alongside.
fn put_summary(out: &mut String, name: &str, labels: &str, s: &LatencySummary) {
    let sep = if labels.is_empty() { String::new() } else { format!("{labels},") };
    for (q, v) in [("0.5", s.p50_s), ("0.95", s.p95_s), ("0.99", s.p99_s), ("0.999", s.p999_s)] {
        put(out, name, &format!("{sep}quantile=\"{q}\""), v);
    }
    put(out, &format!("{name}_sum"), labels, s.mean_s * s.count as f64);
    put(out, &format!("{name}_count"), labels, s.count as f64);
    put(out, &format!("{name}_max"), labels, s.max_s);
}

/// Renders the engine's metrics and a live snapshot in the Prometheus
/// text exposition format.
///
/// Metric names are stable (`bandana_*`, documented in the ROADMAP's
/// metric-name schema): engine counters, latency summaries per stage,
/// batching and device-queue series, block-buffer pool counters, cache
/// behaviour, per-shard series (including the `bytes_written` /
/// `drive_writes` endurance pair), per-tenant QoS series with the
/// shed-reason breakdown and the recent-window summaries, and the
/// control-plane tick/action/audit counters with live lane depths from
/// the snapshot. The admin plane's `GET /metrics`
/// ([`AdminServer`](crate::net::AdminServer)) serves this verbatim —
/// byte-identical, pinned by a test.
pub fn render_prometheus(metrics: &EngineMetrics, snapshot: &EngineSnapshot) -> String {
    let m = metrics;
    let mut out = String::new();

    // Engine-wide request counters.
    head(&mut out, "bandana_requests_submitted_total", "counter", "Requests admitted for service.");
    put(&mut out, "bandana_requests_submitted_total", "", m.submitted as f64);
    head(&mut out, "bandana_requests_completed_total", "counter", "Requests fully served.");
    put(&mut out, "bandana_requests_completed_total", "", m.completed as f64);
    head(&mut out, "bandana_requests_shed_total", "counter", "Requests shed by overload control.");
    put(&mut out, "bandana_requests_shed_total", "", m.shed as f64);
    head(&mut out, "bandana_requests_timed_out_total", "counter", "Requests past their deadline.");
    put(&mut out, "bandana_requests_timed_out_total", "", m.timed_out as f64);
    head(&mut out, "bandana_requests_failed_total", "counter", "Requests failed by store errors.");
    put(&mut out, "bandana_requests_failed_total", "", m.failed as f64);
    head(&mut out, "bandana_requests_outstanding", "gauge", "Requests currently in flight.");
    put(&mut out, "bandana_requests_outstanding", "", m.outstanding as f64);
    head(&mut out, "bandana_lookups_total", "counter", "Vector lookups served.");
    put(&mut out, "bandana_lookups_total", "", m.lookups as f64);

    // Latency: one summary per measured stage, plus the served-request
    // breakdown means.
    head(
        &mut out,
        "bandana_latency_seconds",
        "summary",
        "Per-request latency by stage (e2e, queue_wait, service, device).",
    );
    put_summary(&mut out, "bandana_latency_seconds", "stage=\"e2e\"", &m.latency);
    put_summary(&mut out, "bandana_latency_seconds", "stage=\"queue_wait\"", &m.queue_wait);
    put_summary(&mut out, "bandana_latency_seconds", "stage=\"service\"", &m.service);
    put_summary(&mut out, "bandana_latency_seconds", "stage=\"device\"", &m.device_time);
    head(
        &mut out,
        "bandana_e2e_latency_seconds",
        "summary",
        "End-to-end latency from the cumulative log-bucketed histogram.",
    );
    put_summary(&mut out, "bandana_e2e_latency_seconds", "", &m.e2e_histogram.summary());
    head(
        &mut out,
        "bandana_latency_breakdown_mean_seconds",
        "gauge",
        "Served-request mean by component (queue_wait, device, service).",
    );
    put(
        &mut out,
        "bandana_latency_breakdown_mean_seconds",
        "component=\"queue_wait\"",
        m.breakdown.queue_wait.mean_s,
    );
    put(
        &mut out,
        "bandana_latency_breakdown_mean_seconds",
        "component=\"device\"",
        m.breakdown.device.mean_s,
    );
    put(
        &mut out,
        "bandana_latency_breakdown_mean_seconds",
        "component=\"service\"",
        m.breakdown.service.mean_s,
    );

    // Micro-batching and the simulated device queue.
    head(&mut out, "bandana_batches_total", "counter", "Micro-batches processed.");
    put(&mut out, "bandana_batches_total", "", m.batching.batches as f64);
    head(&mut out, "bandana_batched_requests_total", "counter", "Requests carried by batches.");
    put(&mut out, "bandana_batched_requests_total", "", m.batching.batched_requests as f64);
    head(&mut out, "bandana_largest_batch", "gauge", "Largest batch ever drained.");
    put(&mut out, "bandana_largest_batch", "", m.batching.largest_batch as f64);
    head(&mut out, "bandana_mean_batch", "gauge", "Mean requests per batch.");
    put(&mut out, "bandana_mean_batch", "", m.batching.mean_batch());
    head(&mut out, "bandana_device_reads_submitted_total", "counter", "Reads sent to the device.");
    put(&mut out, "bandana_device_reads_submitted_total", "", m.batching.depth.submitted as f64);
    head(&mut out, "bandana_device_reads_completed_total", "counter", "Reads the device finished.");
    put(&mut out, "bandana_device_reads_completed_total", "", m.batching.depth.completed as f64);
    head(&mut out, "bandana_device_queue_depth_peak", "gauge", "Highest device depth observed.");
    put(&mut out, "bandana_device_queue_depth_peak", "", f64::from(m.batching.depth.peak_depth));
    head(&mut out, "bandana_device_queue_depth_mean", "gauge", "Mean depth completed reads saw.");
    put(&mut out, "bandana_device_queue_depth_mean", "", m.batching.depth.mean_depth());
    head(&mut out, "bandana_device_busy_seconds_total", "counter", "Simulated device-busy time.");
    put(&mut out, "bandana_device_busy_seconds_total", "", m.batching.depth.busy_s);

    // Block-buffer pool.
    head(&mut out, "bandana_pool_acquires_total", "counter", "Block buffers handed out.");
    put(&mut out, "bandana_pool_acquires_total", "", m.pool.acquires as f64);
    head(&mut out, "bandana_pool_reuses_total", "counter", "Acquires served by recycling.");
    put(&mut out, "bandana_pool_reuses_total", "", m.pool.reuses as f64);
    head(&mut out, "bandana_pool_allocs_total", "counter", "Acquires that allocated fresh.");
    put(&mut out, "bandana_pool_allocs_total", "", m.pool.allocs as f64);
    head(&mut out, "bandana_pool_retained", "gauge", "Buffers currently retained.");
    put(&mut out, "bandana_pool_retained", "", m.pool.retained as f64);

    // Cache behaviour.
    head(&mut out, "bandana_cache_lookups_total", "counter", "Cache lookups.");
    put(&mut out, "bandana_cache_lookups_total", "", m.cache.lookups as f64);
    head(&mut out, "bandana_cache_hits_total", "counter", "Lookups served from DRAM.");
    put(&mut out, "bandana_cache_hits_total", "", m.cache.hits as f64);
    head(&mut out, "bandana_cache_misses_total", "counter", "Lookups that went to NVM.");
    put(&mut out, "bandana_cache_misses_total", "", m.cache.misses as f64);
    head(&mut out, "bandana_cache_block_reads_total", "counter", "NVM block reads issued.");
    put(&mut out, "bandana_cache_block_reads_total", "", m.cache.block_reads as f64);
    head(&mut out, "bandana_cache_prefetches_admitted_total", "counter", "Prefetches admitted.");
    put(
        &mut out,
        "bandana_cache_prefetches_admitted_total",
        "",
        m.cache.prefetches_admitted as f64,
    );
    head(
        &mut out,
        "bandana_cache_prefetch_hits_total",
        "counter",
        "Admitted prefetches later hit.",
    );
    put(&mut out, "bandana_cache_prefetch_hits_total", "", m.cache.prefetch_hits as f64);
    head(&mut out, "bandana_cache_evictions_total", "counter", "Cache evictions.");
    put(&mut out, "bandana_cache_evictions_total", "", m.cache.evictions as f64);
    head(&mut out, "bandana_cache_hit_rate", "gauge", "Hit fraction over all lookups.");
    put(&mut out, "bandana_cache_hit_rate", "", m.cache.hit_rate());

    // Per-shard series, including the endurance pair.
    head(&mut out, "bandana_shard_requests_total", "counter", "Requests a shard served parts of.");
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_requests_total",
            &shard_label(s.shard),
            s.served_requests as f64,
        );
    }
    head(&mut out, "bandana_shard_lookups_total", "counter", "Vector lookups per shard.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_lookups_total", &shard_label(s.shard), s.lookups as f64);
    }
    head(&mut out, "bandana_shard_tables", "gauge", "Tables owned by the shard.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_tables", &shard_label(s.shard), s.tables.len() as f64);
    }
    head(&mut out, "bandana_shard_latency_seconds", "summary", "Per-shard service/device latency.");
    for s in &m.per_shard {
        let shard = shard_label(s.shard);
        put_summary(
            &mut out,
            "bandana_shard_latency_seconds",
            &format!("{shard},stage=\"service\""),
            &s.service,
        );
        put_summary(
            &mut out,
            "bandana_shard_latency_seconds",
            &format!("{shard},stage=\"device\""),
            &s.device_time,
        );
    }
    head(&mut out, "bandana_shard_cache_hit_rate", "gauge", "Per-shard cache hit fraction.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_cache_hit_rate", &shard_label(s.shard), s.cache.hit_rate());
    }
    head(&mut out, "bandana_shard_device_reads_total", "counter", "Block reads per shard device.");
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_device_reads_total",
            &shard_label(s.shard),
            s.device_reads as f64,
        );
    }
    head(&mut out, "bandana_shard_batches_total", "counter", "Micro-batches per shard.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_batches_total", &shard_label(s.shard), s.batches as f64);
    }
    head(&mut out, "bandana_shard_largest_batch", "gauge", "Largest batch per shard.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_largest_batch", &shard_label(s.shard), s.largest_batch as f64);
    }
    head(&mut out, "bandana_shard_queue_depth_mean", "gauge", "Mean device depth per shard.");
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_queue_depth_mean",
            &shard_label(s.shard),
            s.depth.mean_depth(),
        );
    }
    head(&mut out, "bandana_shard_queue_depth_peak", "gauge", "Peak device depth per shard.");
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_queue_depth_peak",
            &shard_label(s.shard),
            f64::from(s.depth.peak_depth),
        );
    }
    head(&mut out, "bandana_shard_capacity_blocks", "gauge", "Device capacity in blocks.");
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_capacity_blocks",
            &shard_label(s.shard),
            s.capacity_blocks as f64,
        );
    }
    head(
        &mut out,
        "bandana_shard_bytes_written_total",
        "counter",
        "Bytes written to the shard's device (endurance).",
    );
    for s in &m.per_shard {
        put(
            &mut out,
            "bandana_shard_bytes_written_total",
            &shard_label(s.shard),
            s.bytes_written as f64,
        );
    }
    head(&mut out, "bandana_shard_drive_writes", "gauge", "Full drive writes so far (endurance).");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_drive_writes", &shard_label(s.shard), s.drive_writes);
    }
    head(&mut out, "bandana_shard_pool_reuse_rate", "gauge", "Pool reuse fraction per shard.");
    for s in &m.per_shard {
        put(&mut out, "bandana_shard_pool_reuse_rate", &shard_label(s.shard), s.pool.reuse_rate());
    }

    // Per-tenant QoS series.
    head(&mut out, "bandana_tenant_weight", "gauge", "Registered DRR weight.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_weight", &tenant_label(t), f64::from(t.weight));
    }
    head(&mut out, "bandana_tenant_priority", "gauge", "Priority class index (0 = high).");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_priority", &tenant_label(t), t.priority_class.index() as f64);
    }
    head(&mut out, "bandana_tenant_admission_quota", "gauge", "In-flight quota (-1 = none).");
    for t in &m.per_tenant {
        let quota = t.admission_quota.map_or(-1.0, |q| q as f64);
        put(&mut out, "bandana_tenant_admission_quota", &tenant_label(t), quota);
    }
    head(
        &mut out,
        "bandana_tenant_slo_budget_seconds",
        "gauge",
        "Recent-window p99 budget (-1 = none).",
    );
    for t in &m.per_tenant {
        let budget = t.slo_p99.map_or(-1.0, |d| d.as_secs_f64());
        put(&mut out, "bandana_tenant_slo_budget_seconds", &tenant_label(t), budget);
    }
    head(&mut out, "bandana_tenant_submitted_total", "counter", "Admitted requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_submitted_total", &tenant_label(t), t.submitted as f64);
    }
    head(&mut out, "bandana_tenant_completed_total", "counter", "Completed requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_completed_total", &tenant_label(t), t.completed as f64);
    }
    head(&mut out, "bandana_tenant_shed_total", "counter", "Shed requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_shed_total", &tenant_label(t), t.shed as f64);
    }
    head(
        &mut out,
        "bandana_tenant_shed_reason_total",
        "counter",
        "Shed requests by reason (lane_full, quota, slo, reclaimed).",
    );
    for t in &m.per_tenant {
        let label = tenant_label(t);
        for (reason, count) in [
            ("lane_full", t.shed_reasons.lane_full),
            ("quota", t.shed_reasons.quota),
            ("slo", t.shed_reasons.slo),
            ("reclaimed", t.shed_reasons.reclaimed),
        ] {
            put(
                &mut out,
                "bandana_tenant_shed_reason_total",
                &format!("{label},reason=\"{reason}\""),
                count as f64,
            );
        }
    }
    head(&mut out, "bandana_tenant_timed_out_total", "counter", "Timed-out requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_timed_out_total", &tenant_label(t), t.timed_out as f64);
    }
    head(&mut out, "bandana_tenant_failed_total", "counter", "Failed requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_failed_total", &tenant_label(t), t.failed as f64);
    }
    head(&mut out, "bandana_tenant_outstanding", "gauge", "In-flight requests per tenant.");
    for t in &m.per_tenant {
        put(&mut out, "bandana_tenant_outstanding", &tenant_label(t), t.outstanding as f64);
    }
    head(&mut out, "bandana_tenant_slo_shedding", "gauge", "1 while the SLO breaker is tripped.");
    for t in &m.per_tenant {
        put(
            &mut out,
            "bandana_tenant_slo_shedding",
            &tenant_label(t),
            if t.slo_shedding { 1.0 } else { 0.0 },
        );
    }
    head(
        &mut out,
        "bandana_tenant_latency_seconds",
        "summary",
        "Cumulative e2e latency per tenant.",
    );
    for t in &m.per_tenant {
        put_summary(&mut out, "bandana_tenant_latency_seconds", &tenant_label(t), &t.latency);
    }
    head(
        &mut out,
        "bandana_tenant_recent_latency_seconds",
        "summary",
        "Recent-window e2e latency per tenant (what the SLO breaker sees).",
    );
    for t in &m.per_tenant {
        put_summary(&mut out, "bandana_tenant_recent_latency_seconds", &tenant_label(t), &t.recent);
    }

    // Control plane and the live snapshot.
    head(&mut out, "bandana_tuner_swaps_total", "counter", "Admission-policy hot-swaps applied.");
    put(&mut out, "bandana_tuner_swaps_total", "", m.tuner_swaps as f64);
    head(&mut out, "bandana_control_ticks_total", "counter", "Metrics-bus ticks.");
    put(&mut out, "bandana_control_ticks_total", "", m.control_ticks as f64);
    head(&mut out, "bandana_control_actions_total", "counter", "Controller actions applied.");
    put(&mut out, "bandana_control_actions_total", "", m.control_actions as f64);
    head(&mut out, "bandana_audit_events", "gauge", "Audit events currently retained.");
    put(&mut out, "bandana_audit_events", "", m.audit.len() as f64);
    head(&mut out, "bandana_rebudget_solves_total", "counter", "Cache budget re-solves.");
    put(&mut out, "bandana_rebudget_solves_total", "", m.rebudget_solves as f64);
    head(&mut out, "bandana_rebudget_applied_total", "counter", "Cache re-partitions applied.");
    put(&mut out, "bandana_rebudget_applied_total", "", m.rebudget_applied as f64);
    head(&mut out, "bandana_relayout_solves_total", "counter", "Block re-layout re-solves.");
    put(&mut out, "bandana_relayout_solves_total", "", m.relayout_solves as f64);
    head(&mut out, "bandana_relayout_applied_total", "counter", "Block re-layouts applied.");
    put(&mut out, "bandana_relayout_applied_total", "", m.relayout_applied as f64);
    head(
        &mut out,
        "bandana_relayout_rewritten_blocks_total",
        "counter",
        "Blocks rewritten by applied re-layouts.",
    );
    put(
        &mut out,
        "bandana_relayout_rewritten_blocks_total",
        "",
        m.relayout_rewritten_blocks as f64,
    );
    head(
        &mut out,
        "bandana_blocks_per_request_observed",
        "gauge",
        "Observed blocks per request over the freshest re-layout window.",
    );
    put(&mut out, "bandana_blocks_per_request_observed", "", m.blocks_per_request_observed);
    head(
        &mut out,
        "bandana_blocks_per_request_ideal",
        "gauge",
        "Ideal (perfectly packed) blocks per request over the freshest re-layout window.",
    );
    put(&mut out, "bandana_blocks_per_request_ideal", "", m.blocks_per_request_ideal);
    head(
        &mut out,
        "bandana_table_cache_capacity_entries",
        "gauge",
        "Live DRAM cache capacity per table.",
    );
    for p in &m.cache_partition {
        put(
            &mut out,
            "bandana_table_cache_capacity_entries",
            &format!("table=\"{}\"", p.table),
            p.capacity_entries as f64,
        );
    }
    head(
        &mut out,
        "bandana_table_cache_target_entries",
        "gauge",
        "Budget controller's solved target per table.",
    );
    for p in &m.cache_partition {
        put(
            &mut out,
            "bandana_table_cache_target_entries",
            &format!("table=\"{}\"", p.table),
            p.target_entries as f64,
        );
    }
    head(&mut out, "bandana_control_tick", "gauge", "Current bus tick.");
    put(&mut out, "bandana_control_tick", "", snapshot.tick as f64);
    head(&mut out, "bandana_uptime_seconds", "gauge", "Engine uptime.");
    put(&mut out, "bandana_uptime_seconds", "", snapshot.uptime.as_secs_f64());
    head(&mut out, "bandana_window_span_seconds", "gauge", "Recent-window span.");
    put(&mut out, "bandana_window_span_seconds", "", snapshot.window_span.as_secs_f64());
    head(&mut out, "bandana_batch_window_seconds", "gauge", "Current batch window.");
    put(&mut out, "bandana_batch_window_seconds", "", snapshot.batch_window.as_secs_f64());
    head(&mut out, "bandana_queued_requests", "gauge", "Requests queued engine-wide right now.");
    put(&mut out, "bandana_queued_requests", "", snapshot.queued() as f64);
    head(&mut out, "bandana_lane_depth", "gauge", "Live queue depth per shard lane.");
    for shard in &snapshot.shards {
        for (lane, depth) in shard.lane_depths.iter().enumerate() {
            put(
                &mut out,
                "bandana_lane_depth",
                &format!("shard=\"{}\",lane=\"{lane}\"", shard.shard),
                *depth as f64,
            );
        }
    }

    // Durability and warm restart.
    head(
        &mut out,
        "bandana_recovery_replayed_records",
        "gauge",
        "WAL records replayed at recovery (0 on a cold start).",
    );
    put(&mut out, "bandana_recovery_replayed_records", "", m.recovery.replayed_records as f64);
    head(
        &mut out,
        "bandana_recovery_rehydrated_keys",
        "gauge",
        "Cache entries rehydrated from the recovered snapshot.",
    );
    put(&mut out, "bandana_recovery_rehydrated_keys", "", m.recovery.rehydrated_keys as f64);
    head(
        &mut out,
        "bandana_recovery_snapshots_installed_total",
        "counter",
        "Snapshots installed by this engine instance.",
    );
    put(
        &mut out,
        "bandana_recovery_snapshots_installed_total",
        "",
        m.recovery.snapshots_installed as f64,
    );
    head(
        &mut out,
        "bandana_recovery_snapshot_age_seconds",
        "gauge",
        "Seconds since the newest snapshot was written (-1 when none exists).",
    );
    put(&mut out, "bandana_recovery_snapshot_age_seconds", "", m.recovery.snapshot_age_seconds);

    out
}

fn shard_label(shard: usize) -> String {
    format!("shard=\"{shard}\"")
}

fn tenant_label(t: &TenantMetrics) -> String {
    format!("tenant=\"{}\"", t.id.0)
}

/// Renders the per-tenant QoS table the examples print: completions,
/// the shed-reason breakdown, and cumulative vs recent-window p99.
/// `name` maps a [`TenantId`] to a display name.
pub fn render_tenant_table(
    tenants: &[TenantMetrics],
    mut name: impl FnMut(TenantId) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>6} {:>10} {:>8} {:>10} {:>8} {:>6} {:>10} {:>10} {:>10}",
        "tenant",
        "class",
        "weight",
        "completed",
        "shed",
        "lane-full",
        "quota",
        "slo",
        "p50",
        "p99",
        "recent p99"
    );
    for t in tenants {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>6} {:>10} {:>8} {:>10} {:>8} {:>6} {:>10} {:>10} {:>10}",
            name(t.id),
            t.priority_class.to_string(),
            t.weight,
            t.completed,
            t.shed,
            t.shed_reasons.lane_full,
            t.shed_reasons.quota,
            t.shed_reasons.slo,
            fmt_secs(t.latency.p50_s),
            fmt_secs(t.latency.p99_s),
            fmt_secs(t.recent.p99_s),
        );
    }
    out
}

/// Renders the audit log the examples print, oldest decision first.
pub fn render_audit_log(events: &[AuditEvent]) -> String {
    if events.is_empty() {
        return "audit log: no control-plane actions recorded\n".into();
    }
    let mut out = String::new();
    for event in events {
        let _ = writeln!(out, "{event}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ShardSnapshot, TableCachePartition, TenantSnapshot};
    use crate::engine::{BatchingMetrics, RecoveryMetrics, ShardMetrics};
    use crate::hist::{LatencyBreakdown, LatencyHistogram};
    use crate::tenant::{PriorityClass, ShedBreakdown};
    use bandana_cache::{AdmissionPolicy, CacheMetrics};
    use nvm_sim::{DepthStats, PoolStats};
    use proptest::prelude::*;

    fn event(request: u64, kind: TraceEventKind, at_ns: u64) -> TraceEvent {
        TraceEvent { request, kind, at_ns, dur_ns: 0, shard: 0, tenant: 0, batch: 0 }
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_events() {
        let mut ring = TraceRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 1..=10u64 {
            ring.push(event(i, TraceEventKind::Admitted, i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let ids: Vec<u64> = ring.events().iter().map(|e| e.request).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "oldest-first, newest retained");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = TraceRing::with_capacity(0);
        ring.push(event(1, TraceEventKind::Admitted, 1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
        assert!(ring.events().is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_one_in_n() {
        let recorder = TraceRecorder::new(TraceConfig::sampled(4), 2);
        let ids: Vec<u64> = (0..12).map(|_| recorder.sample()).collect();
        assert_eq!(ids, vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
        // A fresh recorder with the same config replays the exact same
        // decisions: the draw is a counter, not a coin.
        let twin = TraceRecorder::new(TraceConfig::sampled(4), 2);
        let twin_ids: Vec<u64> = (0..12).map(|_| twin.sample()).collect();
        assert_eq!(ids, twin_ids);
    }

    #[test]
    fn sample_every_one_traces_every_admission() {
        let recorder = TraceRecorder::new(TraceConfig::sampled(1), 1);
        let ids: Vec<u64> = (0..5).map(|_| recorder.sample()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn disabled_recorder_samples_nothing_and_records_nothing() {
        let recorder = TraceRecorder::new(TraceConfig::default(), 4);
        assert!(!recorder.enabled());
        assert_eq!(recorder.sample(), 0);
        recorder.record(0, event(7, TraceEventKind::Admitted, 1));
        assert!(recorder.events().is_empty());
    }

    #[test]
    fn recorder_merges_rings_in_timestamp_order_and_groups_traces() {
        let recorder = TraceRecorder::new(TraceConfig::sampled(1), 2);
        recorder.record(0, event(1, TraceEventKind::Admitted, 10));
        recorder.record(1, event(2, TraceEventKind::Admitted, 5));
        recorder.record(1, event(2, TraceEventKind::Completed, 30));
        recorder.record(0, event(1, TraceEventKind::Shed, 20));
        // Unsampled id 0 is ignored even on an enabled recorder.
        recorder.record(0, event(0, TraceEventKind::Admitted, 1));
        let at: Vec<u64> = recorder.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![5, 10, 20, 30]);
        let traces = recorder.request_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].id, 1);
        assert_eq!(traces[0].terminal(), Some(TraceEventKind::Shed));
        assert_eq!(traces[1].terminal(), Some(TraceEventKind::Completed));
        assert_eq!(traces[0].terminal_count(), 1);
    }

    #[test]
    fn trace_config_validates() {
        assert!(TraceConfig::default().validate().is_ok());
        assert!(TraceConfig::sampled(64).validate().is_ok());
        let bad = TraceConfig { sample_every: 8, capacity: 0 };
        assert!(bad.validate().is_err());
        // Zero-capacity is fine while sampling is off.
        assert!(TraceConfig { sample_every: 0, capacity: 0 }.validate().is_ok());
    }

    #[test]
    fn chrome_trace_renders_the_expected_shape() {
        let events = [TraceEvent {
            request: 3,
            kind: TraceEventKind::BatchDrained,
            at_ns: 1_500,
            dur_ns: 250,
            shard: 1,
            tenant: 2,
            batch: 9,
        }];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"batch-drained\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5"), "{json}");
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"request\":3"));
        assert!(json.contains("\"batch\":9"));
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[]}\n");
    }

    proptest! {
        /// Wrap-around never lies: after any push sequence the ring
        /// holds exactly the newest `min(pushes, capacity)` events in
        /// push order.
        #[test]
        fn ring_retains_the_newest_suffix(capacity in 1usize..32, pushes in 0u64..200) {
            let mut ring = TraceRing::with_capacity(capacity);
            for i in 1..=pushes {
                ring.push(event(i, TraceEventKind::Admitted, i));
            }
            let kept = (pushes as usize).min(capacity);
            prop_assert_eq!(ring.len(), kept);
            prop_assert_eq!(ring.dropped(), pushes - kept as u64);
            let ids: Vec<u64> = ring.events().iter().map(|e| e.request).collect();
            let expected: Vec<u64> = ((pushes - kept as u64 + 1)..=pushes).collect();
            prop_assert_eq!(ids, expected);
        }
    }

    fn snapshot_tenant(id: u32, p99_s: f64, count: u64) -> TenantSnapshot {
        TenantSnapshot {
            id: TenantId(id),
            slo_p99: Some(Duration::from_millis(10)),
            outstanding: 3,
            submitted: 100,
            completed: 90,
            queued: 4,
            shed: ShedBreakdown { lane_full: 5, quota: 1, slo: 4, reclaimed: 0 },
            slo_shedding: false,
            recent: LatencySummary { count, p99_s, ..LatencySummary::default() },
            priority_class: PriorityClass::Normal,
        }
    }

    fn sample_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            tick: 212,
            uptime: Duration::from_secs(3),
            window_span: Duration::from_millis(400),
            batch_window: Duration::from_micros(200),
            shards: vec![ShardSnapshot {
                shard: 0,
                lane_depths: vec![2, 7],
                batches: 11,
                batched_requests: 30,
                depth: DepthStats::default(),
            }],
            tenants: vec![snapshot_tenant(7, 0.080, 41)],
            cache_partition: vec![TableCachePartition {
                table: 0,
                capacity_entries: 512,
                target_entries: 640,
            }],
        }
    }

    #[test]
    fn audit_event_captures_the_slo_trip_evidence() {
        let snapshot = sample_snapshot();
        let action = Action::SetSloShed { tenant: TenantId(7), shed: true };
        let event = AuditEvent::from_action("SloController", &action, &snapshot);
        assert_eq!(event.tick, 212);
        assert_eq!(event.controller, "SloController");
        assert_eq!(event.tenant, Some(TenantId(7)));
        assert!(event.action.contains("SetSloShed"), "{}", event.action);
        assert!(event.action.contains("tenant-7"), "{}", event.action);
        assert!(event.cause.contains("p99"), "{}", event.cause);
        assert!(event.cause.contains("41 samples"), "{}", event.cause);
        let line = event.to_string();
        assert!(line.contains("SloController") && line.contains("tick"), "{line}");

        let release = Action::SetSloShed { tenant: TenantId(7), shed: false };
        let event = AuditEvent::from_action("SloController", &release, &snapshot);
        assert!(event.cause.contains("hold expired"), "{}", event.cause);

        let retune =
            Action::SetPolicy { table: 3, policy: AdmissionPolicy::None, shadow_multiplier: 1.5 };
        let event = AuditEvent::from_action("online-tuner", &retune, &snapshot);
        assert_eq!(event.tenant, None);
        assert!(event.action.contains("table: 3"), "{}", event.action);

        let cap = Action::SetLaneCap { tenant: TenantId(2), cap: 8 };
        let event = AuditEvent::from_action("custom", &cap, &snapshot);
        assert_eq!(event.tenant, Some(TenantId(2)));
        assert!(event.cause.contains("queued"), "{}", event.cause);

        let window = Action::SetBatchWindow { window: Duration::from_millis(1) };
        let event = AuditEvent::from_action("custom", &window, &snapshot);
        assert!(event.cause.contains("previous window"), "{}", event.cause);

        let repartition = Action::SetCachePartition {
            table: 0,
            entries: 640,
            curve: vec![(128, 0.412), (512, 0.733)],
        };
        let event = AuditEvent::from_action("cache-budget", &repartition, &snapshot);
        assert_eq!(event.tenant, None);
        assert!(event.action.contains("entries: 640"), "{}", event.action);
        assert!(event.cause.contains("from 512 entries"), "{}", event.cause);
        assert!(event.cause.contains("128:0.412"), "{}", event.cause);
        assert!(event.cause.contains("512:0.733"), "{}", event.cause);

        let relayout = Action::ApplyLayout {
            table: 1,
            order: (0..64u32).rev().collect(),
            observed_blocks_per_request: 3.75,
            ideal_blocks_per_request: 1.5,
        };
        let event = AuditEvent::from_action("re-layout", &relayout, &snapshot);
        assert_eq!(event.tenant, None);
        assert!(event.action.contains("ApplyLayout{table: 1, vectors: 64}"), "{}", event.action);
        assert!(event.cause.contains("observed 3.75"), "{}", event.cause);
        assert!(event.cause.contains("ideal 1.50"), "{}", event.cause);
    }

    #[test]
    fn audit_log_is_bounded_and_ordered() {
        let snapshot = sample_snapshot();
        let log = AuditLog::new(2);
        for tick in 0..3u64 {
            let mut event = AuditEvent::from_action(
                "SloController",
                &Action::SetSloShed { tenant: TenantId(7), shed: true },
                &snapshot,
            );
            event.tick = tick;
            log.push(event);
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(log.recorded(), 3);
        assert_eq!(events[0].tick, 1, "oldest entry was evicted");
        assert_eq!(events[1].tick, 2);
        assert!(render_audit_log(&events).lines().count() == 2);
        assert!(render_audit_log(&[]).contains("no control-plane actions"));
    }

    fn summary(seed: u64) -> LatencySummary {
        let s = seed as f64;
        LatencySummary {
            count: seed,
            mean_s: s * 1e-6,
            p50_s: s * 2e-6,
            p95_s: s * 3e-6,
            p99_s: s * 4e-6,
            p999_s: s * 5e-6,
            max_s: s * 6e-6,
        }
    }

    fn sample_metrics() -> EngineMetrics {
        let mut e2e = LatencyHistogram::new();
        e2e.record_secs(0.25);
        EngineMetrics {
            submitted: 1001,
            completed: 902,
            shed: 73,
            timed_out: 14,
            failed: 12,
            outstanding: 6,
            lookups: 5005,
            tuner_swaps: 3,
            control_ticks: 88,
            control_actions: 9,
            rebudget_solves: 5,
            rebudget_applied: 2,
            relayout_solves: 4,
            relayout_applied: 1,
            relayout_rewritten_blocks: 6,
            blocks_per_request_observed: 3.5,
            blocks_per_request_ideal: 1.25,
            cache_partition: vec![TableCachePartition {
                table: 0,
                capacity_entries: 512,
                target_entries: 640,
            }],
            latency: summary(11),
            queue_wait: summary(12),
            service: summary(13),
            device_time: summary(14),
            breakdown: LatencyBreakdown {
                queue_wait: summary(15),
                device: summary(16),
                service: summary(17),
            },
            batching: BatchingMetrics {
                batches: 41,
                batched_requests: 160,
                largest_batch: 9,
                depth: DepthStats {
                    submitted: 300,
                    completed: 298,
                    peak_depth: 5,
                    depth_weight: 600,
                    busy_s: 0.125,
                },
            },
            pool: PoolStats { acquires: 500, reuses: 480, allocs: 20, retained: 16 },
            e2e_histogram: e2e,
            cache: CacheMetrics {
                lookups: 5005,
                hits: 4000,
                misses: 1005,
                block_reads: 1005,
                prefetches_admitted: 77,
                prefetch_hits: 33,
                evictions: 21,
            },
            per_shard: vec![ShardMetrics {
                shard: 0,
                tables: vec![0, 1],
                served_requests: 902,
                lookups: 5005,
                service: summary(18),
                device_time: summary(19),
                cache: CacheMetrics { lookups: 10, hits: 5, ..CacheMetrics::default() },
                device_reads: 1005,
                batches: 41,
                largest_batch: 9,
                depth: DepthStats { submitted: 300, ..DepthStats::default() },
                capacity_blocks: 2048,
                bytes_written: 1 << 20,
                drive_writes: 0.25,
                pool: PoolStats { acquires: 500, reuses: 480, allocs: 20, retained: 16 },
            }],
            per_tenant: vec![TenantMetrics {
                id: TenantId(7),
                weight: 9,
                priority_class: PriorityClass::High,
                admission_quota: Some(32),
                slo_p99: Some(Duration::from_millis(10)),
                submitted: 1001,
                shed: 73,
                completed: 902,
                shed_reasons: ShedBreakdown { lane_full: 50, quota: 9, slo: 14, reclaimed: 2 },
                timed_out: 14,
                failed: 12,
                outstanding: 6,
                slo_shedding: true,
                latency: summary(20),
                recent: summary(21),
            }],
            audit: vec![AuditEvent::from_action(
                "SloController",
                &Action::SetSloShed { tenant: TenantId(7), shed: true },
                &sample_snapshot(),
            )],
            recovery: RecoveryMetrics {
                replayed_records: 6,
                rehydrated_keys: 512,
                snapshots_installed: 2,
                snapshot_age_seconds: 1.5,
            },
        }
    }

    /// Every [`EngineMetrics`] field (and the snapshot's live series)
    /// surfaces under a stable metric name.
    #[test]
    fn prometheus_exposition_covers_every_metrics_field() {
        let text = render_prometheus(&sample_metrics(), &sample_snapshot());
        for name in [
            // Engine counters: submitted..lookups.
            "bandana_requests_submitted_total 1001",
            "bandana_requests_completed_total 902",
            "bandana_requests_shed_total 73",
            "bandana_requests_timed_out_total 14",
            "bandana_requests_failed_total 12",
            "bandana_requests_outstanding 6",
            "bandana_lookups_total 5005",
            // latency/queue_wait/service/device_time summaries.
            "bandana_latency_seconds{stage=\"e2e\",quantile=\"0.99\"}",
            "bandana_latency_seconds{stage=\"queue_wait\",quantile=\"0.5\"}",
            "bandana_latency_seconds{stage=\"service\",quantile=\"0.999\"}",
            "bandana_latency_seconds{stage=\"device\",quantile=\"0.95\"}",
            "bandana_latency_seconds_count{stage=\"e2e\"} 11",
            // breakdown + e2e_histogram.
            "bandana_latency_breakdown_mean_seconds{component=\"queue_wait\"}",
            "bandana_latency_breakdown_mean_seconds{component=\"device\"}",
            "bandana_latency_breakdown_mean_seconds{component=\"service\"}",
            "bandana_e2e_latency_seconds_count 1",
            // batching (incl. depth) and pool.
            "bandana_batches_total 41",
            "bandana_batched_requests_total 160",
            "bandana_largest_batch 9",
            "bandana_mean_batch",
            "bandana_device_reads_submitted_total 300",
            "bandana_device_reads_completed_total 298",
            "bandana_device_queue_depth_peak 5",
            "bandana_device_queue_depth_mean",
            "bandana_device_busy_seconds_total 0.125",
            "bandana_pool_acquires_total 500",
            "bandana_pool_reuses_total 480",
            "bandana_pool_allocs_total 20",
            "bandana_pool_retained 16",
            // cache.
            "bandana_cache_lookups_total 5005",
            "bandana_cache_hits_total 4000",
            "bandana_cache_misses_total 1005",
            "bandana_cache_block_reads_total 1005",
            "bandana_cache_prefetches_admitted_total 77",
            "bandana_cache_prefetch_hits_total 33",
            "bandana_cache_evictions_total 21",
            "bandana_cache_hit_rate",
            // per_shard (every ShardMetrics field).
            "bandana_shard_requests_total{shard=\"0\"} 902",
            "bandana_shard_lookups_total{shard=\"0\"} 5005",
            "bandana_shard_tables{shard=\"0\"} 2",
            "bandana_shard_latency_seconds{shard=\"0\",stage=\"service\",quantile=\"0.99\"}",
            "bandana_shard_latency_seconds{shard=\"0\",stage=\"device\",quantile=\"0.99\"}",
            "bandana_shard_cache_hit_rate{shard=\"0\"} 0.5",
            "bandana_shard_device_reads_total{shard=\"0\"} 1005",
            "bandana_shard_batches_total{shard=\"0\"} 41",
            "bandana_shard_largest_batch{shard=\"0\"} 9",
            "bandana_shard_queue_depth_mean{shard=\"0\"}",
            "bandana_shard_queue_depth_peak{shard=\"0\"}",
            "bandana_shard_capacity_blocks{shard=\"0\"} 2048",
            "bandana_shard_bytes_written_total{shard=\"0\"} 1048576",
            "bandana_shard_drive_writes{shard=\"0\"} 0.25",
            "bandana_shard_pool_reuse_rate{shard=\"0\"} 0.96",
            // per_tenant (every TenantMetrics field).
            "bandana_tenant_weight{tenant=\"7\"} 9",
            "bandana_tenant_priority{tenant=\"7\"} 0",
            "bandana_tenant_admission_quota{tenant=\"7\"} 32",
            "bandana_tenant_slo_budget_seconds{tenant=\"7\"} 0.01",
            "bandana_tenant_submitted_total{tenant=\"7\"} 1001",
            "bandana_tenant_completed_total{tenant=\"7\"} 902",
            "bandana_tenant_shed_total{tenant=\"7\"} 73",
            "bandana_tenant_shed_reason_total{tenant=\"7\",reason=\"lane_full\"} 50",
            "bandana_tenant_shed_reason_total{tenant=\"7\",reason=\"quota\"} 9",
            "bandana_tenant_shed_reason_total{tenant=\"7\",reason=\"slo\"} 14",
            "bandana_tenant_shed_reason_total{tenant=\"7\",reason=\"reclaimed\"} 2",
            "bandana_tenant_timed_out_total{tenant=\"7\"} 14",
            "bandana_tenant_failed_total{tenant=\"7\"} 12",
            "bandana_tenant_outstanding{tenant=\"7\"} 6",
            "bandana_tenant_slo_shedding{tenant=\"7\"} 1",
            "bandana_tenant_latency_seconds{tenant=\"7\",quantile=\"0.99\"}",
            "bandana_tenant_recent_latency_seconds{tenant=\"7\",quantile=\"0.99\"}",
            // control plane + audit + live snapshot.
            "bandana_tuner_swaps_total 3",
            "bandana_control_ticks_total 88",
            "bandana_control_actions_total 9",
            "bandana_audit_events 1",
            "bandana_rebudget_solves_total 5",
            "bandana_rebudget_applied_total 2",
            "bandana_relayout_solves_total 4",
            "bandana_relayout_applied_total 1",
            "bandana_relayout_rewritten_blocks_total 6",
            "bandana_blocks_per_request_observed 3.5",
            "bandana_blocks_per_request_ideal 1.25",
            "bandana_table_cache_capacity_entries{table=\"0\"} 512",
            "bandana_table_cache_target_entries{table=\"0\"} 640",
            "bandana_control_tick 212",
            "bandana_uptime_seconds 3",
            "bandana_window_span_seconds 0.4",
            "bandana_batch_window_seconds 0.0002",
            "bandana_queued_requests 9",
            "bandana_lane_depth{shard=\"0\",lane=\"0\"} 2",
            "bandana_lane_depth{shard=\"0\",lane=\"1\"} 7",
            // recovery (every RecoveryMetrics field).
            "bandana_recovery_replayed_records 6",
            "bandana_recovery_rehydrated_keys 512",
            "bandana_recovery_snapshots_installed_total 2",
            "bandana_recovery_snapshot_age_seconds 1.5",
        ] {
            assert!(text.contains(name), "missing series {name:?} in:\n{text}");
        }
    }

    /// Every exposition line is either a `#` comment or
    /// `name[{labels}] value` with an f64-parsable value.
    #[test]
    fn prometheus_exposition_parses_line_by_line() {
        let text = render_prometheus(&sample_metrics(), &sample_snapshot());
        assert!(text.lines().count() > 100);
        for line in text.lines() {
            assert!(!line.is_empty(), "blank line in exposition");
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
            assert!(value.parse::<f64>().is_ok(), "unparsable value {value:?} on line: {line}");
            let bare = name.split('{').next().expect("metric name");
            assert!(
                !bare.is_empty()
                    && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && bare.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'),
                "bad metric name on line: {line}"
            );
            if let Some((_, labels)) = name.split_once('{') {
                assert!(labels.ends_with('}'), "unclosed labels: {line}");
            }
        }
    }

    #[test]
    fn tenant_table_covers_both_example_layouts() {
        let metrics = sample_metrics();
        let table = render_tenant_table(&metrics.per_tenant, |id| match id {
            TenantId(7) => "ranking".into(),
            other => other.to_string(),
        });
        let mut lines = table.lines();
        let header = lines.next().expect("header");
        for col in
            ["tenant", "class", "weight", "completed", "shed", "lane-full", "quota", "slo", "p99"]
        {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        let row = lines.next().expect("one tenant row");
        assert!(row.contains("ranking"));
        assert!(row.contains("902"), "{row}");
        assert!(row.contains("high"), "{row}");
    }
}
